//! # nfstrace
//!
//! A faithful reimplementation of the system behind *"Passive NFS
//! Tracing of Email and Research Workloads"* (Ellard, Ledlie, Malkani,
//! Seltzer — FAST 2003): passive NFS packet tracing, trace
//! anonymization, the paper's complete analysis suite, and generative
//! models of the two traced systems (the CAMPUS email servers and the
//! EECS research filer).
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`xdr`] | `nfstrace-xdr` | XDR (RFC 4506) encoding |
//! | [`net`] | `nfstrace-net` | Ethernet/IPv4/UDP/TCP, pcap, TCP reassembly, mirror-port model |
//! | [`rpc`] | `nfstrace-rpc` | ONC RPC messages, record marking, XID matching |
//! | [`nfs`] | `nfstrace-nfs` | complete NFSv2 + NFSv3 protocol |
//! | [`fssim`] | `nfstrace-fssim` | simulated NFS server, disk model, read-ahead policies |
//! | [`client`] | `nfstrace-client` | client caches and the nfsiod reordering model |
//! | [`workload`] | `nfstrace-workload` | CAMPUS and EECS workload generators |
//! | [`sniffer`] | `nfstrace-sniffer` | the passive tracer |
//! | [`anonymize`] | `nfstrace-anonymize` | consistent, non-deterministic anonymization |
//! | [`core`] | `nfstrace-core` | trace records and the FAST 2003 analyses |
//! | [`store`] | `nfstrace-store` | chunked on-disk trace store, segments, out-of-core indexing |
//! | [`live`] | `nfstrace-live` | bounded-memory live ingest, segment rotation, hot+sealed views |
//! | [`serve`] | `nfstrace-serve` | loopback NFS serving loop, wire replay client, capture tap |
//!
//! # Quickstart
//!
//! ```
//! use nfstrace::workload::{CampusConfig, CampusWorkload};
//! use nfstrace::core::summary::SummaryStats;
//!
//! // Simulate one day of a small email system and characterize it.
//! // (A full day: the diurnal model makes the small hours so quiet
//! // that a tiny population generates almost nothing before 9am.)
//! let records = CampusWorkload::new(CampusConfig {
//!     users: 4,
//!     duration_micros: nfstrace::core::time::DAY,
//!     ..CampusConfig::default()
//! })
//! .generate();
//! let stats = SummaryStats::from_records(records.iter());
//! assert!(stats.total_ops > 0);
//! ```

pub use nfstrace_anonymize as anonymize;
pub use nfstrace_client as client;
pub use nfstrace_core as core;
pub use nfstrace_fssim as fssim;
pub use nfstrace_live as live;
pub use nfstrace_net as net;
pub use nfstrace_nfs as nfs;
pub use nfstrace_rpc as rpc;
pub use nfstrace_serve as serve;
pub use nfstrace_sniffer as sniffer;
pub use nfstrace_store as store;
pub use nfstrace_telemetry as telemetry;
pub use nfstrace_workload as workload;
pub use nfstrace_xdr as xdr;
