//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `throughput` / `sample_size` /
//! `bench_function` / `finish`), [`Bencher::iter`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple — warm up briefly, then time a
//! fixed wall-clock window and report mean ns/iter (plus derived
//! throughput) on stdout. No statistics, no HTML reports, no comparison
//! to saved baselines. Good enough to rank hot paths and to keep
//! `cargo bench` runnable offline.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque optimization barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration declaration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_window: Duration,
}

impl Bencher {
    /// Times `f` repeatedly and records mean iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: a few iterations, untimed.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measure_window && iters >= 10 {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters_done.max(1) as f64
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.ns_per_iter();
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib = b as f64 / ns; // bytes per ns == GB/s
            format!("  {gib:.3} GB/s")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / ns * 1e3; // elements/ns -> M elem/s
            format!("  {meps:.3} Melem/s")
        }
        None => String::new(),
    };
    println!(
        "{name:<40} {human:>12}/iter  ({} iters){rate}",
        bencher.iters_done
    );
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measure_window: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares work-per-iteration for subsequent benches in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub keys measurement on wall
    /// clock, not sample counts, so a smaller `n` shortens the window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.measure_window = Duration::from_millis(20);
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure_window: self.measure_window,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Ends the group (printing nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            measure_window: Duration::from_millis(60),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure_window: Duration::from_millis(60),
        };
        f(&mut b);
        report(id, &b, None);
        self
    }
}

/// Declares a bench entry point (`harness = false` benches call this).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
