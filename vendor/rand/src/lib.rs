//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] (a
//! xoshiro256++ generator seeded via SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, and [`seq::SliceRandom`].
//! Distribution quality matches the real crate closely enough for the
//! statistical assertions in the workspace test suite (uniform integers
//! via Lemire rejection, 53-bit uniform floats, Fisher–Yates shuffle).

use std::ops::Range;

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in real-`rand` terms).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u64;
                // Lemire's unbiased multiply-shift rejection.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = u128::from(rng.next_u64()) * u128::from(span);
                    if (m as u64) >= threshold {
                        return (low as i128 + (m >> 64) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded by
    /// SplitMix64 (the seeding recommended by the xoshiro authors).
    ///
    /// Not the ChaCha12 generator of the real `rand`; this stub is for
    /// simulation, not cryptography.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
