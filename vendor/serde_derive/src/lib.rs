//! Offline subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, without `syn`/`quote` (hand-rolled
//! token walking, code generation via string building):
//!
//! - structs with named fields, honoring `#[serde(skip)]` and
//!   `#[serde(default = "path")]` field attributes;
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! - unit structs;
//! - C-like enums (unit variants), serialized as the variant-name string.
//!
//! Generics, lifetimes, and data-carrying enum variants are unsupported
//! and produce a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<String>),
}

struct Field {
    name: String,
    skip: bool,
    /// Path given via `#[serde(default = "path")]`.
    default_path: Option<String>,
}

struct Input {
    name: String,
    shape: Shape,
}

/// Extracts `skip` / `default = "path"` markers from the token stream of
/// one `#[serde(...)]` attribute body.
fn parse_serde_attr(body: TokenStream, skip: &mut bool, default_path: &mut Option<String>) {
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "skip" => *skip = true,
                "default" => {
                    // Expect `= "path"`.
                    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        iter.next();
                        if let Some(TokenTree::Literal(lit)) = iter.next() {
                            let s = lit.to_string();
                            *default_path = Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Consumes leading attributes (`#[...]`), folding any `#[serde(...)]`
/// contents into the returned markers.
fn eat_attrs(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> (bool, Option<String>) {
    let mut skip = false;
    let mut default_path = None;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    // The bracket group holds e.g. `serde(skip, ...)` or `doc = "..."`.
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(id)) = inner.next() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                parse_serde_attr(args.stream(), &mut skip, &mut default_path);
                            }
                        }
                    }
                }
            }
            _ => return (skip, default_path),
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility marker.
fn eat_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let (skip, default_path) = eat_attrs(&mut iter);
        eat_vis(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
            default_path,
        });
        // Skip `: Type` up to the next comma outside angle brackets
        // (commas inside e.g. `HashMap<u32, u32>` are part of the type).
        let mut angle_depth = 0usize;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut any = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => any = true,
        }
    }
    if any {
        count + 1
    } else {
        count
    }
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let _ = eat_attrs(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        variants.push(name.to_string());
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "vendored serde_derive supports only unit enum variants; `{}` carries data",
                    variants.last().unwrap()
                ));
            }
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        }
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    let _ = eat_attrs(&mut iter);
    eat_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generics (deriving for `{name}`)"
        ));
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                shape: Shape::Unit,
            }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::Enum(parse_enum_variants(g.stream())?),
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let mut s = String::from("::serde::Value::object(::std::vec![");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "({:?}.to_string(), ::serde::Serialize::to_value(&self.{})),",
                    f.name, f.name
                ));
            }
            s.push_str("])");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from("::serde::Value::Arr(::std::vec![");
            for i in 0..*n {
                s.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            s.push_str("])");
            s
        }
        Shape::Enum(variants) => {
            let mut s = "match self {".to_string();
            for v in variants {
                s.push_str(&format!(
                    "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"
                ));
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Named(fields) => {
            let mut s = format!("::std::result::Result::Ok({name} {{");
            for f in fields {
                if f.skip {
                    match &f.default_path {
                        Some(path) => s.push_str(&format!("{}: {path}(),", f.name)),
                        None => {
                            s.push_str(&format!("{}: ::std::default::Default::default(),", f.name))
                        }
                    }
                } else {
                    s.push_str(&format!(
                        "{}: ::serde::Deserialize::from_value(v.field({:?})?)?,",
                        f.name, f.name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "match v {{ ::serde::Value::Arr(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}("
            );
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::from_value(&items[{i}])?,"));
            }
            s.push_str(&format!(
                ")), _ => ::std::result::Result::Err(::serde::Error::new(\
                 \"expected {n}-element array\")) }}"
            ));
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match v { ::serde::Value::Str(s) => match s.as_str() {");
            for var in variants {
                s.push_str(&format!(
                    "{var:?} => ::std::result::Result::Ok({name}::{var}),"
                ));
            }
            s.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                 \"unknown {name} variant {{other:?}}\"))) }},\
                 other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                 \"expected string for {name}, got {{}}\", other.kind()))) }}"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
