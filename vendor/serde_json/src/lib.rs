//! Offline, API-compatible subset of `serde_json`: render and parse the
//! vendored [`serde::Value`] tree as JSON text.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes
//! and `\uXXXX` including surrogate pairs, exact 64-bit integers, floats,
//! bools, null). Exists because the build environment has no registry
//! access; see `vendor/serde`.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = serde::ObjectMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.push(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped ASCII/UTF-8 span in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let mut cp = self.hex4()?;
                            // Surrogate pair.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            }
                            out.push(
                                char::from_u32(cp).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "",
            "plain",
            "q\"b\\s",
            "tab\tnl\nctl\u{1}",
            "uni\u{2603}\u{1F600}",
        ] {
            let json = to_string(s).unwrap();
            assert_eq!(from_str::<String>(&json).unwrap(), s);
        }
        // Surrogate-pair escapes parse too.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn collections_roundtrip() {
        use std::collections::HashMap;
        let mut m: HashMap<u32, String> = HashMap::new();
        m.insert(5, "five".into());
        m.insert(7, "seven".into());
        let back: HashMap<u32, String> = from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in ["", "{", "[1,", "\"", "{\"a\":}", "nul", "1e", "\"\\u12\""] {
            assert!(from_str::<serde::Value>(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn object_key_lookup_is_indexed_and_last_wins() {
        let v: serde::Value = from_str(r#"{"a":1,"b":2,"a":3}"#).unwrap();
        // Duplicate keys: every pair survives rendering in order…
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":2,"a":3}"#);
        // …but field lookup resolves to the last occurrence.
        assert_eq!(v.field("a").unwrap(), &serde::Value::U64(3));
        assert_eq!(v.field("b").unwrap(), &serde::Value::U64(2));
        assert!(v.field("c").is_err());
    }

    #[test]
    fn repeated_field_lookup_on_large_object_is_cheap() {
        // n field lookups over an n-pair object: the pre-index linear
        // scan made this O(n²) — the pattern behind slow large-IdTable
        // snapshot deserialization. The key index keeps it O(n).
        let json = {
            let mut s = String::from("{");
            for i in 0..40_000u32 {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"k{i}\":{i}"));
            }
            s.push('}');
            s
        };
        let v: serde::Value = from_str(&json).unwrap();
        let t = std::time::Instant::now();
        for i in 0..40_000u32 {
            assert_eq!(
                v.field(&format!("k{i}")).unwrap(),
                &serde::Value::U64(u64::from(i))
            );
        }
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "40k lookups took {:?}",
            t.elapsed()
        );
    }
}
