//! Compiles the regex subset used by string strategies.
//!
//! Supported syntax, matching what the workspace's property tests write:
//!
//! - character classes `[a-zA-Z0-9._-]` (ranges and literals; a trailing
//!   or leading `-` is literal);
//! - `\PC` — "any printable char" (ASCII printable plus a sprinkling of
//!   non-ASCII BMP chars, so UTF-8 handling gets exercised);
//! - escaped literals `\.`, `\\`, …;
//! - repetition `{n}` / `{m,n}` on the preceding atom (inclusive upper
//!   bound, as in regex syntax);
//! - plain literal characters.
//!
//! Alternation, groups, anchors, and `*`/`+`/`?` are not implemented;
//! compiling them is an error so a test author notices immediately.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate chars, sampled uniformly.
    Class(Vec<char>),
    /// Any printable char.
    Printable,
    /// A fixed char.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    pieces: Vec<Piece>,
}

/// Chars `\PC` samples from: printable ASCII heavily, with some
/// multi-byte chars mixed in to exercise UTF-8 paths.
const EXTRA_PRINTABLE: &[char] = &['é', 'ß', 'λ', 'Д', '中', '文', '☃', '€', '🎉', '𝕏'];

impl Pattern {
    /// Compiles `pattern`, or explains why it is unsupported.
    ///
    /// # Errors
    ///
    /// On syntax outside the documented subset.
    pub fn compile(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| "unterminated character class".to_string())?
                        + i
                        + 1;
                    let class = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    Atom::Class(class)
                }
                '\\' => {
                    let next = *chars
                        .get(i + 1)
                        .ok_or_else(|| "dangling backslash".to_string())?;
                    i += 2;
                    if next == 'P' || next == 'p' {
                        // `\PC` / `\pC`: any (printable) char.
                        if chars.get(i) == Some(&'C') {
                            i += 1;
                            Atom::Printable
                        } else {
                            return Err(format!(
                                "unsupported \\{next} escape (only \\PC is known)"
                            ));
                        }
                    } else {
                        Atom::Literal(next)
                    }
                }
                c @ ('*' | '+' | '?' | '(' | ')' | '|' | '^' | '$') => {
                    return Err(format!("unsupported regex operator {c:?}"));
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {n} / {m,n} repetition.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| "unterminated repetition".to_string())?
                    + i
                    + 1;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => {
                        let m = m.trim().parse::<usize>().map_err(|_| "bad repetition")?;
                        let n = n.trim().parse::<usize>().map_err(|_| "bad repetition")?;
                        if n < m {
                            return Err(format!("repetition {{{m},{n}}} is inverted"));
                        }
                        (m, n)
                    }
                    None => {
                        let n = body.trim().parse::<usize>().map_err(|_| "bad repetition")?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(Pattern { pieces })
    }

    /// Draws one string.
    pub fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.gen_range(piece.min..piece.max + 1);
            for _ in 0..n {
                out.push(match &piece.atom {
                    Atom::Literal(c) => *c,
                    Atom::Class(set) => set[rng.gen_range(0..set.len())],
                    Atom::Printable => {
                        // 1-in-16 draws a non-ASCII char.
                        if rng.gen_range(0u32..16) == 0 {
                            EXTRA_PRINTABLE[rng.gen_range(0..EXTRA_PRINTABLE.len())]
                        } else {
                            char::from(rng.gen_range(0x20u8..0x7f))
                        }
                    }
                });
            }
        }
        out
    }
}

fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
    if body.is_empty() {
        return Err("empty character class".to_string());
    }
    let mut set = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let c = body[i];
        if c == '\\' {
            let next = *body
                .get(i + 1)
                .ok_or_else(|| "dangling backslash in class".to_string())?;
            set.push(next);
            i += 2;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let hi = body[i + 2];
            if (c as u32) > (hi as u32) {
                return Err(format!("inverted range {c}-{hi}"));
            }
            for cp in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(cp) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            // Covers a literal `-` at the start or end of the class.
            set.push(c);
            i += 1;
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn class_with_trailing_dash() {
        let p = Pattern::compile("[a-zA-Z0-9._#~ %=-]{1,32}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = p.sample(&mut r);
            assert!((1..=32).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._#~ %=-".contains(c)));
        }
    }

    #[test]
    fn escaped_dot_between_classes() {
        let p = Pattern::compile("[a-z]{2,12}\\.[a-z]{1,4}").unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let s = p.sample(&mut r);
            let (stem, suffix) = s.split_once('.').expect("has a dot");
            assert!((2..=12).contains(&stem.len()), "{s:?}");
            assert!((1..=4).contains(&suffix.len()), "{s:?}");
        }
    }

    #[test]
    fn printable_any() {
        let p = Pattern::compile("\\PC{0,256}").unwrap();
        let mut r = rng();
        let mut saw_nonascii = false;
        for _ in 0..100 {
            let s = p.sample(&mut r);
            assert!(s.chars().count() <= 256);
            saw_nonascii |= !s.is_ascii();
        }
        assert!(saw_nonascii, "\\PC should occasionally emit non-ASCII");
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        assert!(Pattern::compile("a*").is_err());
        assert!(Pattern::compile("(ab)").is_err());
        assert!(Pattern::compile("a|b").is_err());
        assert!(Pattern::compile("[abc").is_err());
    }

    #[test]
    fn exact_repetition() {
        let p = Pattern::compile("[01]{8}").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(p.sample(&mut r).len(), 8);
        }
    }
}
