//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its test suites use: the [`Strategy`] trait with
//! `prop_map`, `any::<T>()`, integer-range strategies, string strategies
//! from a regex subset (char classes, `\PC`, `{m,n}` repetition, literal
//! atoms), tuple strategies, [`collection::vec`] / [`collection::hash_set`],
//! [`option::of`], and the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its seed and case index;
//!   rerunning is deterministic (case seeds derive from the test name),
//!   so failures reproduce without persistence files.
//! - **Bounded, deterministic case counts.** `PROPTEST_CASES` overrides
//!   the default of 64 cases per property, keeping `cargo test -q` fast
//!   in CI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy;

pub use strategy::Strategy;

/// String-pattern compilation (regex subset), used by `&str` strategies.
pub mod string_pattern;

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A size specification: any `Range<usize>`-like bound.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<T>` with lengths from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, T> {
        element: S,
        size: SizeRange,
        _marker: PhantomData<fn() -> T>,
    }

    /// Generates hash sets whose elements come from `element`. Duplicate
    /// draws are retried a bounded number of times, so tight value spaces
    /// may yield sets smaller than requested (matching real proptest's
    /// best-effort behavior).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S, S::Value>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
            _marker: PhantomData,
        }
    }

    impl<S> Strategy for HashSetStrategy<S, S::Value>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut tries = 0usize;
            while out.len() < target && tries < target * 10 + 100 {
                out.insert(self.element.sample(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding `Some` three times out of four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` in an optional strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Arbitrary scalar values, rejection-sampled out of surrogates.
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                return c;
            }
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Number of cases per property: `PROPTEST_CASES` or 64.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `f` once per case with a deterministic per-case RNG; panics with
/// the case number and seed on the first failure. Used by [`proptest!`].
pub fn run_cases<F>(test_name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    let cases = case_count();
    let base = fnv1a(test_name);
    for case in 0..cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(msg) = f(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{cases} (seed {seed:#018x}):\n{msg}"
            );
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};

    /// Alias matching real proptest's `prop` prelude module.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy, ..) { body } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                result
            });
        }
    )*};
}

/// Asserts a condition inside [`proptest!`], failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (a, b) => {
                if !(*a == *b) {
                    return ::std::result::Result::Err(::std::format!(
                        "prop_assert_eq failed: {:?} != {:?}", a, b
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (a, b) => {
                if !(*a == *b) {
                    return ::std::result::Result::Err(::std::format!(
                        "prop_assert_eq failed: {:?} != {:?}: {}",
                        a, b, ::std::format!($($fmt)+)
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (a, b) => {
                if *a == *b {
                    return ::std::result::Result::Err(::std::format!(
                        "prop_assert_ne failed: both {:?}", a
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (a, b) => {
                if *a == *b {
                    return ::std::result::Result::Err(::std::format!(
                        "prop_assert_ne failed: both {:?}: {}",
                        a, ::std::format!($($fmt)+)
                    ));
                }
            }
        }
    };
}
