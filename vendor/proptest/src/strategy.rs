//! The [`Strategy`] trait and combinators.

use crate::string_pattern::Pattern;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

/// String strategies from a regex subset (see [`crate::string_pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        Pattern::compile(self)
            .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}"))
            .sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
