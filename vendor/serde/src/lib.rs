//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of serde it uses: the [`Serialize`] / [`Deserialize`] traits
//! (value-tree flavored rather than visitor flavored), derive macros for
//! structs and C-like enums (including `#[serde(skip)]` and
//! `#[serde(default = "path")]`), and impls for the std types the
//! workspace serializes. `serde_json` (also vendored) renders and parses
//! the [`Value`] tree.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// An insertion-ordered JSON object with an O(1) key index.
///
/// Pairs render in insertion order (struct fields keep their declared
/// order in output), while `get` goes through a key → slot hash index
/// instead of a linear scan — so deserializing a struct with *k* fields
/// from an *n*-pair object is O(n + k), not O(n·k), and a large
/// `IdTable` snapshot deserializes in linear time. The index is built
/// lazily on the first `get`: the serialize path (which only iterates)
/// never pays for it. Duplicate keys keep every pair in order; the
/// index points at the **last** occurrence, matching serde_json's
/// last-wins behaviour.
#[derive(Debug, Clone)]
pub struct ObjectMap {
    pairs: Vec<(String, Value)>,
    index: std::cell::OnceCell<HashMap<String, usize>>,
}

impl ObjectMap {
    /// An empty object.
    pub fn new() -> Self {
        ObjectMap {
            pairs: Vec::new(),
            index: std::cell::OnceCell::new(),
        }
    }

    /// Builds the object from insertion-ordered pairs.
    pub fn from_pairs(pairs: Vec<(String, Value)>) -> Self {
        ObjectMap {
            pairs,
            index: std::cell::OnceCell::new(),
        }
    }

    /// Appends a pair, keeping any built index current.
    pub fn push(&mut self, key: String, value: Value) {
        if let Some(index) = self.index.get_mut() {
            index.insert(key.clone(), self.pairs.len());
        }
        self.pairs.push((key, value));
    }

    /// Constant-time key lookup (last occurrence wins); builds the
    /// index on first use.
    pub fn get(&self, key: &str) -> Option<&Value> {
        let index = self.index.get_or_init(|| {
            self.pairs
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (k.clone(), i))
                .collect()
        });
        index.get(key).map(|&i| &self.pairs[i].1)
    }

    /// Iterates pairs in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.pairs.iter()
    }

    /// Number of pairs (duplicates counted).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the object has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl Default for ObjectMap {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for ObjectMap {
    /// Pair equality; the index is derived state.
    fn eq(&self, other: &Self) -> bool {
        self.pairs == other.pairs
    }
}

impl FromIterator<(String, Value)> for ObjectMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

/// A self-describing serialized value, isomorphic to JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (kept exact; never routed through f64).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered pairs behind a key index.
    Map(ObjectMap),
}

impl Value {
    /// Builds an object value from insertion-ordered pairs (the derive
    /// macros emit calls to this).
    pub fn object(pairs: Vec<(String, Value)>) -> Value {
        Value::Map(ObjectMap::from_pairs(pairs))
    }

    /// Looks up `key` in an object, erroring on a missing key or a
    /// non-object. O(1) via the object's key index.
    ///
    /// # Errors
    ///
    /// When `self` is not a map or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(map) => map
                .get(key)
                .ok_or_else(|| Error::new(format!("missing field `{key}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }

    /// A short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds from a value tree.
    ///
    /// # Errors
    ///
    /// When the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error::new(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::U64(n) => i128::from(*n),
                    Value::I64(n) => i128::from(*n),
                    other => {
                        return Err(Error::new(format!(
                            "expected {}, got {}", stringify!($t), other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::new(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Types usable as JSON object keys (JSON keys are always strings).
pub trait JsonKey: Sized {
    /// Renders as a key.
    fn to_key(&self) -> String;
    /// Parses from a key.
    ///
    /// # Errors
    ///
    /// When `s` does not parse as `Self`.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_num {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::new(format!("bad {} key: {s:?}", stringify!($t))))
            }
        }
    )*};
}
impl_json_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: JsonKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
