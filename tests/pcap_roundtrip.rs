//! The full capture-file path: workload traffic encoded to packets,
//! written to a pcap file, read back, and sniffed — the offline workflow
//! the paper's tools support.

use nfstrace::client::{ClientConfig, ClientMachine};
use nfstrace::fssim::NfsServer;
use nfstrace::net::pcap::{PcapHeader, PcapReader, PcapWriter};
use nfstrace::sniffer::{Sniffer, WireEncoder};

#[test]
fn pcap_file_pipeline() {
    // Generate a short session.
    let mut server = NfsServer::new(0x0a010002);
    let root = server.root_fh();
    let mut client = ClientMachine::new(ClientConfig {
        nfsiods: 2,
        seed: 4,
        ..ClientConfig::default()
    });
    let (fh, t) = client.create(&mut server, 0, &root, "inbox");
    let fh = fh.unwrap();
    let t = client.write(&mut server, t, &fh, 0, 200_000);
    server
        .fs_mut()
        .write(fh.as_u64().unwrap(), 0, 1, t + 1)
        .unwrap();
    client.read_file(&mut server, t + 40_000_000, &fh);
    let events = client.take_events();

    // Encode to packets and write a pcap capture.
    let mut enc = WireEncoder::tcp_jumbo();
    let mut buf = Vec::new();
    {
        let mut w = PcapWriter::new(&mut buf, PcapHeader::default()).unwrap();
        for e in &events {
            for pkt in enc.encode_event(e) {
                w.write_packet(&pkt).unwrap();
            }
        }
    }
    assert!(buf.len() > 200_000, "capture should hold the data bytes");

    // Read the capture back and sniff it.
    let reader = PcapReader::new(&buf[..]).unwrap();
    let mut sniffer = Sniffer::new();
    let mut n = 0u64;
    for pkt in reader.packets() {
        sniffer.observe(&pkt.unwrap());
        n += 1;
    }
    let (records, stats) = sniffer.finish();
    assert!(n > 20);
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.orphan_replies, 0);
    assert_eq!(records.len(), events.len());
    // The write and the re-read both survived the file round trip.
    assert!(records.iter().any(|r| r.op.is_write() && r.ret_count > 0));
    assert!(records.iter().any(|r| r.op.is_read() && r.eof));
}
