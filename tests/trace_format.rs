//! The on-disk trace format and the anonymizer compose: a trace can be
//! written, anonymized, re-read, and analyzed identically.

use nfstrace::anonymize::{Anonymizer, AnonymizerConfig};
use nfstrace::core::summary::SummaryStats;
use nfstrace::core::text;
use nfstrace::core::time::HOUR;
use nfstrace::workload::{CampusConfig, CampusWorkload, EecsConfig, EecsWorkload};

#[test]
fn campus_trace_text_roundtrip() {
    let records = CampusWorkload::new(CampusConfig {
        users: 4,
        duration_micros: 2 * HOUR,
        seed: 5,
        ..CampusConfig::default()
    })
    .generate();
    let mut buf = Vec::new();
    text::write_trace(&mut buf, records.iter()).unwrap();
    let reread = text::read_trace(&buf[..]).unwrap();
    assert_eq!(records, reread);
}

#[test]
fn eecs_trace_text_roundtrip() {
    let records = EecsWorkload::new(EecsConfig {
        users: 3,
        duration_micros: 2 * HOUR,
        seed: 5,
        ..EecsConfig::default()
    })
    .generate();
    let mut buf = Vec::new();
    text::write_trace(&mut buf, records.iter()).unwrap();
    let reread = text::read_trace(&buf[..]).unwrap();
    assert_eq!(records, reread);
}

#[test]
fn anonymized_trace_roundtrips_and_analyzes_identically() {
    let records = CampusWorkload::new(CampusConfig {
        users: 4,
        duration_micros: 2 * HOUR,
        seed: 6,
        ..CampusConfig::default()
    })
    .generate();
    let mut anon = Anonymizer::new(AnonymizerConfig::default());
    let anonymized = anon.anonymize_trace(&records);

    // No raw user name survives.
    for r in &anonymized {
        if let Some(n) = &r.name {
            assert!(!n.starts_with("user0"), "leaked {n}");
        }
    }

    let mut buf = Vec::new();
    text::write_trace(&mut buf, anonymized.iter()).unwrap();
    let reread = text::read_trace(&buf[..]).unwrap();
    assert_eq!(anonymized, reread);

    let s_raw = SummaryStats::from_records(records.iter());
    let s_anon = SummaryStats::from_records(reread.iter());
    assert_eq!(s_raw.total_ops, s_anon.total_ops);
    assert_eq!(s_raw.bytes_read, s_anon.bytes_read);
    assert_eq!(s_raw.bytes_written, s_anon.bytes_written);
    assert_eq!(s_raw.op_counts, s_anon.op_counts);
}

#[test]
fn anonymization_is_consistent_within_a_trace() {
    let records = CampusWorkload::new(CampusConfig {
        users: 3,
        duration_micros: HOUR,
        seed: 8,
        ..CampusConfig::default()
    })
    .generate();
    let mut anon = Anonymizer::new(AnonymizerConfig::default());
    let a = anon.anonymize_trace(&records);
    // Same input name -> same output name everywhere.
    use std::collections::HashMap;
    let mut seen: HashMap<&str, &str> = HashMap::new();
    for (raw, out) in records.iter().zip(&a) {
        if let (Some(rn), Some(on)) = (raw.name.as_deref(), out.name.as_deref()) {
            if let Some(prev) = seen.insert(rn, on) {
                assert_eq!(prev, on, "inconsistent mapping for {rn}");
            }
        }
    }
}
