//! Telemetry must never change what the pipeline prints: the full
//! analysis suite renders byte-identical text whether components run
//! with their default private registries or share one [`Registry`]
//! with a live [`Exporter`] sampling it. This is the in-process twin
//! of the CI `cmp` between `live --metrics` and plain `repro` stdout.

use nfstrace::live::{LiveConfig, ShardedLiveIngest};
use nfstrace::store::{StoreConfig, StoreIndex, StoreWriter};
use nfstrace::telemetry::{Exporter, ExporterConfig, Registry};
use nfstrace_bench::scenarios;
use nfstrace_bench::suite::suite_text;
use std::path::PathBuf;
use std::time::Duration;

const SCALE: f64 = 0.02;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nfstrace-telemetry-determinism-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn suite_text_is_byte_identical_with_telemetry_enabled() {
    // One generation per system; every path below consumes these
    // exact records, so any output difference is telemetry's fault.
    let campus = scenarios::campus(8, SCALE, scenarios::CAMPUS_SEED);
    let eecs = scenarios::eecs(8, SCALE, scenarios::EECS_SEED);

    // Baseline: in-memory indexes, default private registries.
    let baseline = suite_text(
        &nfstrace::core::index::TraceIndex::new(campus.clone()),
        &nfstrace::core::index::TraceIndex::new(eecs.clone()),
    );

    // Everything below shares one registry with an exporter running
    // against it the whole time.
    let dir = temp_dir("work");
    let registry = Registry::new();
    let exporter = Exporter::spawn(
        registry.clone(),
        ExporterConfig {
            interval: Duration::from_secs(1),
            jsonl_path: Some(dir.join("metrics.jsonl")),
            prometheus_path: Some(dir.join("metrics.prom")),
            stderr: false,
        },
    )
    .expect("spawn exporter");

    // Store path: write both systems through instrumented writers,
    // answer the suite over instrumented chunk-decoding indexes.
    let store_text = {
        let mut paths = Vec::new();
        for (name, records) in [("campus", &campus), ("eecs", &eecs)] {
            let path = dir.join(format!("{name}.nfstore"));
            let mut w = StoreWriter::create_with_registry(&path, StoreConfig::default(), &registry)
                .expect("create store");
            for r in records {
                w.push(r).expect("push record");
            }
            w.finish().expect("finish store");
            paths.push(path);
        }
        let campus8 = StoreIndex::open_with_registry(&paths[0], &registry).expect("open campus");
        let eecs8 = StoreIndex::open_with_registry(&paths[1], &registry).expect("open eecs");
        suite_text(&campus8, &eecs8)
    };
    assert!(
        store_text == baseline,
        "store suite text diverged with telemetry enabled"
    );

    // Live path: two-shard ingests sharing the registry, suite over
    // their merged snapshot views.
    let live_text = {
        let mut views = Vec::new();
        for (name, records) in [("campus", &campus), ("eecs", &eecs)] {
            let config = LiveConfig::new(dir.join(format!("live-{name}"))).with_registry(&registry);
            let mut ingest = ShardedLiveIngest::create(config, 2).expect("create ingest");
            for batch in records.chunks(4096) {
                ingest.ingest_batch(batch).expect("ingest batch");
            }
            views.push(ingest.view());
        }
        suite_text(&views[0], &views[1])
    };
    assert!(
        live_text == baseline,
        "live suite text diverged with telemetry enabled"
    );

    // The exporter really was watching: its final snapshot holds the
    // stages' metrics, and both export files exist with content.
    let snapshot = exporter.stop().expect("stop exporter");
    // Every record went through an instrumented StoreWriter twice:
    // once on the store path, once into a live hot segment.
    assert_eq!(
        snapshot.counter("store.records_written"),
        Some(2 * (campus.len() + eecs.len()) as u64)
    );
    assert_eq!(
        snapshot.counter("live.records_emitted"),
        Some((campus.len() + eecs.len()) as u64)
    );
    assert!(snapshot.counter("query.requests").unwrap_or(0) > 0);
    let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("read jsonl");
    assert!(!jsonl.trim().is_empty());
    assert!(
        std::fs::metadata(dir.join("metrics.prom"))
            .expect("prom file")
            .len()
            > 0
    );

    std::fs::remove_dir_all(&dir).ok();
}
