//! End-to-end integration: workload -> wire bytes -> sniffer -> records,
//! with and without mirror-port loss.

use nfstrace::client::{ClientConfig, ClientMachine};
use nfstrace::fssim::NfsServer;
use nfstrace::net::mirror::{MirrorConfig, MirrorPort, MirrorVerdict};
use nfstrace::sniffer::{v3_to_record, CallMeta, Sniffer, WireEncoder};
use nfstrace::workload::emitted_to_record;

fn session() -> Vec<nfstrace::client::EmittedCall> {
    let mut server = NfsServer::new(0x0a010002);
    let root = server.root_fh();
    let mut client = ClientMachine::new(ClientConfig {
        nfsiods: 2,
        seed: 9,
        ..ClientConfig::default()
    });
    let mut t = 0;
    for i in 0..5 {
        let name = format!("file{i}");
        let (fh, t1) = client.create(&mut server, t, &root, &name);
        let fh = fh.unwrap();
        let t2 = client.write(&mut server, t1, &fh, 0, 50_000 + i * 9_000);
        server
            .fs_mut()
            .write(fh.as_u64().unwrap(), 0, 1, t2 + 1)
            .unwrap();
        t = client.read_file(&mut server, t2 + 40_000_000, &fh);
    }
    client.take_events()
}

#[test]
fn wire_path_and_fast_path_agree_udp() {
    let events = session();
    let mut enc = WireEncoder::udp();
    let mut sniffer = Sniffer::new();
    for e in &events {
        for pkt in enc.encode_event(e) {
            sniffer.observe(&pkt);
        }
    }
    let (wire_records, stats) = sniffer.finish();
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.orphan_replies, 0);

    let mut fast: Vec<_> = events.iter().map(emitted_to_record).collect();
    fast.sort_by_key(|r| r.micros);
    assert_eq!(wire_records, fast);
}

#[test]
fn wire_path_and_fast_path_agree_tcp_jumbo() {
    let events = session();
    let mut enc = WireEncoder::tcp_jumbo();
    let mut sniffer = Sniffer::new();
    for e in &events {
        for pkt in enc.encode_event(e) {
            sniffer.observe(&pkt);
        }
    }
    let (wire_records, stats) = sniffer.finish();
    assert_eq!(stats.decode_errors, 0);
    let mut fast: Vec<_> = events.iter().map(emitted_to_record).collect();
    fast.sort_by_key(|r| r.micros);
    assert_eq!(wire_records.len(), fast.len());
    // A record is captured when its *last* TCP segment arrives, so the
    // wire path's timestamps trail the fast path by one microsecond per
    // extra segment. Everything else must match exactly.
    for (w, f) in wire_records.iter().zip(&fast) {
        assert!(
            w.micros.abs_diff(f.micros) <= 8,
            "{} vs {}",
            w.micros,
            f.micros
        );
        assert!(w.reply_micros.abs_diff(f.reply_micros) <= 8);
        let mut w2 = w.clone();
        w2.micros = f.micros;
        w2.reply_micros = f.reply_micros;
        assert_eq!(&w2, f);
    }
}

#[test]
fn oversubscribed_mirror_port_loses_packets_and_sniffer_counts_them() {
    let events = session();
    let mut enc = WireEncoder::udp();
    let mut port = MirrorPort::new(MirrorConfig {
        rate_bytes_per_sec: 2_000_000.0,
        buffer_bytes: 32 * 1024,
    });
    let mut sniffer = Sniffer::new();
    let mut dropped = 0u64;
    for e in &events {
        for pkt in enc.encode_event(e) {
            if port.offer(pkt.timestamp_micros, pkt.data.len()) == MirrorVerdict::Forwarded {
                sniffer.observe(&pkt);
            } else {
                dropped += 1;
            }
        }
    }
    let (records, stats) = sniffer.finish();
    assert!(dropped > 0, "the tap should have been oversubscribed");
    assert!(records.len() < events.len());
    assert!(stats.orphan_replies + stats.lost_replies > 0);
    assert!(stats.estimated_loss_rate() > 0.0);
}

#[test]
fn sniffer_meta_matches_event_identity() {
    let events = session();
    let e = &events[0];
    let meta = CallMeta {
        wire_micros: e.wire_micros,
        reply_micros: e.reply_micros,
        xid: e.xid,
        client: e.client_ip,
        server: e.server_ip,
        uid: e.uid,
        gid: e.gid,
        vers: e.vers,
    };
    let r = v3_to_record(&meta, &e.call, &e.reply);
    assert_eq!(r.client, e.client_ip);
    assert_eq!(r.uid, e.uid);
    assert_eq!(r.xid, e.xid);
}
