//! The TraceIndex contract: every artifact of the reproduction suite
//! over one index performs exactly one bucket+sort pass per (trace,
//! reorder window), and the index's products are identical to the
//! legacy slice-based computations.

use nfstrace::core::runs::RunOptions;
use nfstrace::core::time::DAY;
use nfstrace::core::{reorder, SummaryStats, TraceIndex};
use nfstrace_bench::{scenarios, tables};

#[test]
fn repro_suite_sorts_each_trace_once_per_window() {
    // The repro binary's exact shape, at a small scale: one 8-day
    // generation per system, the analysis week as a time window.
    let (campus8, eecs8) = (
        TraceIndex::new(scenarios::campus(8, 0.1, 42)),
        TraceIndex::new(scenarios::eecs(8, 0.1, 1789)),
    );
    let campus_week = campus8.time_window(0, scenarios::WEEK_DAYS * DAY);
    let eecs_week = eecs8.time_window(0, scenarios::WEEK_DAYS * DAY);

    let _ = tables::table1(&campus_week, &eecs_week);
    let _ = tables::table2(&campus_week, &eecs_week);
    let _ = tables::table3(&campus_week, &eecs_week);
    let _ = tables::table4(&campus8, &eecs8);
    let _ = tables::table5(&campus_week, &eecs_week);
    let _ = tables::fig1(&campus_week, &eecs_week);
    let _ = tables::fig2(&campus_week, &eecs_week);
    let _ = tables::fig3(&campus8, &eecs8);
    let _ = tables::fig4(&campus_week, &eecs_week);
    let _ = tables::fig5(&campus_week, &eecs_week);
    let _ = tables::names_report(&campus_week);
    let _ = tables::hierarchy_coverage(&campus_week);

    // Week views: table3 raw+processed, fig2, and fig5 all need the
    // system's reorder window — one sort pass each, total.
    assert_eq!(campus_week.sort_passes(), 1, "campus week");
    assert_eq!(eecs_week.sort_passes(), 1, "eecs week");
    // The 8-day indices only serve the lifetime artifacts: no sorting.
    assert_eq!(campus8.sort_passes(), 0, "campus 8-day");
    assert_eq!(eecs8.sort_passes(), 0, "eecs 8-day");
}

#[test]
fn index_products_match_legacy_paths_on_generated_trace() {
    let records = scenarios::campus(2, 0.1, 7);
    let idx = TraceIndex::new(records.clone());

    // Summary and hourly: the one-pass build vs dedicated passes.
    assert_eq!(idx.summary(), &SummaryStats::from_records(records.iter()));
    assert_eq!(
        idx.hourly(),
        &nfstrace::core::hourly::HourlySeries::from_records(records.iter())
    );

    // Run tables: index cache vs the legacy bucket-then-sort pipeline.
    for (window, opts) in [
        (0u64, RunOptions::raw()),
        (10, RunOptions::raw()),
        (10, RunOptions::default()),
    ] {
        let mut per_file = reorder::accesses_by_file(records.iter());
        for list in per_file.values_mut() {
            let list: &mut Vec<_> = std::sync::Arc::make_mut(list);
            reorder::sort_within_window(list, window * 1000);
        }
        let legacy = nfstrace::core::runs::runs_for_trace(&per_file, opts);
        assert_eq!(
            idx.runs(window, opts).as_ref(),
            &legacy,
            "window={window} opts={opts:?}"
        );
    }

    // Lifetime: index cache vs direct analysis.
    let cfg = nfstrace::core::lifetime::LifetimeConfig::daily(DAY / 2);
    assert_eq!(
        idx.lifetime(cfg).as_ref(),
        &nfstrace::core::lifetime::analyze(records.iter(), cfg)
    );

    // Names: index cache vs direct report.
    assert_eq!(
        idx.names(),
        &nfstrace::core::names::NamePredictionReport::from_records(records.iter())
    );
}

#[test]
fn time_window_matches_filtered_rebuild() {
    let records = scenarios::eecs(2, 0.1, 3);
    let idx = TraceIndex::new(records.clone());
    let window = idx.time_window(DAY / 4, DAY);
    let filtered: Vec<_> = records
        .iter()
        .filter(|r| (DAY / 4..DAY).contains(&r.micros))
        .cloned()
        .collect();
    let rebuilt = TraceIndex::new(filtered);
    assert_eq!(window.len(), rebuilt.len());
    assert_eq!(window.summary(), rebuilt.summary());
    assert_eq!(
        window.runs(5, RunOptions::default()).as_ref(),
        rebuilt.runs(5, RunOptions::default()).as_ref()
    );
}
