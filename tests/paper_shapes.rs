//! Shape assertions: the qualitative relations each paper artifact
//! reports must hold on small regenerated traces.

use nfstrace::core::lifetime;
use nfstrace::core::reorder;
use nfstrace::core::runs::{RunKind, RunOptions};
use nfstrace::core::seqmetric::metric_by_run_size;
use nfstrace::core::summary::SummaryStats;
use nfstrace::core::time::DAY;
use nfstrace::core::TraceIndex;
use nfstrace_bench::tables;
use std::sync::OnceLock;

fn campus() -> &'static TraceIndex {
    static TRACE: OnceLock<TraceIndex> = OnceLock::new();
    TRACE.get_or_init(|| TraceIndex::new(nfstrace_bench::scenarios::campus(3, 0.25, 42)))
}

fn eecs() -> &'static TraceIndex {
    static TRACE: OnceLock<TraceIndex> = OnceLock::new();
    TRACE.get_or_init(|| TraceIndex::new(nfstrace_bench::scenarios::eecs(3, 0.25, 1789)))
}

#[test]
fn table1_shape_campus_reads_eecs_writes() {
    let sc = campus().summary();
    let se = eecs().summary();
    // CAMPUS: reading dominates; EECS: writing dominates (Table 1).
    assert!(sc.rw_bytes_ratio() > 1.5, "campus {}", sc.rw_bytes_ratio());
    assert!(se.rw_bytes_ratio() < 1.0, "eecs {}", se.rw_bytes_ratio());
    // CAMPUS: most calls are data; EECS: most are metadata.
    assert!(sc.data_fraction() > 0.5);
    assert!(se.data_fraction() < 0.5);
}

#[test]
fn table2_shape_campus_busier() {
    // The index's one-pass summary must agree with a fresh legacy pass.
    let sc = campus().summary();
    let se = eecs().summary();
    assert_eq!(sc, &SummaryStats::from_records(campus().records().iter()));
    // "CAMPUS is an order of magnitude busier than any of the other
    // systems" — per capita it far out-traffics EECS here.
    assert!(sc.bytes_read > 4 * se.bytes_read);
}

#[test]
fn table3_processing_recovers_sequentiality() {
    for (idx, win) in [(campus(), 10u64), (eecs(), 5u64)] {
        let raw = tables::trace_runs(idx, 0, RunOptions::raw());
        let processed = tables::trace_runs(idx, win, RunOptions::default());
        let random_frac = |runs: &[nfstrace::core::runs::Run]| {
            let total = runs.len().max(1) as f64;
            runs.iter()
                .filter(|r| r.pattern == nfstrace::core::runs::RunPattern::Random)
                .count() as f64
                / total
        };
        // The paper's point: raw analysis overstates randomness.
        assert!(
            random_frac(&processed) <= random_frac(&raw) + 1e-9,
            "window {win}: processed {} vs raw {}",
            random_frac(&processed),
            random_frac(&raw)
        );
    }
}

#[test]
fn fig1_swapped_fraction_monotone_with_knee() {
    let per_file = reorder::accesses_by_file(campus().records().iter());
    let pts = reorder::swap_fraction_sweep(&per_file, &[0, 2, 5, 10, 20, 50]);
    assert_eq!(pts[0].swapped_fraction, 0.0);
    for w in pts.windows(2) {
        assert!(w[1].swapped_fraction >= w[0].swapped_fraction - 1e-12);
    }
    // The knee: most of the gain arrives by 20 ms.
    let at20 = pts[4].swapped_fraction;
    let at50 = pts[5].swapped_fraction;
    assert!(at50 - at20 < 0.05, "at20={at20} at50={at50}");
}

#[test]
fn table4_death_causes_differ_by_system() {
    let cfg = lifetime::LifetimeConfig {
        phase1_start: DAY,
        phase1_len: DAY,
        phase2_len: DAY,
    };
    let rc = campus().lifetime(cfg);
    let re = eecs().lifetime(cfg);
    // CAMPUS deaths are overwhelmingly overwrites; EECS has a large
    // delete share (Table 4).
    let c_ow = rc.deaths_overwrite as f64 / rc.deaths_total().max(1) as f64;
    let e_del = re.deaths_delete as f64 / re.deaths_total().max(1) as f64;
    assert!(c_ow > 0.8, "campus overwrite fraction {c_ow}");
    assert!(e_del > 0.2, "eecs delete fraction {e_del}");
}

#[test]
fn fig3_eecs_blocks_die_much_faster() {
    let cfg = lifetime::LifetimeConfig {
        phase1_start: DAY,
        phase1_len: DAY,
        phase2_len: DAY,
    };
    let rc = campus().lifetime(cfg);
    let re = eecs().lifetime(cfg);
    // The lifetime mixes are bimodal, so compare the CDF at one second:
    // EECS has a large sub-second population (paper: ~50%), CAMPUS has
    // almost none ("few blocks live for less than a second").
    let sub_second = |rep: &lifetime::LifetimeReport| {
        rep.lifespans.iter().filter(|&&l| l < 1_000_000).count() as f64
            / rep.lifespans.len().max(1) as f64
    };
    assert!(sub_second(&re) > 0.3, "eecs sub-second {}", sub_second(&re));
    assert!(
        sub_second(&rc) < 0.15,
        "campus sub-second {}",
        sub_second(&rc)
    );
    // And CAMPUS's median block lives minutes (mail-session timescales).
    let mc = rc.median_lifespan().unwrap();
    assert!(mc > 60_000_000, "campus median {mc}");
}

#[test]
fn table5_peak_hours_cut_variance() {
    let series = campus().hourly();
    let all = series.table5(false);
    let peak = series.table5(true);
    assert!(
        peak.total_ops.std_pct() < all.total_ops.std_pct(),
        "peak {} vs all {}",
        peak.total_ops.std_pct(),
        all.total_ops.std_pct()
    );
}

#[test]
fn fig5_long_reads_more_sequential_than_writes() {
    let runs = tables::trace_runs(campus(), 10, RunOptions::default());
    let reads = metric_by_run_size(&runs, RunKind::Read, 10);
    // Long reads (1 MB+) are nearly fully sequential with jumps allowed.
    let long_reads: Vec<_> = reads
        .iter()
        .filter(|p| p.bucket >= 1 << 20 && p.runs > 0)
        .collect();
    assert!(!long_reads.is_empty());
    for p in long_reads {
        assert!(
            p.mean_metric > 0.8,
            "bucket {} metric {}",
            p.bucket,
            p.mean_metric
        );
    }
}

#[test]
fn names_predict_attributes() {
    let rep = campus().names();
    // Locks dominate churn (paper: 96% on CAMPUS).
    assert!(
        rep.lock_fraction_of_churn() > 0.5,
        "{}",
        rep.lock_fraction_of_churn()
    );
    let locks = &rep.by_category[&nfstrace::core::names::FileCategory::Lock];
    assert!(locks.size_accuracy() > 0.95);
    assert!(locks.lifetime_accuracy() > 0.95);
}

#[test]
fn hierarchy_coverage_climbs_within_minutes() {
    let pts = nfstrace::core::hierarchy::coverage_over_time(
        campus().records().iter(),
        10 * 60 * 1_000_000,
    );
    assert!(pts.len() > 3);
    let late: f64 = pts[pts.len() - 3..]
        .iter()
        .map(|p| p.known_fraction)
        .sum::<f64>()
        / 3.0;
    assert!(late > 0.5, "late coverage {late}");
}
