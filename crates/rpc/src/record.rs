//! RPC record marking over TCP (RFC 1831 §10).
//!
//! A TCP byte stream carries RPC messages as *records*, each split into
//! fragments headed by a 4-byte marker: the top bit flags the last
//! fragment, the low 31 bits give the fragment length. The paper's tracer
//! supported "some forms of TCP packet coalescing" (§2) — i.e. multiple
//! records and partial records per segment — which is exactly what
//! [`RecordReader`] handles.

use nfstrace_xdr::{Error, Result};

/// Flag bit marking the final fragment of a record.
const LAST_FRAGMENT: u32 = 0x8000_0000;

/// Sane ceiling on a single record, to resynchronize after stream
/// corruption rather than buffering unboundedly.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// Encodes one RPC message as a single-fragment record.
pub fn mark_record(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + msg.len());
    mark_record_into(msg, &mut out);
    out
}

/// Appends one RPC message as a single-fragment record to `out`: the
/// scratch-buffer-reusing form of [`mark_record`]. `out` is not cleared,
/// so a stream of records can be marked into one reused buffer.
pub fn mark_record_into(msg: &[u8], out: &mut Vec<u8>) {
    let header = LAST_FRAGMENT | (msg.len() as u32);
    out.extend_from_slice(&header.to_be_bytes());
    out.extend_from_slice(msg);
}

/// Encodes one RPC message split into fragments of at most `frag_len`
/// bytes, exercising multi-fragment reassembly.
///
/// # Panics
///
/// Panics if `frag_len` is zero.
pub fn mark_record_fragmented(msg: &[u8], frag_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(msg.len() + 8);
    mark_record_fragmented_into(msg, frag_len, &mut out);
    out
}

/// Appends a fragmented record to `out`: the scratch-buffer-reusing form
/// of [`mark_record_fragmented`]. `out` is not cleared.
///
/// # Panics
///
/// Panics if `frag_len` is zero.
pub fn mark_record_fragmented_into(msg: &[u8], frag_len: usize, out: &mut Vec<u8>) {
    assert!(frag_len > 0, "fragment length must be positive");
    let mut chunks = msg.chunks(frag_len).peekable();
    if msg.is_empty() {
        out.extend_from_slice(&LAST_FRAGMENT.to_be_bytes());
        return;
    }
    while let Some(chunk) = chunks.next() {
        let mut header = chunk.len() as u32;
        if chunks.peek().is_none() {
            header |= LAST_FRAGMENT;
        }
        out.extend_from_slice(&header.to_be_bytes());
        out.extend_from_slice(chunk);
    }
}

/// Incrementally extracts RPC records from a reassembled TCP stream.
///
/// Feed stream bytes with [`RecordReader::push`]; complete messages pop
/// out of [`RecordReader::next_record`]. Partial input is buffered.
///
/// # Examples
///
/// ```
/// use nfstrace_rpc::record::{mark_record, RecordReader};
///
/// let mut r = RecordReader::new();
/// let wire = mark_record(b"hello rpc");
/// r.push(&wire[..3]);           // partial header
/// assert!(r.next_record().unwrap().is_none());
/// r.push(&wire[3..]);
/// assert_eq!(r.next_record().unwrap().unwrap(), b"hello rpc");
/// ```
#[derive(Debug, Default)]
pub struct RecordReader {
    buf: Vec<u8>,
    /// Offset of unconsumed data in `buf` (compacted periodically).
    start: usize,
    /// Scratch for records assembled across fragments or pushes. Reused:
    /// the previous record's bytes are cleared lazily on the next call
    /// (see `record_done`), so steady-state extraction never allocates.
    record: Vec<u8>,
    /// The scratch holds a fully returned record awaiting lazy clear.
    record_done: bool,
    /// Remaining bytes of the current fragment, if mid-fragment.
    frag_remaining: usize,
    /// Whether the current fragment is the record's last.
    frag_is_last: bool,
    /// Whether we are mid-fragment (frag_remaining may be 0 legally only
    /// between fragments).
    in_fragment: bool,
}

/// One complete record, borrowed from a [`RecordReader`]'s internal
/// buffers. Valid until the reader's next mutation (`push`,
/// `next_record_ref`, `reset`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef<'a> {
    /// The record's bytes (one whole RPC message).
    pub bytes: &'a [u8],
    /// `true` when the record had to be assembled in the scratch buffer
    /// (multi-fragment, or split across pushes); `false` when it is a
    /// direct no-copy view into the stream buffer.
    pub assembled: bool,
}

impl RecordReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends reassembled stream bytes.
    pub fn push(&mut self, data: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Discards all buffered state; used to resynchronize after a stream
    /// gap (the caller realigns on the next record boundary heuristically).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.record.clear();
        self.record_done = false;
        self.frag_remaining = 0;
        self.frag_is_last = false;
        self.in_fragment = false;
    }

    /// Bytes buffered but not yet returned.
    pub fn buffered(&self) -> usize {
        let partial = if self.record_done {
            0 // scratch holds an already-returned record, cleared lazily
        } else {
            self.record.len()
        };
        (self.buf.len() - self.start) + partial
    }

    /// Attempts to extract the next complete record.
    ///
    /// # Errors
    ///
    /// [`Error::LengthTooLarge`] if a fragment header declares a length
    /// beyond [`MAX_RECORD_LEN`] — the stream is corrupt and the caller
    /// should [`RecordReader::reset`].
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(self.next_record_ref()?.map(|r| r.bytes.to_vec()))
    }

    /// Attempts to extract the next complete record as a borrowed view —
    /// the zero-copy form of [`RecordReader::next_record`].
    ///
    /// A single-fragment record lying contiguous in the stream buffer is
    /// returned as a direct slice into it (no copy at all); records split
    /// across fragments or pushes are assembled in an internal scratch
    /// buffer that is reused from record to record, so steady-state
    /// extraction performs no allocation either way. The returned view
    /// borrows the reader and dies at its next mutation.
    ///
    /// # Errors
    ///
    /// Same as [`RecordReader::next_record`].
    pub fn next_record_ref(&mut self) -> Result<Option<RecordRef<'_>>> {
        if self.record_done {
            self.record.clear();
            self.record_done = false;
        }
        loop {
            if self.in_fragment {
                let avail = self.buf.len() - self.start;
                let take = avail.min(self.frag_remaining);
                self.record
                    .extend_from_slice(&self.buf[self.start..self.start + take]);
                self.start += take;
                self.frag_remaining -= take;
                if self.frag_remaining > 0 {
                    return Ok(None); // need more stream data
                }
                self.in_fragment = false;
                if self.frag_is_last {
                    self.record_done = true;
                    return Ok(Some(RecordRef {
                        bytes: &self.record,
                        assembled: true,
                    }));
                }
                // Fall through to read the next fragment header.
            }
            let avail = self.buf.len() - self.start;
            if avail < 4 {
                return Ok(None);
            }
            let h = &self.buf[self.start..self.start + 4];
            let header = u32::from_be_bytes([h[0], h[1], h[2], h[3]]);
            let len = (header & !LAST_FRAGMENT) as usize;
            if len > MAX_RECORD_LEN || self.record.len() + len > MAX_RECORD_LEN {
                return Err(Error::LengthTooLarge {
                    declared: len,
                    limit: MAX_RECORD_LEN,
                });
            }
            let last = header & LAST_FRAGMENT != 0;
            if last && self.record.is_empty() && avail - 4 >= len {
                // Fast path: a whole single-fragment record contiguous in
                // the stream buffer — hand out a direct view.
                let body = self.start + 4;
                self.start = body + len;
                return Ok(Some(RecordRef {
                    bytes: &self.buf[body..body + len],
                    assembled: false,
                }));
            }
            self.start += 4;
            self.frag_remaining = len;
            self.frag_is_last = last;
            self.in_fragment = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_record() {
        let mut r = RecordReader::new();
        r.push(&mark_record(b"abcd"));
        assert_eq!(r.next_record().unwrap().unwrap(), b"abcd");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn coalesced_records_in_one_push() {
        let mut r = RecordReader::new();
        let mut wire = mark_record(b"first");
        wire.extend_from_slice(&mark_record(b"second"));
        r.push(&wire);
        assert_eq!(r.next_record().unwrap().unwrap(), b"first");
        assert_eq!(r.next_record().unwrap().unwrap(), b"second");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn record_split_across_pushes_byte_by_byte() {
        let wire = mark_record(b"slow trickle");
        let mut r = RecordReader::new();
        let mut out = Vec::new();
        for b in wire {
            r.push(&[b]);
            if let Some(rec) = r.next_record().unwrap() {
                out = rec;
            }
        }
        assert_eq!(out, b"slow trickle");
    }

    #[test]
    fn multi_fragment_record() {
        let msg: Vec<u8> = (0..100).collect();
        let wire = mark_record_fragmented(&msg, 7);
        let mut r = RecordReader::new();
        r.push(&wire);
        assert_eq!(r.next_record().unwrap().unwrap(), msg);
    }

    #[test]
    fn empty_record() {
        let mut r = RecordReader::new();
        r.push(&mark_record(b""));
        assert_eq!(r.next_record().unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_header_is_error() {
        let mut r = RecordReader::new();
        let header = (MAX_RECORD_LEN as u32 + 1) | 0x8000_0000;
        r.push(&header.to_be_bytes());
        assert!(r.next_record().is_err());
        r.reset();
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn ref_reader_fast_path_is_a_direct_view() {
        let mut r = RecordReader::new();
        let mut wire = mark_record(b"first");
        mark_record_into(b"second", &mut wire);
        r.push(&wire);
        let rec = r.next_record_ref().unwrap().unwrap();
        assert_eq!(rec.bytes, b"first");
        assert!(!rec.assembled, "contiguous record should not be copied");
        let rec = r.next_record_ref().unwrap().unwrap();
        assert_eq!(rec.bytes, b"second");
        assert!(!rec.assembled);
        assert!(r.next_record_ref().unwrap().is_none());
    }

    #[test]
    fn ref_reader_assembles_fragments_in_reused_scratch() {
        let msg: Vec<u8> = (0..100).collect();
        let mut wire = mark_record_fragmented(&msg, 7);
        mark_record_fragmented_into(&msg, 13, &mut wire);
        let mut r = RecordReader::new();
        r.push(&wire);
        let rec = r.next_record_ref().unwrap().unwrap();
        assert_eq!(rec.bytes, msg);
        assert!(rec.assembled);
        let rec = r.next_record_ref().unwrap().unwrap();
        assert_eq!(rec.bytes, msg);
        assert!(rec.assembled);
        assert!(r.next_record_ref().unwrap().is_none());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn ref_reader_split_push_counts_as_assembled() {
        let wire = mark_record(b"split across pushes");
        let mut r = RecordReader::new();
        r.push(&wire[..7]);
        assert!(r.next_record_ref().unwrap().is_none());
        r.push(&wire[7..]);
        let rec = r.next_record_ref().unwrap().unwrap();
        assert_eq!(rec.bytes, b"split across pushes");
        assert!(rec.assembled);
    }

    #[test]
    fn mark_into_variants_append_identically() {
        let mut streamed = Vec::new();
        mark_record_into(b"one", &mut streamed);
        mark_record_fragmented_into(b"twotwo", 4, &mut streamed);
        let mut concat = mark_record(b"one");
        concat.extend_from_slice(&mark_record_fragmented(b"twotwo", 4));
        assert_eq!(streamed, concat);
    }

    #[test]
    fn interleaved_fragment_and_next_record() {
        let a = mark_record_fragmented(b"AAAA", 2);
        let b = mark_record(b"BB");
        let mut wire = a;
        wire.extend_from_slice(&b);
        let mut r = RecordReader::new();
        // Push in awkward chunks.
        for chunk in wire.chunks(3) {
            r.push(chunk);
        }
        assert_eq!(r.next_record().unwrap().unwrap(), b"AAAA");
        assert_eq!(r.next_record().unwrap().unwrap(), b"BB");
    }
}
