//! RPC record marking over TCP (RFC 1831 §10).
//!
//! A TCP byte stream carries RPC messages as *records*, each split into
//! fragments headed by a 4-byte marker: the top bit flags the last
//! fragment, the low 31 bits give the fragment length. The paper's tracer
//! supported "some forms of TCP packet coalescing" (§2) — i.e. multiple
//! records and partial records per segment — which is exactly what
//! [`RecordReader`] handles.

use nfstrace_xdr::{Error, Result};

/// Flag bit marking the final fragment of a record.
const LAST_FRAGMENT: u32 = 0x8000_0000;

/// Sane ceiling on a single record, to resynchronize after stream
/// corruption rather than buffering unboundedly.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// Encodes one RPC message as a single-fragment record.
pub fn mark_record(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + msg.len());
    let header = LAST_FRAGMENT | (msg.len() as u32);
    out.extend_from_slice(&header.to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// Encodes one RPC message split into fragments of at most `frag_len`
/// bytes, exercising multi-fragment reassembly.
///
/// # Panics
///
/// Panics if `frag_len` is zero.
pub fn mark_record_fragmented(msg: &[u8], frag_len: usize) -> Vec<u8> {
    assert!(frag_len > 0, "fragment length must be positive");
    let mut out = Vec::with_capacity(msg.len() + 8);
    let mut chunks = msg.chunks(frag_len).peekable();
    if msg.is_empty() {
        out.extend_from_slice(&LAST_FRAGMENT.to_be_bytes());
        return out;
    }
    while let Some(chunk) = chunks.next() {
        let mut header = chunk.len() as u32;
        if chunks.peek().is_none() {
            header |= LAST_FRAGMENT;
        }
        out.extend_from_slice(&header.to_be_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

/// Incrementally extracts RPC records from a reassembled TCP stream.
///
/// Feed stream bytes with [`RecordReader::push`]; complete messages pop
/// out of [`RecordReader::next_record`]. Partial input is buffered.
///
/// # Examples
///
/// ```
/// use nfstrace_rpc::record::{mark_record, RecordReader};
///
/// let mut r = RecordReader::new();
/// let wire = mark_record(b"hello rpc");
/// r.push(&wire[..3]);           // partial header
/// assert!(r.next_record().unwrap().is_none());
/// r.push(&wire[3..]);
/// assert_eq!(r.next_record().unwrap().unwrap(), b"hello rpc");
/// ```
#[derive(Debug, Default)]
pub struct RecordReader {
    buf: Vec<u8>,
    /// Offset of unconsumed data in `buf` (compacted periodically).
    start: usize,
    /// Bytes of the record assembled so far (across fragments).
    record: Vec<u8>,
    /// Remaining bytes of the current fragment, if mid-fragment.
    frag_remaining: usize,
    /// Whether the current fragment is the record's last.
    frag_is_last: bool,
    /// Whether we are mid-fragment (frag_remaining may be 0 legally only
    /// between fragments).
    in_fragment: bool,
}

impl RecordReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends reassembled stream bytes.
    pub fn push(&mut self, data: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Discards all buffered state; used to resynchronize after a stream
    /// gap (the caller realigns on the next record boundary heuristically).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.record.clear();
        self.frag_remaining = 0;
        self.frag_is_last = false;
        self.in_fragment = false;
    }

    /// Bytes buffered but not yet returned.
    pub fn buffered(&self) -> usize {
        (self.buf.len() - self.start) + self.record.len()
    }

    /// Attempts to extract the next complete record.
    ///
    /// # Errors
    ///
    /// [`Error::LengthTooLarge`] if a fragment header declares a length
    /// beyond [`MAX_RECORD_LEN`] — the stream is corrupt and the caller
    /// should [`RecordReader::reset`].
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        loop {
            if self.in_fragment {
                let avail = self.buf.len() - self.start;
                let take = avail.min(self.frag_remaining);
                self.record
                    .extend_from_slice(&self.buf[self.start..self.start + take]);
                self.start += take;
                self.frag_remaining -= take;
                if self.frag_remaining > 0 {
                    return Ok(None); // need more stream data
                }
                self.in_fragment = false;
                if self.frag_is_last {
                    let complete = std::mem::take(&mut self.record);
                    return Ok(Some(complete));
                }
                // Fall through to read the next fragment header.
            }
            let avail = self.buf.len() - self.start;
            if avail < 4 {
                return Ok(None);
            }
            let h = &self.buf[self.start..self.start + 4];
            let header = u32::from_be_bytes([h[0], h[1], h[2], h[3]]);
            let len = (header & !LAST_FRAGMENT) as usize;
            if len > MAX_RECORD_LEN || self.record.len() + len > MAX_RECORD_LEN {
                return Err(Error::LengthTooLarge {
                    declared: len,
                    limit: MAX_RECORD_LEN,
                });
            }
            self.start += 4;
            self.frag_remaining = len;
            self.frag_is_last = header & LAST_FRAGMENT != 0;
            self.in_fragment = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_record() {
        let mut r = RecordReader::new();
        r.push(&mark_record(b"abcd"));
        assert_eq!(r.next_record().unwrap().unwrap(), b"abcd");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn coalesced_records_in_one_push() {
        let mut r = RecordReader::new();
        let mut wire = mark_record(b"first");
        wire.extend_from_slice(&mark_record(b"second"));
        r.push(&wire);
        assert_eq!(r.next_record().unwrap().unwrap(), b"first");
        assert_eq!(r.next_record().unwrap().unwrap(), b"second");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn record_split_across_pushes_byte_by_byte() {
        let wire = mark_record(b"slow trickle");
        let mut r = RecordReader::new();
        let mut out = Vec::new();
        for b in wire {
            r.push(&[b]);
            if let Some(rec) = r.next_record().unwrap() {
                out = rec;
            }
        }
        assert_eq!(out, b"slow trickle");
    }

    #[test]
    fn multi_fragment_record() {
        let msg: Vec<u8> = (0..100).collect();
        let wire = mark_record_fragmented(&msg, 7);
        let mut r = RecordReader::new();
        r.push(&wire);
        assert_eq!(r.next_record().unwrap().unwrap(), msg);
    }

    #[test]
    fn empty_record() {
        let mut r = RecordReader::new();
        r.push(&mark_record(b""));
        assert_eq!(r.next_record().unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_header_is_error() {
        let mut r = RecordReader::new();
        let header = (MAX_RECORD_LEN as u32 + 1) | 0x8000_0000;
        r.push(&header.to_be_bytes());
        assert!(r.next_record().is_err());
        r.reset();
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn interleaved_fragment_and_next_record() {
        let a = mark_record_fragmented(b"AAAA", 2);
        let b = mark_record(b"BB");
        let mut wire = a;
        wire.extend_from_slice(&b);
        let mut r = RecordReader::new();
        // Push in awkward chunks.
        for chunk in wire.chunks(3) {
            r.push(chunk);
        }
        assert_eq!(r.next_record().unwrap().unwrap(), b"AAAA");
        assert_eq!(r.next_record().unwrap().unwrap(), b"BB");
    }
}
