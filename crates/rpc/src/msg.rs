//! RPC call and reply messages (RFC 1831 §8).
//!
//! Two decode surfaces share one implementation: the borrowed
//! [`RpcMessageView`] reads a message as views into the record buffer
//! (no body copies — this is what the sniffer's hot path uses), and the
//! owned [`RpcMessage`]'s `Unpack` impl is the view decode followed by a
//! single materializing copy.

use crate::auth::{AuthRef, OpaqueAuth};
use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};

/// RPC protocol version; always 2.
pub const RPC_VERSION: u32 = 2;

const MSG_CALL: u32 = 0;
const MSG_REPLY: u32 = 1;

/// The body of a call message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallBody {
    /// RPC version (must be 2).
    pub rpcvers: u32,
    /// Remote program, e.g. [`crate::PROG_NFS`].
    pub prog: u32,
    /// Program version (2 or 3 for NFS).
    pub vers: u32,
    /// Procedure number within the program.
    pub proc: u32,
    /// Credential.
    pub cred: OpaqueAuth,
    /// Verifier.
    pub verf: OpaqueAuth,
    /// Procedure arguments, left as raw XDR for the NFS layer.
    pub args: Vec<u8>,
}

/// Reply disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStat {
    /// The call was accepted and executed (body carries a status).
    Accepted,
    /// The call was rejected (auth failure or version mismatch).
    Denied,
}

/// Accept status for accepted replies (RFC 1831 `accept_stat`).
pub mod accept_stat {
    /// Procedure executed successfully.
    pub const SUCCESS: u32 = 0;
    /// Program not exported here.
    pub const PROG_UNAVAIL: u32 = 1;
    /// Program version out of range.
    pub const PROG_MISMATCH: u32 = 2;
    /// Unsupported procedure.
    pub const PROC_UNAVAIL: u32 = 3;
    /// Arguments undecodable.
    pub const GARBAGE_ARGS: u32 = 4;
    /// Server-side memory or similar failure.
    pub const SYSTEM_ERR: u32 = 5;
}

/// The body of a reply message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyBody {
    /// Accepted or denied.
    pub stat: ReplyStat,
    /// Verifier (accepted replies only; zeroed otherwise).
    pub verf: OpaqueAuth,
    /// `accept_stat` for accepted replies; rejection code for denials.
    pub accept_stat: u32,
    /// Procedure results, raw XDR for the NFS layer (accepted+success).
    pub results: Vec<u8>,
}

/// Either body variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgBody {
    /// A call.
    Call(CallBody),
    /// A reply.
    Reply(ReplyBody),
}

/// A complete RPC message: XID plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcMessage {
    /// Transaction id linking a reply to its call.
    pub xid: u32,
    /// Call or reply body.
    pub body: MsgBody,
}

impl RpcMessage {
    /// Builds a call message.
    pub fn call(
        xid: u32,
        prog: u32,
        vers: u32,
        proc: u32,
        cred: OpaqueAuth,
        args: Vec<u8>,
    ) -> Self {
        RpcMessage {
            xid,
            body: MsgBody::Call(CallBody {
                rpcvers: RPC_VERSION,
                prog,
                vers,
                proc,
                cred,
                verf: OpaqueAuth::none(),
                args,
            }),
        }
    }

    /// Builds a successful accepted reply carrying `results`.
    pub fn reply_success(xid: u32, results: Vec<u8>) -> Self {
        RpcMessage {
            xid,
            body: MsgBody::Reply(ReplyBody {
                stat: ReplyStat::Accepted,
                verf: OpaqueAuth::none(),
                accept_stat: accept_stat::SUCCESS,
                results,
            }),
        }
    }

    /// Builds an accepted reply carrying a non-`SUCCESS`
    /// [`accept_stat`] code and no results — how a server refuses a
    /// call it understood at the RPC layer but cannot service
    /// (`PROG_UNAVAIL`, `PROG_MISMATCH`, `PROC_UNAVAIL`,
    /// `GARBAGE_ARGS`, `SYSTEM_ERR`).
    pub fn reply_error(xid: u32, accept_stat: u32) -> Self {
        RpcMessage {
            xid,
            body: MsgBody::Reply(ReplyBody {
                stat: ReplyStat::Accepted,
                verf: OpaqueAuth::none(),
                accept_stat,
                results: Vec::new(),
            }),
        }
    }

    /// Whether this is a call.
    pub fn is_call(&self) -> bool {
        matches!(self.body, MsgBody::Call(_))
    }

    /// The call body, if this is a call.
    pub fn as_call(&self) -> Option<&CallBody> {
        match &self.body {
            MsgBody::Call(c) => Some(c),
            MsgBody::Reply(_) => None,
        }
    }

    /// The reply body, if this is a reply.
    pub fn as_reply(&self) -> Option<&ReplyBody> {
        match &self.body {
            MsgBody::Reply(r) => Some(r),
            MsgBody::Call(_) => None,
        }
    }
}

impl Pack for RpcMessage {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.xid);
        match &self.body {
            MsgBody::Call(c) => {
                enc.put_u32(MSG_CALL);
                enc.put_u32(c.rpcvers);
                enc.put_u32(c.prog);
                enc.put_u32(c.vers);
                enc.put_u32(c.proc);
                c.cred.pack(enc);
                c.verf.pack(enc);
                enc.put_opaque_fixed(&c.args); // args are already XDR
            }
            MsgBody::Reply(r) => {
                enc.put_u32(MSG_REPLY);
                match r.stat {
                    ReplyStat::Accepted => {
                        enc.put_u32(0); // MSG_ACCEPTED
                        r.verf.pack(enc);
                        enc.put_u32(r.accept_stat);
                        enc.put_opaque_fixed(&r.results);
                    }
                    ReplyStat::Denied => {
                        enc.put_u32(1); // MSG_DENIED
                        enc.put_u32(r.accept_stat);
                    }
                }
            }
        }
    }
}

impl Unpack for RpcMessage {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        RpcMessageView::unpack_view(dec).map(|v| v.to_owned())
    }
}

/// A borrowed call body: [`CallBody`] with credentials and arguments as
/// views into the record buffer (`args: &'a [u8]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallView<'a> {
    /// RPC version (must be 2).
    pub rpcvers: u32,
    /// Remote program, e.g. [`crate::PROG_NFS`].
    pub prog: u32,
    /// Program version (2 or 3 for NFS).
    pub vers: u32,
    /// Procedure number within the program.
    pub proc: u32,
    /// Credential (body borrowed).
    pub cred: AuthRef<'a>,
    /// Verifier (body borrowed).
    pub verf: AuthRef<'a>,
    /// Procedure arguments, raw XDR borrowed from the record buffer.
    pub args: &'a [u8],
}

impl CallView<'_> {
    /// Copies into an owned [`CallBody`].
    pub fn to_owned(self) -> CallBody {
        CallBody {
            rpcvers: self.rpcvers,
            prog: self.prog,
            vers: self.vers,
            proc: self.proc,
            cred: self.cred.to_owned(),
            verf: self.verf.to_owned(),
            args: self.args.to_vec(),
        }
    }
}

/// A borrowed reply body: [`ReplyBody`] with `results: &'a [u8]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyView<'a> {
    /// Accepted or denied.
    pub stat: ReplyStat,
    /// Verifier (accepted replies only; empty otherwise).
    pub verf: AuthRef<'a>,
    /// `accept_stat` for accepted replies; rejection code for denials.
    pub accept_stat: u32,
    /// Procedure results, raw XDR borrowed from the record buffer.
    pub results: &'a [u8],
}

impl ReplyView<'_> {
    /// Copies into an owned [`ReplyBody`].
    pub fn to_owned(self) -> ReplyBody {
        ReplyBody {
            stat: self.stat,
            verf: self.verf.to_owned(),
            accept_stat: self.accept_stat,
            results: self.results.to_vec(),
        }
    }
}

/// Either borrowed body variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgBodyView<'a> {
    /// A call.
    Call(CallView<'a>),
    /// A reply.
    Reply(ReplyView<'a>),
}

/// A complete RPC message decoded as views into the record buffer: the
/// zero-copy counterpart of [`RpcMessage`].
///
/// All byte fields (`args`, `results`, authenticator bodies) borrow the
/// input passed to [`RpcMessageView::decode`], so xid matching and NFS
/// argument decoding never copy a body. The owned decoder is implemented
/// on top of this one, which keeps the accepted wire forms — and every
/// error case — identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcMessageView<'a> {
    /// Transaction id linking a reply to its call.
    pub xid: u32,
    /// Call or reply body.
    pub body: MsgBodyView<'a>,
}

impl<'a> RpcMessageView<'a> {
    /// Decodes a whole record as a borrowed message, requiring that the
    /// entire input is consumed (the record reader hands over exactly
    /// one record).
    ///
    /// # Errors
    ///
    /// Exactly those of `RpcMessage::from_xdr_bytes`.
    pub fn decode(bytes: &'a [u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let v = Self::unpack_view(&mut dec)?;
        if dec.is_empty() {
            Ok(v)
        } else {
            Err(Error::TrailingBytes {
                remaining: dec.remaining(),
            })
        }
    }

    fn unpack_view(dec: &mut Decoder<'a>) -> Result<Self> {
        let xid = dec.get_u32()?;
        let mtype = dec.get_u32()?;
        match mtype {
            MSG_CALL => {
                let rpcvers = dec.get_u32()?;
                if rpcvers != RPC_VERSION {
                    return Err(Error::InvalidDiscriminant {
                        what: "rpc version",
                        value: rpcvers,
                    });
                }
                let prog = dec.get_u32()?;
                let vers = dec.get_u32()?;
                let proc = dec.get_u32()?;
                let cred = AuthRef::decode(dec)?;
                let verf = AuthRef::decode(dec)?;
                let args = dec.get_opaque_fixed_ref(dec.remaining())?;
                Ok(RpcMessageView {
                    xid,
                    body: MsgBodyView::Call(CallView {
                        rpcvers,
                        prog,
                        vers,
                        proc,
                        cred,
                        verf,
                        args,
                    }),
                })
            }
            MSG_REPLY => {
                let reply_stat = dec.get_u32()?;
                match reply_stat {
                    0 => {
                        let verf = AuthRef::decode(dec)?;
                        let accept_stat = dec.get_u32()?;
                        let results = dec.get_opaque_fixed_ref(dec.remaining())?;
                        Ok(RpcMessageView {
                            xid,
                            body: MsgBodyView::Reply(ReplyView {
                                stat: ReplyStat::Accepted,
                                verf,
                                accept_stat,
                                results,
                            }),
                        })
                    }
                    1 => {
                        let reject = dec.get_u32()?;
                        // Consume any remaining detail (mismatch info /
                        // auth stat) without interpreting it.
                        let _ = dec.skip(dec.remaining());
                        Ok(RpcMessageView {
                            xid,
                            body: MsgBodyView::Reply(ReplyView {
                                stat: ReplyStat::Denied,
                                verf: AuthRef {
                                    flavor: crate::auth::flavor::AUTH_NONE,
                                    body: &[],
                                },
                                accept_stat: reject,
                                results: &[],
                            }),
                        })
                    }
                    other => Err(Error::InvalidDiscriminant {
                        what: "reply_stat",
                        value: other,
                    }),
                }
            }
            other => Err(Error::InvalidDiscriminant {
                what: "msg_type",
                value: other,
            }),
        }
    }

    /// Copies into an owned [`RpcMessage`]: the single materialization
    /// the owned `Unpack` impl performs.
    pub fn to_owned(self) -> RpcMessage {
        RpcMessage {
            xid: self.xid,
            body: match self.body {
                MsgBodyView::Call(c) => MsgBody::Call(c.to_owned()),
                MsgBodyView::Reply(r) => MsgBody::Reply(r.to_owned()),
            },
        }
    }

    /// The call view, if this is a call.
    pub fn as_call(&self) -> Option<&CallView<'a>> {
        match &self.body {
            MsgBodyView::Call(c) => Some(c),
            MsgBodyView::Reply(_) => None,
        }
    }

    /// The reply view, if this is a reply.
    pub fn as_reply(&self) -> Option<&ReplyView<'a>> {
        match &self.body {
            MsgBodyView::Reply(r) => Some(r),
            MsgBodyView::Call(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthUnix;
    use crate::PROG_NFS;

    #[test]
    fn call_roundtrip() {
        let cred = OpaqueAuth::unix(&AuthUnix::new("host1", 10, 20));
        let msg = RpcMessage::call(0xabcd, PROG_NFS, 3, 6, cred, vec![1, 2, 3, 4]);
        let got = RpcMessage::from_xdr_bytes(&msg.to_xdr_bytes()).unwrap();
        assert_eq!(got, msg);
        assert!(got.is_call());
        let call = got.as_call().unwrap();
        assert_eq!(call.prog, PROG_NFS);
        assert_eq!(call.vers, 3);
        assert_eq!(call.proc, 6);
        assert_eq!(call.args, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reply_roundtrip() {
        let msg = RpcMessage::reply_success(0xabcd, vec![9, 9, 9, 9]);
        let got = RpcMessage::from_xdr_bytes(&msg.to_xdr_bytes()).unwrap();
        assert_eq!(got, msg);
        let r = got.as_reply().unwrap();
        assert_eq!(r.accept_stat, accept_stat::SUCCESS);
        assert_eq!(r.results, vec![9, 9, 9, 9]);
    }

    #[test]
    fn denied_reply_roundtrip() {
        let msg = RpcMessage {
            xid: 5,
            body: MsgBody::Reply(ReplyBody {
                stat: ReplyStat::Denied,
                verf: OpaqueAuth::none(),
                accept_stat: 1,
                results: Vec::new(),
            }),
        };
        let got = RpcMessage::from_xdr_bytes(&msg.to_xdr_bytes()).unwrap();
        assert_eq!(got.as_reply().unwrap().stat, ReplyStat::Denied);
    }

    #[test]
    fn bad_msg_type_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(7); // neither call nor reply
        assert!(matches!(
            RpcMessage::from_xdr_bytes(&enc.into_bytes()),
            Err(Error::InvalidDiscriminant {
                what: "msg_type",
                ..
            })
        ));
    }

    #[test]
    fn bad_rpc_version_rejected() {
        let cred = OpaqueAuth::none();
        let mut msg = RpcMessage::call(1, PROG_NFS, 3, 0, cred, Vec::new());
        if let MsgBody::Call(ref mut c) = msg.body {
            c.rpcvers = 3;
        }
        assert!(RpcMessage::from_xdr_bytes(&msg.to_xdr_bytes()).is_err());
    }

    #[test]
    fn view_decode_matches_owned_and_borrows_the_input() {
        let cred = OpaqueAuth::unix(&AuthUnix::new("host1", 10, 20));
        let cases = [
            RpcMessage::call(0xabcd, PROG_NFS, 3, 6, cred, vec![1, 2, 3, 4]),
            RpcMessage::reply_success(0xabcd, vec![9, 9, 9, 9]),
            RpcMessage {
                xid: 5,
                body: MsgBody::Reply(ReplyBody {
                    stat: ReplyStat::Denied,
                    verf: OpaqueAuth::none(),
                    accept_stat: 1,
                    results: Vec::new(),
                }),
            },
        ];
        for msg in cases {
            let bytes = msg.to_xdr_bytes();
            let view = RpcMessageView::decode(&bytes).unwrap();
            assert_eq!(view.to_owned(), msg);
            if let Some(call) = view.as_call() {
                // The args field is a view into `bytes`, not a copy.
                assert!(bytes.as_ptr_range().contains(&call.args.as_ptr()));
            }
        }
    }

    #[test]
    fn view_decode_rejects_what_owned_decode_rejects() {
        let msg = RpcMessage::call(
            7,
            PROG_NFS,
            3,
            1,
            OpaqueAuth::unix(&AuthUnix::new("m", 1, 2)),
            vec![0; 16],
        );
        let bytes = msg.to_xdr_bytes();
        for cut in 0..bytes.len() {
            let owned = RpcMessage::from_xdr_bytes(&bytes[..cut]);
            let view = RpcMessageView::decode(&bytes[..cut]);
            assert_eq!(owned.is_ok(), view.is_ok(), "truncated at {cut}");
            assert_eq!(owned.err(), view.err());
        }
    }

    #[test]
    fn args_not_multiple_of_four_are_padded() {
        // Args should always be XDR already (multiple of 4); if not, the
        // encoder pads and decode returns the padded form. Document that.
        let msg = RpcMessage::call(1, PROG_NFS, 2, 1, OpaqueAuth::none(), vec![1, 2, 3]);
        let got = RpcMessage::from_xdr_bytes(&msg.to_xdr_bytes()).unwrap();
        assert_eq!(got.as_call().unwrap().args, vec![1, 2, 3, 0]);
    }
}
