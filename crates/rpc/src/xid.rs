//! Pairing RPC replies with their calls by XID.
//!
//! The tracer estimates packet loss "by counting the number of call and
//! response messages that had no corresponding response or call"
//! (paper §4.1.4). [`XidMatcher`] keeps a table of outstanding calls per
//! (client, server, xid) key, pairs each reply with its call, expires
//! calls that never see a reply, and counts orphan replies whose call was
//! lost by the mirror port.

use std::collections::HashMap;

use nfstrace_telemetry::{Counter, Gauge, Registry};

/// Key identifying an outstanding call: the flow plus the XID.
///
/// Addresses are 32-bit IPv4 values; ports disambiguate multiple mounts
/// from one client. Keys order by `(client_ip, server_ip, client_port,
/// xid)`, the tiebreaker that makes [`XidMatcher::expire`] and
/// [`XidMatcher::drain`] deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowXid {
    /// Client IP (the caller).
    pub client_ip: u32,
    /// Server IP.
    pub server_ip: u32,
    /// Client source port.
    pub client_port: u16,
    /// RPC transaction id.
    pub xid: u32,
}

/// A call held while awaiting its reply.
#[derive(Debug, Clone)]
pub struct PendingCall<T> {
    /// Capture timestamp of the call, in microseconds.
    pub call_micros: u64,
    /// Caller-supplied payload (decoded call info).
    pub data: T,
}

/// A snapshot of matching statistics (see [`XidMatcher::stats`]).
///
/// The authoritative storage is the set of `rpc.xid.*` counters in
/// the matcher's [`Registry`] — this struct is a point-in-time read
/// of them, so what a test asserts and what a daemon exports can
/// never drift apart.
///
/// Accounting rules:
///
/// - Every *distinct* transaction bumps `calls` exactly once. A
///   retransmission — the same [`FlowXid`] inserted while a call is
///   still outstanding — bumps `retransmits` instead: it is the same
///   transaction on the wire twice, not a new one, and counting it as
///   fresh would inflate the loss-rate denominator.
/// - A transaction then resolves exactly one way: its reply pairs
///   (`matched`), or it ages out or survives to the end of the capture
///   (`expired_calls` — [`XidMatcher::expire`] and
///   [`XidMatcher::drain`] both count there).
/// - A reply with no outstanding call bumps `orphan_replies`; its call
///   was never captured, so it never appears in `calls`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XidStats {
    /// Distinct calls inserted (retransmissions excluded).
    pub calls: u64,
    /// Replies paired with a call.
    pub matched: u64,
    /// Replies with no outstanding call (the call was lost).
    pub orphan_replies: u64,
    /// Calls expired without a reply (the reply was lost).
    pub expired_calls: u64,
    /// Retransmitted calls (same key while one is outstanding); these
    /// do **not** count in `calls`.
    pub retransmits: u64,
}

impl XidStats {
    /// The §4.1.4 loss estimate.
    ///
    /// Unmatched messages over all messages seen:
    /// `(orphan_replies + expired_calls) / (calls + matched +
    /// orphan_replies)`. A lost call surfaces as an orphan reply, a
    /// lost reply as an expired call; `retransmits` feeds neither side
    /// of the ratio.
    pub fn estimated_loss_rate(&self) -> f64 {
        let total = self.calls + self.matched + self.orphan_replies;
        if total == 0 {
            0.0
        } else {
            (self.orphan_replies + self.expired_calls) as f64 / total as f64
        }
    }
}

/// Matches replies to calls with timeout-based expiry.
///
/// `T` is whatever the caller wants carried from call to reply time
/// (the sniffer stores the decoded call body).
///
/// # Examples
///
/// ```
/// use nfstrace_rpc::xid::{FlowXid, XidMatcher};
///
/// let mut m: XidMatcher<&'static str> = XidMatcher::new(2_000_000);
/// let key = FlowXid { client_ip: 1, server_ip: 2, client_port: 900, xid: 7 };
/// m.insert_call(key, 1_000, "read call");
/// let hit = m.match_reply(key, 2_500).expect("paired");
/// assert_eq!(hit.data, "read call");
/// ```
#[derive(Debug)]
pub struct XidMatcher<T> {
    pending: HashMap<FlowXid, PendingCall<T>>,
    timeout_micros: u64,
    metrics: XidMetrics,
    /// Most recent timestamp observed, for expiry sweeps.
    now_micros: u64,
}

/// Registry handles for the `rpc.xid.*` metrics, resolved once at
/// construction so every hot-path bump is a single relaxed atomic.
#[derive(Debug, Clone)]
struct XidMetrics {
    calls: Counter,
    matched: Counter,
    orphan_replies: Counter,
    expired_calls: Counter,
    retransmits: Counter,
    loss_rate: Gauge,
}

impl XidMetrics {
    fn register(registry: &Registry) -> Self {
        XidMetrics {
            calls: registry.counter("rpc.xid.calls"),
            matched: registry.counter("rpc.xid.matched"),
            orphan_replies: registry.counter("rpc.xid.orphan_replies"),
            expired_calls: registry.counter("rpc.xid.expired_calls"),
            retransmits: registry.counter("rpc.xid.retransmits"),
            loss_rate: registry.gauge("rpc.xid.estimated_loss_rate"),
        }
    }
}

impl<T> XidMatcher<T> {
    /// Creates a matcher that expires unanswered calls after
    /// `timeout_micros`, counting into a private registry.
    pub fn new(timeout_micros: u64) -> Self {
        Self::with_registry(timeout_micros, &Registry::new())
    }

    /// Like [`XidMatcher::new`], but counts into `registry` (metric
    /// names `rpc.xid.*`). Sharing one registry across matchers sums
    /// their counts.
    pub fn with_registry(timeout_micros: u64, registry: &Registry) -> Self {
        Self {
            pending: HashMap::new(),
            timeout_micros,
            metrics: XidMetrics::register(registry),
            now_micros: 0,
        }
    }

    /// Records an outgoing call observed at `call_micros`.
    ///
    /// A duplicate key counts as a retransmit — not a fresh call in
    /// [`XidStats::calls`], since it is the same transaction resent —
    /// and replaces the stored call (the reply will match the
    /// retransmission).
    pub fn insert_call(&mut self, key: FlowXid, call_micros: u64, data: T) {
        self.now_micros = self.now_micros.max(call_micros);
        if self
            .pending
            .insert(key, PendingCall { call_micros, data })
            .is_some()
        {
            self.metrics.retransmits.inc();
        } else {
            self.metrics.calls.inc();
        }
    }

    /// Attempts to pair a reply observed at `reply_micros` with its call.
    ///
    /// Returns the pending call on success; `None` means the call was
    /// never captured (counted as an orphan reply).
    pub fn match_reply(&mut self, key: FlowXid, reply_micros: u64) -> Option<PendingCall<T>> {
        self.now_micros = self.now_micros.max(reply_micros);
        match self.pending.remove(&key) {
            Some(call) => {
                self.metrics.matched.inc();
                Some(call)
            }
            None => {
                self.metrics.orphan_replies.inc();
                None
            }
        }
    }

    /// Expires calls older than the timeout relative to the most recent
    /// observed timestamp. Returns the expired calls, ordered by
    /// `(call_micros, key)` — hash-map iteration order must never leak
    /// into what a caller logs or replays.
    pub fn expire(&mut self) -> Vec<(FlowXid, PendingCall<T>)> {
        let cutoff = self.now_micros.saturating_sub(self.timeout_micros);
        let expired_keys: Vec<FlowXid> = self
            .pending
            .iter()
            .filter(|(_, c)| c.call_micros < cutoff)
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::with_capacity(expired_keys.len());
        for k in expired_keys {
            if let Some(c) = self.pending.remove(&k) {
                self.metrics.expired_calls.inc();
                out.push((k, c));
            }
        }
        out.sort_by_key(|(k, c)| (c.call_micros, *k));
        out
    }

    /// Drains every outstanding call (end of capture), counting each as
    /// expired. Ordered by `(call_micros, key)`, like
    /// [`XidMatcher::expire`].
    pub fn drain(&mut self) -> Vec<(FlowXid, PendingCall<T>)> {
        let mut out: Vec<_> = self.pending.drain().collect();
        self.metrics.expired_calls.add(out.len() as u64);
        out.sort_by_key(|(k, c)| (c.call_micros, *k));
        out
    }

    /// Number of calls currently awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Capture time of the oldest call still awaiting its reply, or
    /// `None` when nothing is outstanding.
    ///
    /// This is the matcher's contribution to an incremental drain
    /// watermark: any record a future reply produces will be stamped
    /// with its call's capture time, which is at least this.
    pub fn oldest_pending_micros(&self) -> Option<u64> {
        self.pending.values().map(|c| c.call_micros).min()
    }

    /// Matching statistics so far: a read of the `rpc.xid.*`
    /// counters. Also refreshes the `rpc.xid.estimated_loss_rate`
    /// gauge, so any registry export after a `stats()` call carries
    /// the current §4.1.4 loss estimate.
    pub fn stats(&self) -> XidStats {
        let stats = XidStats {
            calls: self.metrics.calls.value(),
            matched: self.metrics.matched.value(),
            orphan_replies: self.metrics.orphan_replies.value(),
            expired_calls: self.metrics.expired_calls.value(),
            retransmits: self.metrics.retransmits.value(),
        };
        self.metrics.loss_rate.set(stats.estimated_loss_rate());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(xid: u32) -> FlowXid {
        FlowXid {
            client_ip: 0x0a000001,
            server_ip: 0x0a000002,
            client_port: 1001,
            xid,
        }
    }

    #[test]
    fn call_then_reply_pairs() {
        let mut m = XidMatcher::new(1_000_000);
        m.insert_call(key(1), 100, ());
        assert_eq!(m.outstanding(), 1);
        assert!(m.match_reply(key(1), 200).is_some());
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.stats().matched, 1);
    }

    #[test]
    fn orphan_reply_counted() {
        let mut m: XidMatcher<()> = XidMatcher::new(1_000_000);
        assert!(m.match_reply(key(9), 50).is_none());
        assert_eq!(m.stats().orphan_replies, 1);
    }

    #[test]
    fn expiry_removes_old_calls_only() {
        let mut m = XidMatcher::new(1_000);
        m.insert_call(key(1), 0, ());
        m.insert_call(key(2), 5_000, ());
        let expired = m.expire();
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0.xid, 1);
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.stats().expired_calls, 1);
    }

    #[test]
    fn retransmit_detected() {
        let mut m = XidMatcher::new(1_000_000);
        m.insert_call(key(1), 100, "first");
        m.insert_call(key(1), 300, "retry");
        assert_eq!(m.stats().retransmits, 1);
        assert_eq!(m.match_reply(key(1), 400).unwrap().data, "retry");
    }

    #[test]
    fn distinct_flows_do_not_collide() {
        let mut m = XidMatcher::new(1_000_000);
        let k1 = FlowXid {
            client_ip: 1,
            server_ip: 2,
            client_port: 10,
            xid: 42,
        };
        let k2 = FlowXid {
            client_port: 11,
            ..k1
        };
        m.insert_call(k1, 0, "a");
        m.insert_call(k2, 0, "b");
        assert_eq!(m.match_reply(k2, 1).unwrap().data, "b");
        assert_eq!(m.match_reply(k1, 1).unwrap().data, "a");
    }

    #[test]
    fn loss_rate_estimate() {
        let mut m: XidMatcher<()> = XidMatcher::new(1_000);
        for i in 0..90 {
            m.insert_call(key(i), 0, ());
            m.match_reply(key(i), 1);
        }
        for i in 100..110 {
            m.match_reply(key(i), 1); // orphans: their calls were dropped
        }
        let rate = m.stats().estimated_loss_rate();
        assert!(rate > 0.04 && rate < 0.06, "rate = {rate}");
    }

    #[test]
    fn oldest_pending_tracks_min_call_time() {
        let mut m = XidMatcher::new(1_000_000);
        assert_eq!(m.oldest_pending_micros(), None);
        m.insert_call(key(1), 500, ());
        m.insert_call(key(2), 100, ());
        m.insert_call(key(3), 900, ());
        assert_eq!(m.oldest_pending_micros(), Some(100));
        assert!(m.match_reply(key(2), 950).is_some());
        assert_eq!(m.oldest_pending_micros(), Some(500));
        m.drain();
        assert_eq!(m.oldest_pending_micros(), None);
    }

    /// Expiry and drain order is pinned: `(call_micros, key)`, never
    /// whatever the hash map happens to iterate.
    #[test]
    fn expire_and_drain_order_is_deterministic() {
        let keys: Vec<FlowXid> = (0..24u32)
            .map(|i| FlowXid {
                client_ip: 0x0a00_0000 | (i % 5),
                server_ip: 0x0a00_00ff,
                client_port: 900 + (i % 3) as u16,
                xid: i.wrapping_mul(0x9e37_79b9),
            })
            .collect();
        // Many ties on call_micros force the key tiebreaker to matter.
        let mut expected: Vec<(FlowXid, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as u64 % 4) * 10))
            .collect();
        expected.sort_by_key(|&(k, t)| (t, k));

        let mut m = XidMatcher::new(1_000);
        for (i, &k) in keys.iter().enumerate() {
            m.insert_call(k, (i as u64 % 4) * 10, ());
        }
        m.insert_call(key(999), 1_000_000, ()); // keeps `now` fresh
        let expired: Vec<(FlowXid, u64)> = m
            .expire()
            .into_iter()
            .map(|(k, c)| (k, c.call_micros))
            .collect();
        assert_eq!(expired.len(), keys.len());
        assert_eq!(expired, expected);

        let mut m = XidMatcher::new(1_000_000);
        for (i, &k) in keys.iter().enumerate() {
            m.insert_call(k, (i as u64 % 4) * 10, ());
        }
        let drained: Vec<(FlowXid, u64)> = m
            .drain()
            .into_iter()
            .map(|(k, c)| (k, c.call_micros))
            .collect();
        assert_eq!(drained, expired);
    }

    /// A retransmission is the same transaction twice, not a fresh
    /// call: it must move `retransmits`, not `calls`, or the loss-rate
    /// denominator inflates.
    #[test]
    fn retransmit_does_not_count_as_fresh_call() {
        let mut m = XidMatcher::new(1_000_000);
        m.insert_call(key(1), 100, "first");
        m.insert_call(key(1), 300, "retry");
        m.insert_call(key(1), 500, "retry again");
        let stats = m.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.retransmits, 2);
        assert!(m.match_reply(key(1), 600).is_some());
        // One transaction, resolved once: the loss estimate sees a
        // clean capture.
        let stats = m.stats();
        assert_eq!(stats.matched, 1);
        assert_eq!(stats.estimated_loss_rate(), 0.0);
    }

    #[test]
    fn drain_counts_expired() {
        let mut m = XidMatcher::new(1_000);
        m.insert_call(key(1), 0, ());
        m.insert_call(key(2), 0, ());
        let drained = m.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(m.stats().expired_calls, 2);
    }
}
