//! ONC RPC (Sun RPC, RFC 1831) message layer.
//!
//! NFS requests and responses travel as RPC calls and replies. A passive
//! tracer must decode the RPC envelope to find the program (NFS is
//! program 100003), version, procedure, and transaction id (XID), then
//! pair each reply with its call — "it is impossible to decode an NFS
//! response without seeing the call" (paper §4.1.4).
//!
//! - [`msg`]: call and reply bodies with XDR codecs.
//! - [`auth`]: `AUTH_UNIX` credentials carrying the UID/GID the
//!   anonymizer must rewrite.
//! - [`record`]: RPC record marking for TCP streams.
//! - [`xid`]: the call/reply matcher with orphan accounting.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod auth;
pub mod msg;
pub mod record;
pub mod xid;

/// The NFS program number.
pub const PROG_NFS: u32 = 100_003;
/// The MOUNT program number.
pub const PROG_MOUNT: u32 = 100_005;
/// The port mapper program number.
pub const PROG_PORTMAP: u32 = 100_000;

pub use auth::AuthRef;
pub use msg::{
    CallBody, CallView, MsgBody, MsgBodyView, ReplyBody, ReplyStat, ReplyView, RpcMessage,
    RpcMessageView,
};
pub use record::RecordRef;
pub use xid::{XidMatcher, XidStats};
