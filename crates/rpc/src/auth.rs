//! RPC authentication flavors.
//!
//! NFSv2/v3 traffic on both traced systems used `AUTH_UNIX` (called
//! `AUTH_SYS` in later specs): a plaintext credential carrying the
//! client's hostname, UID, GID, and supplementary GIDs. These are exactly
//! the fields the paper's anonymizer replaces with "arbitrary but
//! consistent values" (§2).

use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};

/// Authentication flavor numbers from RFC 1831.
pub mod flavor {
    /// No authentication.
    pub const AUTH_NONE: u32 = 0;
    /// Unix-style uid/gid credential.
    pub const AUTH_UNIX: u32 = 1;
}

/// An `AUTH_UNIX` credential body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AuthUnix {
    /// Arbitrary stamp chosen by the client.
    pub stamp: u32,
    /// Client machine name.
    pub machine_name: String,
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary group ids (at most 16 per the RFC).
    pub gids: Vec<u32>,
}

impl AuthUnix {
    /// A credential for `uid`/`gid` from `machine_name`.
    pub fn new(machine_name: impl Into<String>, uid: u32, gid: u32) -> Self {
        Self {
            stamp: 0,
            machine_name: machine_name.into(),
            uid,
            gid,
            gids: vec![gid],
        }
    }
}

impl Pack for AuthUnix {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.stamp);
        enc.put_string(&self.machine_name);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_array(&self.gids, |e, g| e.put_u32(*g));
    }
}

impl Unpack for AuthUnix {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AuthUnix {
            stamp: dec.get_u32()?,
            machine_name: dec.get_string()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            gids: dec.get_array(|d| d.get_u32())?,
        })
    }
}

/// An opaque authenticator: flavor plus uninterpreted body bytes, with
/// typed access to `AUTH_UNIX` bodies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpaqueAuth {
    /// Flavor number (see [`flavor`]).
    pub flavor: u32,
    /// The raw body (itself XDR-encoded for known flavors).
    pub body: Vec<u8>,
}

impl OpaqueAuth {
    /// The `AUTH_NONE` authenticator.
    pub fn none() -> Self {
        Self {
            flavor: flavor::AUTH_NONE,
            body: Vec::new(),
        }
    }

    /// Wraps an [`AuthUnix`] credential.
    pub fn unix(cred: &AuthUnix) -> Self {
        Self {
            flavor: flavor::AUTH_UNIX,
            body: cred.to_xdr_bytes(),
        }
    }

    /// Decodes the body as `AUTH_UNIX`, if that is the flavor.
    ///
    /// # Errors
    ///
    /// XDR errors if the body is malformed.
    pub fn as_unix(&self) -> Option<Result<AuthUnix>> {
        if self.flavor == flavor::AUTH_UNIX {
            Some(AuthUnix::from_xdr_bytes(&self.body))
        } else {
            None
        }
    }
}

impl Pack for OpaqueAuth {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.flavor);
        enc.put_opaque_var(&self.body);
    }
}

impl Unpack for OpaqueAuth {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        let flavor = dec.get_u32()?;
        let body = dec.get_opaque_var()?;
        if body.len() > 400 {
            // RFC 1831 caps authenticator bodies at 400 bytes.
            return Err(Error::LengthTooLarge {
                declared: body.len(),
                limit: 400,
            });
        }
        Ok(OpaqueAuth { flavor, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auth_unix_roundtrip() {
        let cred = AuthUnix {
            stamp: 77,
            machine_name: "client12".to_string(),
            uid: 1002,
            gid: 100,
            gids: vec![100, 200, 300],
        };
        let got = AuthUnix::from_xdr_bytes(&cred.to_xdr_bytes()).unwrap();
        assert_eq!(got, cred);
    }

    #[test]
    fn opaque_auth_unix_roundtrip() {
        let cred = AuthUnix::new("wks", 5, 6);
        let auth = OpaqueAuth::unix(&cred);
        let got = OpaqueAuth::from_xdr_bytes(&auth.to_xdr_bytes()).unwrap();
        assert_eq!(got, auth);
        assert_eq!(got.as_unix().unwrap().unwrap(), cred);
    }

    #[test]
    fn auth_none_has_empty_body() {
        let a = OpaqueAuth::none();
        assert_eq!(a.to_xdr_bytes(), vec![0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(a.as_unix().is_none());
    }

    #[test]
    fn oversized_auth_body_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(flavor::AUTH_UNIX);
        enc.put_opaque_var(&vec![0u8; 500]);
        assert!(OpaqueAuth::from_xdr_bytes(&enc.into_bytes()).is_err());
    }
}
