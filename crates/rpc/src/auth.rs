//! RPC authentication flavors.
//!
//! NFSv2/v3 traffic on both traced systems used `AUTH_UNIX` (called
//! `AUTH_SYS` in later specs): a plaintext credential carrying the
//! client's hostname, UID, GID, and supplementary GIDs. These are exactly
//! the fields the paper's anonymizer replaces with "arbitrary but
//! consistent values" (§2).

use nfstrace_xdr::{Decoder, Encoder, Error, Pack, Result, Unpack};

/// Authentication flavor numbers from RFC 1831.
pub mod flavor {
    /// No authentication.
    pub const AUTH_NONE: u32 = 0;
    /// Unix-style uid/gid credential.
    pub const AUTH_UNIX: u32 = 1;
}

/// An `AUTH_UNIX` credential body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AuthUnix {
    /// Arbitrary stamp chosen by the client.
    pub stamp: u32,
    /// Client machine name.
    pub machine_name: String,
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary group ids (at most 16 per the RFC).
    pub gids: Vec<u32>,
}

impl AuthUnix {
    /// A credential for `uid`/`gid` from `machine_name`.
    pub fn new(machine_name: impl Into<String>, uid: u32, gid: u32) -> Self {
        Self {
            stamp: 0,
            machine_name: machine_name.into(),
            uid,
            gid,
            gids: vec![gid],
        }
    }
}

impl Pack for AuthUnix {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.stamp);
        enc.put_string(&self.machine_name);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_array(&self.gids, |e, g| e.put_u32(*g));
    }
}

impl Unpack for AuthUnix {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AuthUnix {
            stamp: dec.get_u32()?,
            machine_name: dec.get_string()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            gids: dec.get_array(|d| d.get_u32())?,
        })
    }
}

/// An opaque authenticator: flavor plus uninterpreted body bytes, with
/// typed access to `AUTH_UNIX` bodies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpaqueAuth {
    /// Flavor number (see [`flavor`]).
    pub flavor: u32,
    /// The raw body (itself XDR-encoded for known flavors).
    pub body: Vec<u8>,
}

impl OpaqueAuth {
    /// The `AUTH_NONE` authenticator.
    pub fn none() -> Self {
        Self {
            flavor: flavor::AUTH_NONE,
            body: Vec::new(),
        }
    }

    /// Wraps an [`AuthUnix`] credential.
    pub fn unix(cred: &AuthUnix) -> Self {
        Self {
            flavor: flavor::AUTH_UNIX,
            body: cred.to_xdr_bytes(),
        }
    }

    /// Decodes the body as `AUTH_UNIX`, if that is the flavor.
    ///
    /// # Errors
    ///
    /// XDR errors if the body is malformed.
    pub fn as_unix(&self) -> Option<Result<AuthUnix>> {
        if self.flavor == flavor::AUTH_UNIX {
            Some(AuthUnix::from_xdr_bytes(&self.body))
        } else {
            None
        }
    }
}

impl Pack for OpaqueAuth {
    fn pack(&self, enc: &mut Encoder) {
        enc.put_u32(self.flavor);
        enc.put_opaque_var(&self.body);
    }
}

impl Unpack for OpaqueAuth {
    fn unpack(dec: &mut Decoder<'_>) -> Result<Self> {
        AuthRef::decode(dec).map(AuthRef::to_owned)
    }
}

/// A borrowed authenticator: [`OpaqueAuth`] with the body as a view into
/// the buffer being decoded, so the capture hot path never copies
/// credential bytes. The owned `Unpack` impl is a thin wrapper over this,
/// keeping the two decode paths structurally identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthRef<'a> {
    /// Flavor number (see [`flavor`]).
    pub flavor: u32,
    /// The raw body bytes, borrowed from the record buffer.
    pub body: &'a [u8],
}

impl<'a> AuthRef<'a> {
    /// Reads one authenticator without copying its body, enforcing the
    /// same RFC 1831 400-byte body cap as the owned decoder.
    ///
    /// # Errors
    ///
    /// Exactly those of [`OpaqueAuth`]'s `Unpack`: truncation, a body
    /// length over the decoder limit, or a body over 400 bytes.
    pub fn decode(dec: &mut Decoder<'a>) -> Result<Self> {
        let flavor = dec.get_u32()?;
        let body = dec.get_opaque_var_ref()?;
        if body.len() > 400 {
            // RFC 1831 caps authenticator bodies at 400 bytes.
            return Err(Error::LengthTooLarge {
                declared: body.len(),
                limit: 400,
            });
        }
        Ok(AuthRef { flavor, body })
    }

    /// Copies into an owned [`OpaqueAuth`].
    pub fn to_owned(self) -> OpaqueAuth {
        OpaqueAuth {
            flavor: self.flavor,
            body: self.body.to_vec(),
        }
    }

    /// Extracts `(uid, gid)` from an `AUTH_UNIX` body without
    /// allocating.
    ///
    /// Validation is exactly as strict as
    /// `OpaqueAuth::as_unix` + [`AuthUnix::from_xdr_bytes`]: a non-unix
    /// flavor or any malformation the owned path would reject
    /// (truncation, non-UTF-8 machine name, oversized gids count,
    /// trailing bytes) yields `None`.
    pub fn unix_uid_gid(self) -> Option<(u32, u32)> {
        if self.flavor != flavor::AUTH_UNIX {
            return None;
        }
        let mut dec = Decoder::new(self.body);
        dec.get_u32().ok()?; // stamp
        dec.get_str_ref().ok()?; // machine name, UTF-8 checked
        let uid = dec.get_u32().ok()?;
        let gid = dec.get_u32().ok()?;
        // Supplementary gids: replicate `get_array`'s count bound. The
        // 400-byte body cap makes its max_len bound unreachable before
        // the remaining-bytes bound, so one check suffices.
        let n = dec.get_u32().ok()? as usize;
        if n > dec.remaining() / 4 + 1 {
            return None;
        }
        for _ in 0..n {
            dec.get_u32().ok()?;
        }
        // `from_xdr_bytes` rejects trailing bytes; mirror that.
        dec.is_empty().then_some((uid, gid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auth_unix_roundtrip() {
        let cred = AuthUnix {
            stamp: 77,
            machine_name: "client12".to_string(),
            uid: 1002,
            gid: 100,
            gids: vec![100, 200, 300],
        };
        let got = AuthUnix::from_xdr_bytes(&cred.to_xdr_bytes()).unwrap();
        assert_eq!(got, cred);
    }

    #[test]
    fn opaque_auth_unix_roundtrip() {
        let cred = AuthUnix::new("wks", 5, 6);
        let auth = OpaqueAuth::unix(&cred);
        let got = OpaqueAuth::from_xdr_bytes(&auth.to_xdr_bytes()).unwrap();
        assert_eq!(got, auth);
        assert_eq!(got.as_unix().unwrap().unwrap(), cred);
    }

    #[test]
    fn auth_none_has_empty_body() {
        let a = OpaqueAuth::none();
        assert_eq!(a.to_xdr_bytes(), vec![0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(a.as_unix().is_none());
    }

    #[test]
    fn auth_ref_uid_gid_agrees_with_owned_decode() {
        let good = OpaqueAuth::unix(&AuthUnix {
            stamp: 9,
            machine_name: "wks04".to_string(),
            uid: 1002,
            gid: 100,
            gids: vec![100, 200],
        });
        let mut cases = vec![good.clone(), OpaqueAuth::none()];
        // Truncated body (drop the tail), corrupt machine name, and a
        // body with trailing bytes: all must yield None, matching the
        // owned path's decode error.
        let mut truncated = good.clone();
        truncated.body.truncate(truncated.body.len() - 6);
        cases.push(truncated);
        let mut bad_name = good.clone();
        bad_name.body[8] = 0xff; // first machine-name byte
        cases.push(bad_name);
        let mut trailing = good;
        trailing.body.extend_from_slice(&[0, 0, 0, 1]);
        cases.push(trailing);
        for auth in cases {
            let owned = auth.as_unix().and_then(|r| r.ok()).map(|a| (a.uid, a.gid));
            let view = AuthRef {
                flavor: auth.flavor,
                body: &auth.body,
            };
            assert_eq!(view.unix_uid_gid(), owned);
        }
    }

    #[test]
    fn oversized_auth_body_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(flavor::AUTH_UNIX);
        enc.put_opaque_var(&vec![0u8; 500]);
        assert!(OpaqueAuth::from_xdr_bytes(&enc.into_bytes()).is_err());
    }
}
