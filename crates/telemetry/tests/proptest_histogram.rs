//! Property tests for the mergeable log-scale histograms: merging
//! per-shard snapshots must be associative, commutative, and equal to
//! a single recorder that saw every value — the contract that lets
//! sharded ingest histograms combine deterministically at export time.

use nfstrace_telemetry::{bucket_index, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;

/// One recorder over `values`, snapshotted.
fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spanning every magnitude the bucket layout distinguishes:
/// zero, small counts, mid-range, full-width, and exact power-of-two
/// bucket boundaries with their neighbors.
fn value() -> impl Strategy<Value = u64> {
    (any::<u8>(), any::<u64>()).prop_map(|(sel, raw)| match sel % 6 {
        0 => 0,
        1 => 1 + raw % 16,
        2 => raw & 0xff,
        3 => raw & 0xffff_ffff,
        4 => raw,
        _ => {
            // A boundary 2^k and its neighbors, k drawn from the raw
            // bits so every bucket edge gets exercised.
            let p = 1u64 << (raw % 63);
            match (raw >> 6) % 3 {
                0 => p - 1,
                1 => p,
                _ => p + 1,
            }
        }
    })
}

proptest! {
    /// merge(A, B) sees exactly what one recorder over A ++ B sees.
    #[test]
    fn merge_equals_single_recorder(
        a in proptest::collection::vec(value(), 0..200),
        b in proptest::collection::vec(value(), 0..200),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&both));
    }

    /// merge(A, B) == merge(B, A).
    #[test]
    fn merge_commutes(
        a in proptest::collection::vec(value(), 0..200),
        b in proptest::collection::vec(value(), 0..200),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// merge(merge(A, B), C) == merge(A, merge(B, C)).
    #[test]
    fn merge_associates(
        a in proptest::collection::vec(value(), 0..100),
        b in proptest::collection::vec(value(), 0..100),
        c in proptest::collection::vec(value(), 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut right_tail = sb;
        right_tail.merge(&sc);
        let mut right = sa;
        right.merge(&right_tail);
        prop_assert_eq!(left, right);
    }

    /// Every value lands in exactly one bucket, count and sum track
    /// the raw stream, and the bucket index is monotone in the value.
    #[test]
    fn single_recorder_accounting(values in proptest::collection::vec(value(), 0..300)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        let expected_sum: u64 = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.sum, expected_sum);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        for &v in &values {
            prop_assert!(bucket_index(v) < BUCKETS);
        }
        for w in values.windows(2) {
            if w[0] <= w[1] {
                prop_assert!(bucket_index(w[0]) <= bucket_index(w[1]));
            }
        }
    }
}
