//! Round-trip tests for the exporter's two wire formats: the JSONL
//! line must parse back to exactly the snapshot that rendered it, and
//! the Prometheus text exposition must follow the exposition grammar
//! (typed families, cumulative buckets, `+Inf` closing each
//! histogram).

use nfstrace_telemetry::{bucket_upper_bound, Registry, BUCKETS};
use serde::Value;

/// A registry exercising every metric kind, with known values.
fn sample_registry() -> Registry {
    let registry = Registry::new();
    let frames = registry.counter("sniffer.frames");
    frames.add(12_345);
    registry.counter("live.records_emitted").add(7);
    registry.gauge("sniffer.estimated_loss_rate").set(0.125);
    registry.gauge("store.compression_ratio").set(0.41);
    let h = registry.histogram("query.replay_micros");
    for v in [0u64, 1, 3, 900, 1 << 20] {
        h.record(v);
    }
    registry
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        other => panic!("expected integer, got {other:?}"),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::F64(x) => *x,
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn jsonl_line_parses_back_to_the_snapshot() {
    let registry = sample_registry();
    let snapshot = registry.snapshot();
    let line = snapshot.render_jsonl(3, 1_700_000_000_000_000);
    let v: Value = serde_json::from_str(&line).expect("exported line is valid JSON");

    assert_eq!(as_u64(v.field("seq").expect("seq")), 3);
    assert_eq!(
        as_u64(v.field("unix_micros").expect("unix_micros")),
        1_700_000_000_000_000
    );
    let Value::Map(counters) = v.field("counters").expect("counters") else {
        panic!("counters is not an object");
    };
    assert_eq!(counters.len(), snapshot.counters.len());
    for (name, value) in &snapshot.counters {
        assert_eq!(
            as_u64(counters.get(name).expect("counter present")),
            *value,
            "counter {name}"
        );
    }
    let Value::Map(gauges) = v.field("gauges").expect("gauges") else {
        panic!("gauges is not an object");
    };
    for (name, value) in &snapshot.gauges {
        let parsed = as_f64(gauges.get(name).expect("gauge present"));
        assert!((parsed - value).abs() < 1e-12, "gauge {name}");
    }
    let Value::Map(histograms) = v.field("histograms").expect("histograms") else {
        panic!("histograms is not an object");
    };
    for (name, h) in &snapshot.histograms {
        let entry = histograms.get(name).expect("histogram present");
        assert_eq!(as_u64(entry.field("count").expect("count")), h.count);
        assert_eq!(as_u64(entry.field("sum").expect("sum")), h.sum);
        // The sparse `[le, count]` pairs reconstruct the dense array.
        let Value::Arr(pairs) = entry.field("buckets").expect("buckets") else {
            panic!("{name} buckets is not an array");
        };
        let mut dense = [0u64; BUCKETS];
        for pair in pairs {
            let Value::Arr(pair) = pair else {
                panic!("{name} bucket entry is not a pair");
            };
            let idx = match &pair[0] {
                Value::Null => BUCKETS - 1,
                le => {
                    let le = as_u64(le);
                    (0..BUCKETS)
                        .find(|&i| bucket_upper_bound(i) == Some(le))
                        .expect("bucket edge maps to an index")
                }
            };
            dense[idx] = as_u64(&pair[1]);
        }
        assert_eq!(dense, h.buckets, "{name} buckets");
    }
}

#[test]
fn prometheus_exposition_follows_the_grammar() {
    let registry = sample_registry();
    let snapshot = registry.snapshot();
    let text = snapshot.render_prometheus();

    let mut typed = 0usize;
    for line in text.lines() {
        assert!(!line.is_empty(), "exposition has no blank lines");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(family.starts_with("nfstrace_"), "family {family:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown family kind {kind:?}"
            );
            typed += 1;
        } else {
            // `name value` or `name{label="..."} value` with a
            // float-parseable value and a clean metric-name charset.
            let (name_part, value_part) = line.rsplit_once(' ').expect("metric line has a value");
            let bare = &name_part[..name_part.find('{').unwrap_or(name_part.len())];
            assert!(
                !bare.is_empty()
                    && bare
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "metric name {bare:?} breaks the exposition charset"
            );
            assert!(bare.starts_with("nfstrace_"), "metric {bare:?} unprefixed");
            assert!(
                value_part.parse::<f64>().is_ok(),
                "unparseable sample value {value_part:?} in {line:?}"
            );
        }
    }
    // One typed family per metric.
    assert_eq!(
        typed,
        snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len()
    );

    // Histogram families: cumulative nondecreasing buckets closed by a
    // `+Inf` bucket equal to `_count`.
    for (name, h) in &snapshot.histograms {
        let family = format!(
            "nfstrace_{}",
            name.replace(|c: char| !c.is_ascii_alphanumeric(), "_")
        );
        let mut last = 0u64;
        let mut inf = None;
        let mut count = None;
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (lhs, value) = line.rsplit_once(' ').expect("metric line");
            if let Some(le) = lhs
                .strip_prefix(&format!("{family}_bucket{{le=\""))
                .and_then(|r| r.strip_suffix("\"}"))
            {
                let cumulative: u64 = value.parse().expect("bucket count");
                assert!(cumulative >= last, "{name}: cumulative buckets decreased");
                last = cumulative;
                if le == "+Inf" {
                    inf = Some(cumulative);
                }
            } else if lhs == format!("{family}_count") {
                count = Some(value.parse::<u64>().expect("count"));
            }
        }
        assert_eq!(inf, Some(h.count), "{name}: +Inf bucket covers everything");
        assert_eq!(count, Some(h.count), "{name}: _count matches");
    }
}
