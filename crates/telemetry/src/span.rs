//! RAII stage spans: time a scope, record microseconds on drop.

use std::time::Instant;

use crate::histogram::Histogram;

/// Records elapsed wall-clock microseconds into a [`Histogram`] when
/// dropped. Construct via [`SpanTimer::start`] or the
/// [`span!`](crate::span) macro; bind it to a named variable
/// (`let _span = ...`) so it lives to the end of the stage.
///
/// The timer itself costs one `Instant::now()` on each end and a
/// single lock-free histogram record — cheap enough for per-batch and
/// per-query stages (it is deliberately *not* used per record).
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    started: Instant,
}

impl SpanTimer {
    /// Start timing into `hist`.
    pub fn start(hist: Histogram) -> Self {
        SpanTimer {
            hist,
            started: Instant::now(),
        }
    }

    /// Elapsed microseconds so far (the value `drop` will record).
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn span_records_once_on_drop() {
        let reg = Registry::new();
        {
            let _span = crate::span!(reg, "stage_micros");
        }
        {
            let _span = crate::span!(reg.histogram("stage_micros"));
        }
        assert_eq!(reg.histogram("stage_micros").snapshot().count, 2);
    }
}
