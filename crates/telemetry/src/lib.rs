//! Unified pipeline telemetry: a sharded metrics registry, stage
//! spans, and a periodic exporter.
//!
//! The paper's collector ran unattended against a production mirror
//! port for months; its loss counters were the published evidence that
//! the traces could be trusted. This crate is that layer for our
//! pipeline: every stage (capture → ingest → store → query) records
//! into one [`Registry`], and a long-running process can export a
//! consistent snapshot periodically without perturbing the hot path.
//!
//! # Design constraints
//!
//! - **Lock-free hot path.** [`Counter::inc`], [`Gauge::set`], and
//!   [`Histogram::record`] are a handful of relaxed atomic operations
//!   on cache-line-padded stripes — no locks, and **no heap
//!   allocation** (the sniffer's alloc-budget test pins zero
//!   steady-state allocations per record, telemetry included). The
//!   only lock is a registration-time mutex in [`Registry`].
//! - **Deterministic, mergeable histograms.** [`Histogram`] uses
//!   fixed power-of-two bucket edges, so snapshots from any number of
//!   threads or shards merge associatively and commutatively into the
//!   same result as a single recorder would have produced
//!   ([`HistogramSnapshot::merge`]).
//! - **Never stdout.** The [`export::Exporter`] writes JSON-lines and
//!   Prometheus text exposition to files or stderr only; the suite's
//!   byte-identity contracts (`repro` vs `--store` vs `live` stdout
//!   `cmp`) hold with telemetry enabled.
//! - **Instance-based, not global.** Components own a private
//!   [`Registry`] by default and grow `with_registry` constructors to
//!   share one; per-instance tests keep exact counter semantics while
//!   a daemon aggregates everything into a single export.
//!
//! Every exported metric name is documented in the repository
//! README's "Observability" section; a CI lint fails the build if a
//! name is registered in code but missing from the docs.

#![warn(clippy::redundant_clone)]

pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;

pub use export::{Exporter, ExporterConfig, Snapshot};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use span::SpanTimer;

/// Start an RAII stage span recording elapsed microseconds into a
/// histogram when dropped.
///
/// Two forms:
/// - `span!(hist)` — time into an already-resolved [`Histogram`]
///   handle (hot paths resolve handles once at construction).
/// - `span!(registry, "decode_chunk")` — resolve
///   `"decode_chunk_micros"`-style names ad hoc; fine off the hot
///   path.
///
/// ```
/// use nfstrace_telemetry::{span, Registry};
/// let reg = Registry::new();
/// {
///     let _span = span!(reg, "decode_chunk_micros");
///     // ... stage work ...
/// }
/// assert_eq!(reg.histogram("decode_chunk_micros").snapshot().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $crate::SpanTimer::start(($hist).clone())
    };
    ($registry:expr, $name:expr) => {
        $crate::SpanTimer::start(($registry).histogram($name))
    };
}
