//! The metric registry and its scalar instruments.
//!
//! A [`Registry`] is a cheaply cloneable handle (an `Arc`) to a named
//! set of metrics. Handle resolution ([`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`]) takes a mutex and
//! allocates; it happens once, at component construction. The
//! returned [`Counter`] / [`Gauge`] / [`Histogram`] handles are then
//! pure relaxed-atomic instruments: lock-free and allocation-free, so
//! they are safe to touch from per-packet and per-record hot paths.
//!
//! Counters are striped across cache-line-padded atomics with a
//! thread-local stripe assignment, so concurrent writers (the sharded
//! live ingest, pipelined store decode) do not bounce one cache line.
//! Reads sum the stripes; a read concurrent with writes sees some
//! prefix of them, which is the usual monotonic-counter contract.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::export::Snapshot;
use crate::histogram::Histogram;

/// Number of cache-line-padded stripes per counter/histogram. Threads
/// are assigned stripes round-robin; more threads than stripes share.
pub(crate) const STRIPES: usize = 8;

#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stripe index, assigned round-robin on first use.
/// Allocation-free (const-initialized thread local).
pub(crate) fn stripe() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
            v
        }
    })
}

/// A monotonic counter. Cloning shares the underlying stripes.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    stripes: Arc<[PaddedU64; STRIPES]>,
}

impl Counter {
    /// A standalone counter not attached to any registry.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one. Lock-free, allocation-free.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Lock-free, allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in one
/// atomic, so `set`/`value` are single relaxed operations).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// A standalone gauge not attached to any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value. Lock-free, allocation-free.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named set of metrics shared across pipeline components.
///
/// Cloning is cheap and shares the set. Components default to a
/// private registry (`Registry::new()` in their plain constructors)
/// so per-instance counter semantics — which the unit tests assert
/// exactly — are preserved; a daemon passes one registry to every
/// `with_registry` constructor and exports the union.
///
/// Metric names are dotted lowercase paths (`"sniffer.frames"`,
/// `"live.batch_micros"`). The exporter renders them verbatim in
/// JSON-lines and sanitized (`nfstrace_` prefix, dots to underscores)
/// in Prometheus text exposition.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.inner.lock().expect("telemetry registry lock");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        let metrics = self.inner.lock().expect("telemetry registry lock");
        metrics.keys().cloned().collect()
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name. Counters and histograms read concurrently with writers
    /// see a monotonic prefix; the snapshot itself is plain data.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.lock().expect("telemetry registry lock");
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.value())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.value())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_stripes_sum() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn registry_returns_same_instrument_for_same_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").value(), 3);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        let g = reg.gauge("load");
        g.set(0.25);
        g.set(0.5);
        assert_eq!(reg.gauge("load").value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn counters_shared_across_clones_and_threads() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits").value(), 4000);
    }
}
