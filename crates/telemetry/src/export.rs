//! Snapshot rendering and the periodic exporter.
//!
//! Two render targets, both append/rewrite **files or stderr — never
//! stdout** (stdout carries the suite's byte-identity contract):
//!
//! - **JSON-lines**: one self-contained JSON object per tick,
//!   appended to a `.jsonl` file. Greppable, parseable, and the form
//!   the CI metrics-smoke step asserts on.
//! - **Prometheus text exposition**: the latest snapshot rewritten in
//!   place (`<path>.prom` next to the JSONL file), ready for a scrape
//!   or `promtool check metrics`-style tooling.
//!
//! The exporter is a background thread sampling the registry at a
//! fixed interval; [`Exporter::stop`] writes one final snapshot and
//! joins, so short-lived runs still export exactly once.

use std::fs::File;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::Registry;

/// Point-in-time values of every metric in a [`Registry`], sorted by
/// name (registration order never affects output).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// State of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when no metric is registered at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One JSON object (no trailing newline): `seq` and
    /// `unix_micros` are supplied by the caller so rendering itself
    /// is deterministic. Histograms serialize as
    /// `{"count":..,"sum":..,"buckets":[[le,count],..]}` with only
    /// non-empty buckets listed (`le` is the inclusive upper bound;
    /// the unbounded top bucket renders `le` as `null`).
    pub fn render_jsonl(&self, seq: u64, unix_micros: u64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"seq\":{seq},\"unix_micros\":{unix_micros},\"counters\":{{"
        ));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(name), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum
            ));
            let mut first = true;
            for (b, n) in h.buckets.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                match bucket_upper_bound(b) {
                    Some(le) => out.push_str(&format!("[{le},{n}]")),
                    None => out.push_str(&format!("[null,{n}]")),
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition format (version 0.0.4): `# TYPE`
    /// comments, sanitized names (`nfstrace_` prefix, dots to
    /// underscores), histograms as cumulative `_bucket{le="..."}`
    /// series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, v) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", prom_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (b, n) in h.buckets.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                cumulative += n;
                if let Some(le) = bucket_upper_bound(b) {
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps a decimal point / exponent, so the token is
        // unambiguously a JSON number (and round-trips as f64).
        format!("{v:?}")
    } else {
        // JSON has no NaN/Inf; a missing measurement reads as null.
        "null".to_string()
    }
}

fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// `sniffer.frames` → `nfstrace_sniffer_frames`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("nfstrace_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Where and how often the [`Exporter`] writes.
#[derive(Clone, Debug)]
pub struct ExporterConfig {
    /// Sampling interval between snapshots.
    pub interval: Duration,
    /// JSONL file, appended one object per tick (created/truncated on
    /// spawn).
    pub jsonl_path: Option<PathBuf>,
    /// Prometheus text file, rewritten whole each tick.
    pub prometheus_path: Option<PathBuf>,
    /// Also write each JSONL line to stderr.
    pub stderr: bool,
}

impl Default for ExporterConfig {
    fn default() -> Self {
        ExporterConfig {
            interval: Duration::from_secs(10),
            jsonl_path: None,
            prometheus_path: None,
            stderr: false,
        }
    }
}

/// Background thread exporting periodic [`Snapshot`]s of a
/// [`Registry`]. Dropping without [`stop`](Exporter::stop) signals
/// the thread and detaches it; `stop` is the graceful path that
/// writes a final snapshot and surfaces any I/O error.
#[derive(Debug)]
pub struct Exporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<()>>>,
    registry: Registry,
}

impl Exporter {
    /// Start exporting `registry` per `config`. The JSONL file (if
    /// any) is created immediately, so a spawn that can't write fails
    /// here rather than silently in the background.
    pub fn spawn(registry: Registry, config: ExporterConfig) -> io::Result<Exporter> {
        let mut jsonl = match &config.jsonl_path {
            Some(p) => Some(File::create(p)?),
            None => None,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_registry = registry.clone();
        let handle = std::thread::Builder::new()
            .name("telemetry-export".to_string())
            .spawn(move || -> io::Result<()> {
                let mut seq = 0u64;
                loop {
                    // Sleep in short slices so stop() is prompt even
                    // at long intervals.
                    let tick_deadline = Instant::now() + config.interval;
                    let mut stopping = false;
                    while Instant::now() < tick_deadline {
                        if thread_stop.load(Ordering::Relaxed) {
                            stopping = true;
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    seq += 1;
                    let snap = thread_registry.snapshot();
                    let unix_micros = SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_micros() as u64)
                        .unwrap_or(0);
                    let line = snap.render_jsonl(seq, unix_micros);
                    if let Some(f) = jsonl.as_mut() {
                        writeln!(f, "{line}")?;
                        f.flush()?;
                    }
                    if config.stderr {
                        eprintln!("{line}");
                    }
                    if let Some(p) = &config.prometheus_path {
                        std::fs::write(p, snap.render_prometheus())?;
                    }
                    if stopping {
                        return Ok(());
                    }
                }
            })?;
        Ok(Exporter {
            stop,
            handle: Some(handle),
            registry,
        })
    }

    /// Signal the thread, wait for its final snapshot write, and
    /// return that final snapshot (for an end-of-run summary).
    pub fn stop(mut self) -> io::Result<Snapshot> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| io::Error::other("telemetry export thread panicked"))??;
        }
        Ok(self.registry.snapshot())
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("a.hits").add(3);
        reg.gauge("a.rate").set(0.5);
        let h = reg.histogram("a.micros");
        h.record(0);
        h.record(5);
        h.record(u64::MAX);
        reg.snapshot()
    }

    #[test]
    fn jsonl_lists_only_nonempty_buckets() {
        let line = sample().render_jsonl(1, 42);
        assert!(line.contains("\"a.hits\":3"));
        assert!(line.contains("\"a.rate\":0.5"));
        assert!(line.contains("[0,1]"));
        assert!(line.contains("[7,1]"));
        assert!(line.contains("[null,1]"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE nfstrace_a_micros histogram\n"));
        assert!(text.contains("nfstrace_a_micros_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("nfstrace_a_micros_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("nfstrace_a_micros_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("nfstrace_a_micros_count 3\n"));
        assert!(text.contains("nfstrace_a_hits 3\n"));
    }

    #[test]
    fn nonfinite_gauges_render_as_null_json() {
        let reg = Registry::new();
        reg.gauge("g").set(f64::NAN);
        let snap = reg.snapshot();
        assert!(snap.render_jsonl(1, 0).contains("\"g\":null"));
        assert!(snap.render_prometheus().contains("nfstrace_g NaN\n"));
    }

    #[test]
    fn exporter_writes_final_snapshot_on_stop() {
        let dir = std::env::temp_dir().join(format!("nfstrace-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("stop.jsonl");
        let prom = dir.join("stop.prom");
        let reg = Registry::new();
        reg.counter("x").add(7);
        let exporter = Exporter::spawn(
            reg,
            ExporterConfig {
                interval: Duration::from_secs(3600),
                jsonl_path: Some(jsonl.clone()),
                prometheus_path: Some(prom.clone()),
                stderr: false,
            },
        )
        .unwrap();
        let snap = exporter.stop().unwrap();
        assert_eq!(snap.counter("x"), Some(7));
        let lines = std::fs::read_to_string(&jsonl).unwrap();
        assert!(lines.lines().count() >= 1);
        assert!(lines.contains("\"x\":7"));
        assert!(std::fs::read_to_string(&prom)
            .unwrap()
            .contains("nfstrace_x 7\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
