//! Mergeable log-scale histograms with fixed power-of-two bucket
//! edges.
//!
//! Bucket edges are *fixed* (not adaptive): bucket `0` holds the
//! value `0`, and bucket `i` (for `i >= 1`) holds values in
//! `[2^(i-1), 2^i)`, with the top bucket (`63`) unbounded. Fixed
//! edges are what make histograms **mergeable**: a snapshot is just
//! per-bucket counts plus `count` and `sum`, so merging thread-local
//! or shard-local histograms is element-wise addition — associative,
//! commutative, and bit-for-bit equal to what a single recorder would
//! have produced. The proptest suite pins exactly that property.
//!
//! Recording is lock-free and allocation-free: the histogram stripes
//! its buckets the same way [`crate::Counter`] does, and a record is
//! three relaxed `fetch_add`s on this thread's stripe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::registry::{stripe, STRIPES};

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `0` for `0`, else
/// `min(63, 64 - leading_zeros(v))`, i.e. bucket `i` covers
/// `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, or `None` for the unbounded
/// top bucket (rendered as `+Inf` in Prometheus exposition).
#[inline]
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    match i {
        0 => Some(0),
        _ if i < BUCKETS - 1 => Some((1u64 << i) - 1),
        _ => None,
    }
}

#[derive(Debug)]
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Stripe {
    fn default() -> Self {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A striped log-scale histogram. Cloning shares the stripes.
#[derive(Clone, Debug)]
pub struct Histogram {
    stripes: Arc<[Stripe; STRIPES]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            stripes: Arc::new(std::array::from_fn(|_| Stripe::default())),
        }
    }
}

impl Histogram {
    /// A standalone histogram not attached to any registry.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.stripes[stripe()];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merge all stripes into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for s in self.stripes.iter() {
            for (i, b) in s.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += s.count.load(Ordering::Relaxed);
            // `record` accumulates with wrapping `fetch_add`, so the
            // cross-stripe total must wrap the same way.
            snap.sum = snap.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
        }
        snap
    }
}

/// Plain-data histogram state: per-bucket counts plus total count and
/// sum. [`merge`](HistogramSnapshot::merge) is element-wise addition,
/// so any grouping or ordering of partial snapshots merges to the
/// same result (the single-recorder oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per bucket; see [`bucket_index`] for the edges.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping is the caller's concern; the
    /// pipeline records microsecond durations and byte counts, far
    /// from overflow).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (element-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the bucket
    /// counts, or 0 when empty.
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// `ceil(q * count)`-th smallest observation — an upper estimate
    /// no more than 2x the true value, which is the usual contract of
    /// a log-scale histogram (the top bucket, unbounded, reports
    /// `u64::MAX`). `percentile(0.5)` is the median, `percentile(0.99)`
    /// the p99.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 1..63 {
            // 2^k is the first value of bucket k+1; 2^k - 1 the last
            // of bucket k.
            assert_eq!(bucket_index(1u64 << k), k + 1, "first of bucket {}", k + 1);
            assert_eq!(bucket_index((1u64 << k) - 1), k, "last of bucket {k}");
        }
        assert_eq!(bucket_index(1u64 << 63), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_match_index() {
        for i in 0..BUCKETS {
            if let Some(hi) = bucket_upper_bound(i) {
                assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
                assert_eq!(
                    bucket_index(hi.wrapping_add(1)),
                    if hi == 0 { 1 } else { i + 1 },
                    "just past bucket {i}"
                );
            } else {
                assert_eq!(i, BUCKETS - 1);
            }
        }
    }

    #[test]
    fn record_accumulates_count_sum_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[bucket_index(5)], 1);
        assert_eq!(s.buckets[bucket_index(1000)], 1);
    }

    #[test]
    fn percentile_reads_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile(0.5), 0, "empty histogram");
        // 100 observations: 90 fast (land in [64,128)), 10 slow
        // (land in [1024,2048)).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(2000);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 127, "median bucket upper bound");
        assert_eq!(s.percentile(0.90), 127, "p90 still in the fast bucket");
        assert_eq!(s.percentile(0.99), 2047, "p99 lands in the slow bucket");
        assert_eq!(s.percentile(1.0), 2047);
        assert_eq!(s.percentile(0.0), 127, "q=0 clamps to the first value");

        let top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.snapshot().percentile(0.5), u64::MAX, "unbounded top");
    }

    #[test]
    fn merge_matches_single_recorder() {
        let a = Histogram::new();
        let b = Histogram::new();
        let oracle = Histogram::new();
        for (i, v) in [3u64, 0, 9, 1 << 40, 17, 17].iter().enumerate() {
            if i % 2 == 0 { &a } else { &b }.record(*v);
            oracle.record(*v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, oracle.snapshot());
    }
}
