//! NFS client model: caches, nfsiods, and a POSIX-ish file API.
//!
//! The paper's analyses exist because of two client-side artifacts this
//! crate reproduces mechanistically:
//!
//! - **Call reordering** ([`nfsiod`]): asynchronous reads and writes are
//!   issued by a pool of `nfsiod` processes; the process scheduler
//!   determines which hits the wire first. One nfsiod → no reordering;
//!   more → up to ~10% of calls reordered and delays up to a second
//!   (§4.1.5).
//! - **Client-side caching** ([`cache`]): NFS caches data per *file*,
//!   validated by attribute checks. Metadata traffic (getattr/access/
//!   lookup) dominates EECS because clients mostly revalidate; mailbox
//!   delivery invalidates whole multi-megabyte inboxes on CAMPUS,
//!   causing the enormous read volume (§6.1.2).
//!
//! [`machine::ClientMachine`] combines both over a shared
//! [`nfstrace_fssim::NfsServer`], emitting [`machine::EmittedCall`]
//! events that downstream crates turn into trace records or packets.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod cache;
pub mod machine;
pub mod nfsiod;

pub use cache::{CacheConfig, ClientCache};
pub use machine::{ClientConfig, ClientMachine, EmittedCall};
pub use nfsiod::{NfsiodPool, ReorderStats};
