//! A simulated NFS client machine.
//!
//! [`ClientMachine`] exposes a POSIX-ish API (lookup, read, write,
//! create, remove, ...) and turns it into NFS calls against a
//! [`NfsServer`], going through the client cache (absorbing reads,
//! generating revalidation getattrs) and the nfsiod pool (adding wire
//! reordering for async data calls). Every call/reply pair is emitted as
//! an [`EmittedCall`] for downstream conversion to trace records or
//! packets.

use crate::cache::{CacheConfig, ClientCache};
use crate::nfsiod::NfsiodPool;
use nfstrace_fssim::NfsServer;
use nfstrace_nfs::fh::FileHandle;
use nfstrace_nfs::v3::{
    Access3Args, Call3, Commit3Args, Create3Args, CreateHow, DirOpArgs, FhArgs, Mkdir3Args,
    Read3Args, Readdir3Args, Rename3Args, Reply3, Reply3Body, Setattr3Args, StableHow,
    Symlink3Args, Write3Args,
};
use nfstrace_nfs::Sattr3;

/// 8 KB, the block size used throughout the paper.
const BLOCK: u64 = 8192;

/// CPU time between successive async chunk dispatches: the kernel does a
/// little work (page allocation, bookkeeping) before handing the next
/// chunk to a biod.
const DISPATCH_GAP_MICROS: u64 = 80;

/// Client configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientConfig {
    /// Client IP identity.
    pub ip: u32,
    /// Credential uid.
    pub uid: u32,
    /// Credential gid.
    pub gid: u32,
    /// NFS protocol version this client reports (2 or 3). The machine
    /// always computes with v3 semantics; version-2 clients are tagged so
    /// the wire layer and analyses see the mix the paper describes.
    pub vers: u8,
    /// Number of nfsiod daemons (1 = no reordering).
    pub nfsiods: usize,
    /// Read transfer size per READ call.
    pub rsize: u32,
    /// Write transfer size per WRITE call.
    pub wsize: u32,
    /// Cache behaviour.
    pub cache: CacheConfig,
    /// Base one-way latency for synchronous (metadata) calls, µs.
    pub meta_latency_micros: u64,
    /// Server processing latency, µs.
    pub server_latency_micros: u64,
    /// RNG seed for the nfsiod pool.
    pub seed: u64,
    /// First RPC transaction id this machine issues. Sharded workload
    /// generation gives each simulated user's machines a disjoint xid
    /// base so (client, xid) pairs stay unique within a merged trace.
    pub first_xid: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            ip: 0x0a00_0001,
            uid: 1000,
            gid: 100,
            vers: 3,
            nfsiods: 4,
            rsize: 32 * 1024,
            wsize: 32 * 1024,
            cache: CacheConfig::default(),
            meta_latency_micros: 120,
            server_latency_micros: 250,
            seed: 1,
            first_xid: 1,
        }
    }
}

/// One call/reply pair as seen on the wire.
#[derive(Debug, Clone)]
pub struct EmittedCall {
    /// Time the call reached the wire (capture timestamp), µs.
    pub wire_micros: u64,
    /// Time the reply was captured, µs.
    pub reply_micros: u64,
    /// RPC transaction id.
    pub xid: u32,
    /// Client IP.
    pub client_ip: u32,
    /// Server IP.
    pub server_ip: u32,
    /// Credential uid.
    pub uid: u32,
    /// Credential gid.
    pub gid: u32,
    /// Protocol version tag (2 or 3).
    pub vers: u8,
    /// The call.
    pub call: Call3,
    /// The reply.
    pub reply: Reply3,
}

/// A simulated client machine bound to one server.
#[derive(Debug)]
pub struct ClientMachine {
    /// The configuration.
    pub config: ClientConfig,
    cache: ClientCache,
    pool: NfsiodPool,
    next_xid: u32,
    events: Vec<EmittedCall>,
}

impl ClientMachine {
    /// Creates a client.
    pub fn new(config: ClientConfig) -> Self {
        ClientMachine {
            cache: ClientCache::new(config.cache),
            pool: NfsiodPool::new(config.nfsiods, config.seed),
            next_xid: config.first_xid,
            events: Vec::new(),
            config,
        }
    }

    /// Drains the emitted call/reply events accumulated so far.
    pub fn take_events(&mut self) -> Vec<EmittedCall> {
        std::mem::take(&mut self.events)
    }

    /// The client cache (for inspecting hit/invalidation counters).
    pub fn cache(&self) -> &ClientCache {
        &self.cache
    }

    /// nfsiod reordering statistics.
    pub fn reorder_stats(&self) -> crate::nfsiod::ReorderStats {
        self.pool.stats()
    }

    fn xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    /// Issues a synchronous (metadata) call; returns the reply and its
    /// capture time.
    fn sync_call(&mut self, server: &mut NfsServer, now: u64, call: Call3) -> (Reply3, u64) {
        let wire = now + self.config.meta_latency_micros;
        let reply_t = wire + self.config.server_latency_micros;
        let reply = server.handle_v3(&call, wire);
        let xid = self.xid();
        self.events.push(EmittedCall {
            wire_micros: wire,
            reply_micros: reply_t,
            xid,
            client_ip: self.config.ip,
            server_ip: server.server_ip,
            uid: self.config.uid,
            gid: self.config.gid,
            vers: self.config.vers,
            call,
            reply: reply.clone(),
        });
        (reply, reply_t)
    }

    /// Issues an asynchronous (data) call through the nfsiod pool. The
    /// daemon blocks until the reply returns, as real nfsiods do.
    fn async_call(&mut self, server: &mut NfsServer, now: u64, call: Call3) -> (Reply3, u64) {
        let transfer = match &call {
            Call3::Read(a) => u64::from(a.count) / 50,
            Call3::Write(a) => u64::from(a.count) / 50,
            _ => 0,
        };
        let hold = self.config.server_latency_micros + transfer;
        let wire = self.pool.dispatch_held(now, hold);
        let reply_t = wire + self.config.server_latency_micros + transfer;
        let reply = server.handle_v3(&call, wire);
        let xid = self.xid();
        self.events.push(EmittedCall {
            wire_micros: wire,
            reply_micros: reply_t,
            xid,
            client_ip: self.config.ip,
            server_ip: server.server_ip,
            uid: self.config.uid,
            gid: self.config.gid,
            vers: self.config.vers,
            call,
            reply: reply.clone(),
        });
        (reply, reply_t)
    }

    /// LOOKUP `name` in `dir`; returns the child handle if found, and
    /// the completion time.
    pub fn lookup(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        dir: &FileHandle,
        name: &str,
    ) -> (Option<FileHandle>, u64) {
        let (reply, t) = self.sync_call(
            server,
            now,
            Call3::Lookup(DirOpArgs {
                dir: dir.clone(),
                name: name.to_string(),
            }),
        );
        let fh = match &reply.body {
            Reply3Body::Lookup(res) => {
                if let (Some(obj), Some(attrs)) = (&res.object, &res.obj_attributes) {
                    if let Some(id) = obj.as_u64() {
                        self.cache
                            .update_attrs(id, attrs.size, attrs.mtime.to_micros(), t);
                    }
                    Some(obj.clone())
                } else {
                    None
                }
            }
            _ => None,
        };
        (fh, t)
    }

    /// GETATTR on `file`, updating the attribute cache. Returns the size
    /// and completion time.
    pub fn getattr(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        file: &FileHandle,
    ) -> (Option<u64>, u64) {
        let (reply, t) = self.sync_call(
            server,
            now,
            Call3::Getattr(FhArgs {
                object: file.clone(),
            }),
        );
        let size = match &reply.body {
            Reply3Body::Getattr(res) => res.attributes.map(|a| {
                if let Some(id) = file.as_u64() {
                    self.cache.update_attrs(id, a.size, a.mtime.to_micros(), t);
                }
                a.size
            }),
            _ => None,
        };
        (size, t)
    }

    /// ACCESS check (v3 clients issue these alongside getattrs).
    pub fn access(&mut self, server: &mut NfsServer, now: u64, file: &FileHandle) -> u64 {
        let (_, t) = self.sync_call(
            server,
            now,
            Call3::Access(Access3Args {
                object: file.clone(),
                access: 0x1f,
            }),
        );
        t
    }

    /// Revalidates the attribute cache for `file` if stale, issuing a
    /// GETATTR when needed. Returns the completion time.
    pub fn validate(&mut self, server: &mut NfsServer, now: u64, file: &FileHandle) -> u64 {
        let Some(id) = file.as_u64() else { return now };
        if self.cache.attrs_fresh(id, now) {
            return now;
        }
        let (_, t) = self.getattr(server, now, file);
        t
    }

    /// Reads `len` bytes at `offset`, using the cache: fresh cached
    /// blocks are absorbed; the rest go to the wire in `rsize` chunks
    /// through the nfsiod pool. Returns the completion time.
    pub fn read(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        file: &FileHandle,
        offset: u64,
        len: u64,
    ) -> u64 {
        let Some(id) = file.as_u64() else { return now };
        let t0 = self.validate(server, now, file);
        let mtime = self.cache.attrs(id).map_or(0, |a| a.mtime);

        // Plan the uncached chunks up front: real clients issue the
        // whole read-ahead window through their nfsiods concurrently,
        // which is exactly where §4.1.5's call reordering comes from.
        let end = offset + len;
        let mut chunks: Vec<(u64, u32)> = Vec::new();
        let mut cursor = offset;
        while cursor < end {
            let block = cursor / BLOCK;
            if self.cache.block_cached(id, block) {
                cursor = (block + 1) * BLOCK;
                continue;
            }
            let chunk_start = block * BLOCK;
            let max_here =
                (u64::from(self.config.rsize)).min(end.saturating_sub(chunk_start).max(BLOCK));
            let mut chunk_len = 0u64;
            while chunk_len < max_here
                && chunk_start + chunk_len < end
                && !self
                    .cache
                    .block_cached(id, (chunk_start + chunk_len) / BLOCK)
            {
                chunk_len += BLOCK;
            }
            let count = chunk_len.min(u64::from(self.config.rsize)) as u32;
            chunks.push((chunk_start, count));
            cursor = chunk_start + u64::from(count);
        }

        let mut done = t0;
        for (i, (chunk_start, count)) in chunks.into_iter().enumerate() {
            // The kernel pages through the file, dispatching the next
            // chunk to a biod after a little CPU work.
            let issue = t0 + i as u64 * DISPATCH_GAP_MICROS;
            let (reply, rt) = self.async_call(
                server,
                issue,
                Call3::Read(Read3Args {
                    file: file.clone(),
                    offset: chunk_start,
                    count,
                }),
            );
            done = done.max(rt);
            if let Reply3Body::Read(res) = &reply.body {
                let got = u64::from(res.count);
                let new_mtime = res
                    .file_attributes
                    .map(|a| a.mtime.to_micros())
                    .unwrap_or(mtime);
                for b in chunk_start / BLOCK..(chunk_start + got.max(1)).div_ceil(BLOCK) {
                    self.cache.insert_block(id, b, new_mtime);
                }
                if res.eof {
                    break;
                }
            }
        }
        done
    }

    /// Reads the whole file (validating first), as a mail client scans
    /// an inbox. Returns the completion time.
    pub fn read_file(&mut self, server: &mut NfsServer, now: u64, file: &FileHandle) -> u64 {
        let Some(id) = file.as_u64() else { return now };
        let t = self.validate(server, now, file);
        let size = self.cache.attrs(id).map_or(0, |a| a.size);
        if size == 0 {
            return t;
        }
        self.read(server, t, file, 0, size)
    }

    /// Writes `len` bytes at `offset` in `wsize` chunks through the
    /// nfsiod pool. The cache tracks our own mtime so self-writes do not
    /// self-invalidate. Returns the completion time.
    pub fn write(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        file: &FileHandle,
        offset: u64,
        len: u64,
    ) -> u64 {
        let Some(id) = file.as_u64() else { return now };
        let mut done = now;
        let mut written = 0u64;
        let mut chunk_index = 0u64;
        while written < len {
            // Chunks end on wsize boundaries: the client's page cache
            // flushes aligned pages, so one logical write never touches
            // the same block from two wire writes.
            let pos = offset + written;
            let to_boundary = u64::from(self.config.wsize) - (pos % u64::from(self.config.wsize));
            let count = (len - written).min(to_boundary) as u32;
            let issue = now + chunk_index * DISPATCH_GAP_MICROS;
            chunk_index += 1;
            let (reply, rt) = self.async_call(
                server,
                issue,
                Call3::Write(Write3Args {
                    file: file.clone(),
                    offset: offset + written,
                    count,
                    stable: StableHow::Unstable,
                    data: vec![0u8; count as usize],
                }),
            );
            done = done.max(rt);
            if let Reply3Body::Write(res) = &reply.body {
                if let Some(after) = res.wcc.after {
                    let mtime = after.mtime.to_micros();
                    self.cache.note_own_write(id, after.size, mtime, rt);
                    for b in (offset + written) / BLOCK
                        ..(offset + written + u64::from(count)).div_ceil(BLOCK)
                    {
                        self.cache.insert_block(id, b, mtime);
                    }
                }
            }
            written += u64::from(count);
        }
        done
    }

    /// COMMIT after unstable writes.
    pub fn commit(&mut self, server: &mut NfsServer, now: u64, file: &FileHandle) -> u64 {
        let (_, t) = self.sync_call(
            server,
            now,
            Call3::Commit(Commit3Args {
                file: file.clone(),
                offset: 0,
                count: 0,
            }),
        );
        t
    }

    /// CREATE a file; returns its handle and the completion time.
    pub fn create(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        dir: &FileHandle,
        name: &str,
    ) -> (Option<FileHandle>, u64) {
        let (reply, t) = self.sync_call(
            server,
            now,
            Call3::Create(Create3Args {
                where_: DirOpArgs {
                    dir: dir.clone(),
                    name: name.to_string(),
                },
                how: CreateHow::Unchecked,
                attributes: Sattr3::default(),
            }),
        );
        let fh = match &reply.body {
            Reply3Body::Create(res) => {
                if let (Some(obj), Some(attrs)) = (&res.obj, &res.obj_attributes) {
                    if let Some(id) = obj.as_u64() {
                        self.cache
                            .update_attrs(id, attrs.size, attrs.mtime.to_micros(), t);
                    }
                }
                res.obj.clone()
            }
            _ => None,
        };
        (fh, t)
    }

    /// MKDIR; returns the new directory handle.
    pub fn mkdir(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        dir: &FileHandle,
        name: &str,
    ) -> (Option<FileHandle>, u64) {
        let (reply, t) = self.sync_call(
            server,
            now,
            Call3::Mkdir(Mkdir3Args {
                where_: DirOpArgs {
                    dir: dir.clone(),
                    name: name.to_string(),
                },
                attributes: Sattr3::default(),
            }),
        );
        let fh = match reply.body {
            Reply3Body::Mkdir(res) => res.obj,
            _ => None,
        };
        (fh, t)
    }

    /// SYMLINK.
    pub fn symlink(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        dir: &FileHandle,
        name: &str,
        target: &str,
    ) -> u64 {
        let (_, t) = self.sync_call(
            server,
            now,
            Call3::Symlink(Symlink3Args {
                where_: DirOpArgs {
                    dir: dir.clone(),
                    name: name.to_string(),
                },
                attributes: Sattr3::default(),
                target: target.to_string(),
            }),
        );
        t
    }

    /// REMOVE `name` from `dir`, dropping any cached state for it.
    pub fn remove(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        dir: &FileHandle,
        name: &str,
    ) -> u64 {
        // Know which file dies so the cache can forget it.
        if let Ok(id) = server.fs().lookup(dir.as_u64().unwrap_or(0), name) {
            self.cache.forget(id);
        }
        let (_, t) = self.sync_call(
            server,
            now,
            Call3::Remove(DirOpArgs {
                dir: dir.clone(),
                name: name.to_string(),
            }),
        );
        t
    }

    /// RENAME within or across directories.
    pub fn rename(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        from_dir: &FileHandle,
        from: &str,
        to_dir: &FileHandle,
        to: &str,
    ) -> u64 {
        let (_, t) = self.sync_call(
            server,
            now,
            Call3::Rename(Rename3Args {
                from: DirOpArgs {
                    dir: from_dir.clone(),
                    name: from.to_string(),
                },
                to: DirOpArgs {
                    dir: to_dir.clone(),
                    name: to.to_string(),
                },
            }),
        );
        t
    }

    /// SETATTR truncating (or extending) `file` to `size`.
    pub fn truncate(
        &mut self,
        server: &mut NfsServer,
        now: u64,
        file: &FileHandle,
        size: u64,
    ) -> u64 {
        let (reply, t) = self.sync_call(
            server,
            now,
            Call3::Setattr(Setattr3Args {
                object: file.clone(),
                new_attributes: Sattr3 {
                    size: Some(size),
                    set_mtime_to_server: true,
                    ..Sattr3::default()
                },
                guard_ctime: None,
            }),
        );
        if let (Some(id), Reply3Body::Setattr(res)) = (file.as_u64(), &reply.body) {
            if let Some(after) = res.wcc.after {
                self.cache
                    .update_attrs(id, after.size, after.mtime.to_micros(), t);
            }
        }
        t
    }

    /// READDIR one page of `dir`.
    pub fn readdir(&mut self, server: &mut NfsServer, now: u64, dir: &FileHandle) -> u64 {
        let (_, t) = self.sync_call(
            server,
            now,
            Call3::Readdir(Readdir3Args {
                dir: dir.clone(),
                cookie: 0,
                cookieverf: [0; 8],
                count: 8192,
            }),
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NfsServer, ClientMachine, FileHandle) {
        let server = NfsServer::new(0x0a00_0064);
        let root = server.root_fh();
        let client = ClientMachine::new(ClientConfig {
            nfsiods: 1, // deterministic ordering for tests
            ..ClientConfig::default()
        });
        (server, client, root)
    }

    #[test]
    fn create_write_read_emits_calls() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "inbox");
        let fh = fh.expect("created");
        let t = client.write(&mut server, t, &fh, 0, 100_000);
        let _ = client.read_file(&mut server, t, &fh);
        let events = client.take_events();
        let ops: Vec<&str> = events.iter().map(|e| e.call.proc().name()).collect();
        assert!(ops.contains(&"CREATE"));
        assert!(ops.contains(&"WRITE"));
        // Reads were absorbed: our own writes populated the cache.
        assert!(!ops.contains(&"READ"), "ops = {ops:?}");
    }

    #[test]
    fn foreign_write_invalidates_and_rereads() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "inbox");
        let fh = fh.expect("created");
        let t = client.write(&mut server, t, &fh, 0, 64 * 1024);
        let t = client.read_file(&mut server, t, &fh);
        client.take_events();

        // Another writer (mail delivery) appends server-side.
        let id = fh.as_u64().unwrap();
        server
            .fs_mut()
            .write(id, 64 * 1024, 4096, t + 1000)
            .unwrap();

        // After the attribute timeout, the next scan re-reads everything.
        let later = t + 60 * 1_000_000;
        client.read_file(&mut server, later, &fh);
        let events = client.take_events();
        let reads: u64 = events
            .iter()
            .filter(|e| matches!(e.call, Call3::Read(_)))
            .map(|e| match &e.reply.body {
                Reply3Body::Read(r) => u64::from(r.count),
                _ => 0,
            })
            .sum();
        assert!(
            reads >= 64 * 1024,
            "whole file should be re-read, got {reads}"
        );
        assert!(client.cache().invalidations >= 1);
    }

    #[test]
    fn fresh_attrs_absorb_repeated_scans() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "mbox");
        let fh = fh.expect("created");
        let t = client.write(&mut server, t, &fh, 0, 32 * 1024);
        let t = client.read_file(&mut server, t, &fh);
        client.take_events();
        // Rescan within the attribute timeout: no wire traffic at all.
        client.read_file(&mut server, t + 1_000_000, &fh);
        let events = client.take_events();
        assert!(events.is_empty(), "events = {:?}", events.len());
    }

    #[test]
    fn stale_attrs_cause_getattr_only_when_unchanged() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "doc");
        let fh = fh.expect("created");
        let t = client.write(&mut server, t, &fh, 0, 8192);
        let t = client.read_file(&mut server, t, &fh);
        client.take_events();
        // Well past the timeout, nothing changed: one GETATTR, no READs.
        client.read_file(&mut server, t + 120 * 1_000_000, &fh);
        let events = client.take_events();
        let ops: Vec<&str> = events.iter().map(|e| e.call.proc().name()).collect();
        assert_eq!(ops, vec!["GETATTR"]);
    }

    #[test]
    fn remove_emits_and_forgets() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "x.lock");
        let fh = fh.expect("created");
        let t = client.remove(&mut server, t, &root, "x.lock");
        let events = client.take_events();
        assert_eq!(events.last().unwrap().call.proc().name(), "REMOVE");
        let _ = (fh, t);
    }

    #[test]
    fn lookup_miss_returns_none() {
        let (mut server, mut client, root) = setup();
        let (fh, _) = client.lookup(&mut server, 0, &root, "absent");
        assert!(fh.is_none());
    }

    #[test]
    fn reads_chunked_by_rsize() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "big");
        let fh = fh.expect("created");
        // Write 256 KB server-side so the client cache is cold.
        server
            .fs_mut()
            .write(fh.as_u64().unwrap(), 0, 256 * 1024, t)
            .unwrap();
        client.read_file(&mut server, t + 40_000_000, &fh);
        let events = client.take_events();
        let read_counts: Vec<u32> = events
            .iter()
            .filter_map(|e| match &e.call {
                Call3::Read(a) => Some(a.count),
                _ => None,
            })
            .collect();
        assert_eq!(read_counts.len(), 8); // 256 KB / 32 KB
        assert!(read_counts.iter().all(|&c| c == 32 * 1024));
    }

    #[test]
    fn writes_chunked_by_wsize() {
        let (mut server, mut client, root) = setup();
        let (fh, t) = client.create(&mut server, 0, &root, "w");
        let fh = fh.expect("created");
        client.write(&mut server, t, &fh, 0, 100 * 1024);
        let events = client.take_events();
        let writes: Vec<u32> = events
            .iter()
            .filter_map(|e| match &e.call {
                Call3::Write(a) => Some(a.count),
                _ => None,
            })
            .collect();
        assert_eq!(writes.len(), 4); // 3 x 32 KB + 1 x 4 KB
        assert_eq!(
            writes.iter().map(|&c| u64::from(c)).sum::<u64>(),
            100 * 1024
        );
    }

    #[test]
    fn multiple_nfsiods_reorder_reads() {
        let mut server = NfsServer::new(1);
        let root = server.root_fh();
        let mut client = ClientMachine::new(ClientConfig {
            nfsiods: 8,
            seed: 5,
            ..ClientConfig::default()
        });
        let (fh, t) = client.create(&mut server, 0, &root, "big");
        let fh = fh.expect("created");
        server
            .fs_mut()
            .write(fh.as_u64().unwrap(), 0, 64 * 1024 * 1024, t)
            .unwrap();
        let mut now = t + 40_000_000;
        // Issue many single-block reads in a tight loop.
        for i in 0..2000u64 {
            client.read(&mut server, now, &fh, (i % 8192) * BLOCK, BLOCK);
            now += 300;
        }
        assert!(client.reorder_stats().reordered > 0);
    }
}
