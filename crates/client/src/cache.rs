//! The client-side attribute and data cache.
//!
//! NFS clients cache file data and attributes in a weakly consistent
//! manner: data is cached per file and validated by comparing the
//! server's modification time; attributes are trusted for an "attribute
//! cache timeout" between checks. Two consequences the paper measures:
//!
//! - most EECS calls are clients "simply checking to see whether a file
//!   has been updated or whether they can use a cached copy" (§6.1.1);
//! - on CAMPUS, "delivering a message to an inbox updates the
//!   modification time on the entire file ... this results in the
//!   invalidation and immediate re-reading of, on average, more than 2
//!   megabytes of data" (§6.1.2).

use std::collections::{HashMap, HashSet};

/// Cache behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// How long attributes are trusted between revalidations (µs).
    /// Real clients adapt between 3 s and 60 s; a fixed value keeps the
    /// simulation deterministic.
    pub attr_timeout_micros: u64,
    /// Data cache capacity in 8 KB blocks (per client).
    pub capacity_blocks: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            attr_timeout_micros: 30 * 1_000_000,
            capacity_blocks: 16 * 1024, // 128 MB, typical of >128 MB RAM clients
        }
    }
}

/// Cached attributes for one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedAttrs {
    /// File size.
    pub size: u64,
    /// Server mtime (µs).
    pub mtime: u64,
    /// When the attributes were fetched (µs).
    pub fetched_at: u64,
}

#[derive(Debug, Default)]
struct FileData {
    /// mtime the cached blocks correspond to.
    mtime: u64,
    blocks: HashSet<u64>,
}

/// The per-client cache.
#[derive(Debug)]
pub struct ClientCache {
    config: CacheConfig,
    attrs: HashMap<u64, CachedAttrs>,
    data: HashMap<u64, FileData>,
    cached_blocks: usize,
    /// Revalidations that found the cache still valid.
    pub validations_clean: u64,
    /// Revalidations that found new mtime and flushed data.
    pub invalidations: u64,
    /// Bytes of cached data discarded by invalidations.
    pub invalidated_blocks: u64,
}

impl ClientCache {
    /// Creates a cache.
    pub fn new(config: CacheConfig) -> Self {
        ClientCache {
            config,
            attrs: HashMap::new(),
            data: HashMap::new(),
            cached_blocks: 0,
            validations_clean: 0,
            invalidations: 0,
            invalidated_blocks: 0,
        }
    }

    /// Whether the attribute entry for `file` is still fresh at `now`.
    pub fn attrs_fresh(&self, file: u64, now: u64) -> bool {
        self.attrs
            .get(&file)
            .is_some_and(|a| now.saturating_sub(a.fetched_at) < self.config.attr_timeout_micros)
    }

    /// The cached attributes, fresh or not.
    pub fn attrs(&self, file: u64) -> Option<CachedAttrs> {
        self.attrs.get(&file).copied()
    }

    /// Installs attributes fetched from the server at `now`. If the
    /// mtime moved, the file's data cache is flushed (file-granularity
    /// invalidation — the CAMPUS inbox phenomenon). Returns `true` if
    /// data was invalidated.
    pub fn update_attrs(&mut self, file: u64, size: u64, mtime: u64, now: u64) -> bool {
        let invalidate = self
            .data
            .get(&file)
            .is_some_and(|d| d.mtime != mtime && !d.blocks.is_empty());
        if invalidate {
            if let Some(d) = self.data.get_mut(&file) {
                self.invalidations += 1;
                self.invalidated_blocks += d.blocks.len() as u64;
                self.cached_blocks -= d.blocks.len();
                d.blocks.clear();
                d.mtime = mtime;
            }
        } else if let Some(a) = self.attrs.get(&file) {
            if a.mtime == mtime {
                self.validations_clean += 1;
            }
        }
        self.attrs.insert(
            file,
            CachedAttrs {
                size,
                mtime,
                fetched_at: now,
            },
        );
        invalidate
    }

    /// Whether `block` of `file` is cached.
    pub fn block_cached(&self, file: u64, block: u64) -> bool {
        self.data
            .get(&file)
            .is_some_and(|d| d.blocks.contains(&block))
    }

    /// Marks a block as cached, with the mtime it was read under.
    /// Evicts arbitrary blocks if over capacity.
    pub fn insert_block(&mut self, file: u64, block: u64, mtime: u64) {
        let entry = self.data.entry(file).or_default();
        if entry.mtime != mtime {
            // Blocks from an older version are stale.
            self.cached_blocks -= entry.blocks.len();
            entry.blocks.clear();
            entry.mtime = mtime;
        }
        if entry.blocks.insert(block) {
            self.cached_blocks += 1;
        }
        if self.cached_blocks > self.config.capacity_blocks {
            self.evict_one_file(file);
        }
    }

    /// Records the outcome of our *own* write: the expected mtime moves
    /// forward without invalidating cached blocks (the client knows its
    /// own modifications — close-to-open consistency).
    pub fn note_own_write(&mut self, file: u64, size: u64, mtime: u64, now: u64) {
        if let Some(d) = self.data.get_mut(&file) {
            d.mtime = mtime;
        }
        self.attrs.insert(
            file,
            CachedAttrs {
                size,
                mtime,
                fetched_at: now,
            },
        );
    }

    /// Drops a whole file from the cache (e.g. on remove).
    pub fn forget(&mut self, file: u64) {
        if let Some(d) = self.data.remove(&file) {
            self.cached_blocks -= d.blocks.len();
        }
        self.attrs.remove(&file);
    }

    /// Total cached blocks across all files.
    pub fn cached_blocks(&self) -> usize {
        self.cached_blocks
    }

    fn evict_one_file(&mut self, keep: u64) {
        // Evict the largest cached file other than `keep`; a crude but
        // deterministic stand-in for LRU.
        if let Some((&victim, _)) = self
            .data
            .iter()
            .filter(|(&f, d)| f != keep && !d.blocks.is_empty())
            .max_by_key(|(_, d)| d.blocks.len())
        {
            if let Some(d) = self.data.remove(&victim) {
                self.cached_blocks -= d.blocks.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> ClientCache {
        ClientCache::new(CacheConfig {
            attr_timeout_micros: 3_000_000,
            capacity_blocks: 100,
        })
    }

    #[test]
    fn attr_freshness_times_out() {
        let mut c = cache();
        c.update_attrs(1, 100, 10, 1_000_000);
        assert!(c.attrs_fresh(1, 2_000_000));
        assert!(!c.attrs_fresh(1, 4_100_000));
        assert!(!c.attrs_fresh(2, 0));
    }

    #[test]
    fn mtime_change_invalidates_whole_file() {
        let mut c = cache();
        c.update_attrs(1, 100, 10, 0);
        for b in 0..50 {
            c.insert_block(1, b, 10);
        }
        assert_eq!(c.cached_blocks(), 50);
        // Same mtime: clean validation, data survives.
        assert!(!c.update_attrs(1, 100, 10, 1));
        assert_eq!(c.cached_blocks(), 50);
        assert_eq!(c.validations_clean, 1);
        // New mtime: the whole file is flushed.
        assert!(c.update_attrs(1, 120, 20, 2));
        assert_eq!(c.cached_blocks(), 0);
        assert_eq!(c.invalidations, 1);
        assert_eq!(c.invalidated_blocks, 50);
    }

    #[test]
    fn stale_blocks_cleared_on_new_mtime_insert() {
        let mut c = cache();
        c.insert_block(1, 0, 10);
        c.insert_block(1, 1, 10);
        c.insert_block(1, 2, 99); // newer version: old blocks dropped
        assert!(c.block_cached(1, 2));
        assert!(!c.block_cached(1, 0));
        assert_eq!(c.cached_blocks(), 1);
    }

    #[test]
    fn capacity_eviction_prefers_other_files() {
        let mut c = cache();
        for b in 0..80 {
            c.insert_block(1, b, 1);
        }
        for b in 0..30 {
            c.insert_block(2, b, 1);
        }
        // Over 100 blocks: file 1 (the largest other file) was evicted.
        assert!(c.cached_blocks() <= 100);
        assert!(c.block_cached(2, 0));
        assert!(!c.block_cached(1, 0));
    }

    #[test]
    fn forget_removes_everything() {
        let mut c = cache();
        c.update_attrs(1, 10, 1, 0);
        c.insert_block(1, 0, 1);
        c.forget(1);
        assert_eq!(c.cached_blocks(), 0);
        assert!(c.attrs(1).is_none());
    }
}
