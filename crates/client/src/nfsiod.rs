//! The nfsiod pool: where call reordering comes from.
//!
//! "This reordering is largely an artifact of the conventional NFS
//! architecture, in which separate processes, called nfsiods, issue the
//! actual network calls. Although a client's calls are dispatched to the
//! nfsiods in order, the process scheduler determines the order in which
//! the nfsiods run. ... When the client ran only one nfsiod, no call
//! reorderings occurred, but as additional nfsiods were added, call
//! reordering became more frequent. In the most extreme case as many as
//! 10% of the packets were reordered, and some calls were delayed by as
//! much as 1 second" (§4.1.5).
//!
//! The model: each async call is handed to the next free nfsiod; the
//! daemon sleeps a scheduler-jitter delay drawn from a heavy-tailed
//! distribution before the call reaches the wire. A single daemon
//! serializes (no reordering); several race.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the jitter distribution.
///
/// A daemon's wake-up delay is uniform scheduler noise, plus — rarely —
/// a long preemption when the scheduler runs something else entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterParams {
    /// Upper bound of the uniform scheduling noise, microseconds.
    pub base_spread_micros: f64,
    /// Probability of a long preemption.
    pub long_delay_prob: f64,
    /// Mean of the (exponential) long-preemption delay, microseconds.
    pub long_delay_mean_micros: f64,
}

impl Default for JitterParams {
    fn default() -> Self {
        JitterParams {
            base_spread_micros: 60.0,
            long_delay_prob: 0.005,
            long_delay_mean_micros: 2_000.0,
        }
    }
}

/// A pool of nfsiod daemons adding scheduling jitter to async calls.
#[derive(Debug)]
pub struct NfsiodPool {
    /// Wall-clock time each daemon becomes free.
    free_at: Vec<u64>,
    jitter: JitterParams,
    rng: StdRng,
    last_wire_micros: u64,
    issued: u64,
    reordered: u64,
    max_delay: u64,
}

impl NfsiodPool {
    /// Creates a pool of `n` daemons (at least 1) with deterministic
    /// randomness from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_jitter(n, seed, JitterParams::default())
    }

    /// Creates a pool with explicit jitter parameters.
    pub fn with_jitter(n: usize, seed: u64, jitter: JitterParams) -> Self {
        NfsiodPool {
            free_at: vec![0; n.max(1)],
            jitter,
            rng: StdRng::seed_from_u64(seed),
            last_wire_micros: 0,
            issued: 0,
            reordered: 0,
            max_delay: 0,
        }
    }

    /// Number of daemons.
    pub fn daemons(&self) -> usize {
        self.free_at.len()
    }

    /// When the next daemon becomes free — the earliest useful dispatch
    /// time for a closed-loop caller that blocks while all nfsiods are
    /// busy (as real applications do once the async queue fills).
    pub fn earliest_free(&self) -> u64 {
        self.free_at.iter().copied().min().unwrap_or(0)
    }

    /// Dispatches a call issued at `issue_micros`; returns the time it
    /// reaches the wire. The daemon is busy only until the call hits the
    /// wire.
    ///
    /// The call goes to the earliest-free daemon, which wakes after a
    /// scheduler jitter, so a small pool under load serializes
    /// (suppressing reordering) while a large pool races freely.
    pub fn dispatch(&mut self, issue_micros: u64) -> u64 {
        self.dispatch_held(issue_micros, 0)
    }

    /// Like [`NfsiodPool::dispatch`], but the daemon stays busy for
    /// `hold_micros` after the call reaches the wire — modeling a real
    /// nfsiod, which blocks on the RPC until the reply returns.
    pub fn dispatch_held(&mut self, issue_micros: u64, hold_micros: u64) -> u64 {
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("pool non-empty");
        let start = issue_micros.max(free);
        let jitter = self.sample_jitter();
        let wire = start + jitter;
        self.free_at[idx] = wire + hold_micros;
        self.issued += 1;
        // A call is reordered when it hits the wire before the
        // previously dispatched call (adjacent inversion, the same pair
        // swap the reorder-window analysis undoes).
        if wire < self.last_wire_micros {
            self.reordered += 1;
        }
        self.last_wire_micros = wire;
        self.max_delay = self.max_delay.max(wire - issue_micros);
        wire
    }

    fn sample_jitter(&mut self) -> u64 {
        // With one daemon the pipeline is serial: dispatch order is wire
        // order regardless of delay, matching the paper's observation.
        let mut total: f64 = self.rng.gen::<f64>() * self.jitter.base_spread_micros;
        if self.rng.gen::<f64>() < self.jitter.long_delay_prob {
            total += -self.jitter.long_delay_mean_micros * (1.0 - self.rng.gen::<f64>()).ln();
        }
        total as u64
    }

    /// Reordering statistics so far.
    pub fn stats(&self) -> ReorderStats {
        ReorderStats {
            issued: self.issued,
            reordered: self.reordered,
            max_delay_micros: self.max_delay,
        }
    }
}

/// Counters describing observed reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorderStats {
    /// Calls dispatched.
    pub issued: u64,
    /// Calls that hit the wire before an earlier-dispatched call.
    pub reordered: u64,
    /// Largest dispatch-to-wire delay seen, microseconds.
    pub max_delay_micros: u64,
}

impl ReorderStats {
    /// Fraction of calls reordered.
    pub fn reorder_fraction(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.reordered as f64 / self.issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a closed-loop stream paced by the pool itself: the next
    /// call is issued as soon as a daemon can take it (gap-throttled),
    /// each call holding its daemon for `hold` microseconds.
    fn run_paced(daemons: usize, calls: u64, gap: u64, hold: u64, seed: u64) -> ReorderStats {
        let mut pool = NfsiodPool::new(daemons, seed);
        let mut now = 0u64;
        for _ in 0..calls {
            now = (now + gap).max(pool.earliest_free());
            pool.dispatch_held(now, hold);
        }
        pool.stats()
    }

    /// A saturated burst: every call enqueued at once.
    fn run_burst(daemons: usize, calls: u64, seed: u64) -> ReorderStats {
        let mut pool = NfsiodPool::new(daemons, seed);
        for _ in 0..calls {
            pool.dispatch_held(0, 400);
        }
        pool.stats()
    }

    #[test]
    fn single_nfsiod_never_reorders() {
        // The paper's control: one nfsiod, zero reorderings, regardless
        // of load.
        for seed in 0..5 {
            assert_eq!(
                run_paced(1, 10_000, 40, 400, seed).reordered,
                0,
                "seed {seed}"
            );
            assert_eq!(run_burst(1, 10_000, seed).reordered, 0, "seed {seed}");
        }
    }

    #[test]
    fn more_nfsiods_reorder_more() {
        let two = run_paced(2, 50_000, 40, 400, 42).reorder_fraction();
        let four = run_paced(4, 50_000, 40, 400, 42).reorder_fraction();
        let eight = run_paced(8, 50_000, 40, 400, 42).reorder_fraction();
        assert!(two > 0.0);
        assert!(four > two, "four={four} two={two}");
        assert!(eight > four, "eight={eight} four={four}");
        assert!(eight < 0.2, "eight={eight}");
    }

    #[test]
    fn reordering_reaches_paper_magnitude() {
        // The paper's extreme case: "as many as 10% of the packets were
        // reordered" — a saturated client with a full complement of
        // nfsiods.
        let f = run_burst(8, 50_000, 7).reorder_fraction();
        assert!(f > 0.05, "fraction = {f}");
        assert!(f < 0.35, "fraction = {f}");
    }

    #[test]
    fn long_preemptions_cause_large_delays() {
        let stats = run_paced(4, 100_000, 40, 400, 11);
        // The preemption tail produces delays orders of magnitude above
        // the base jitter (the paper's loaded extreme reached a second).
        assert!(
            stats.max_delay_micros > 8_000,
            "max delay = {}",
            stats.max_delay_micros
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = run_paced(4, 1000, 40, 400, 3);
        let b = run_paced(4, 1000, 40, 400, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_daemon_request_clamped_to_one() {
        let mut pool = NfsiodPool::new(0, 1);
        assert_eq!(pool.daemons(), 1);
        pool.dispatch(0);
        assert_eq!(pool.stats().issued, 1);
    }
}
