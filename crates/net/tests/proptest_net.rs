//! Property tests for the network substrate.
//!
//! The central invariant: TCP reassembly recovers exactly the original
//! byte stream under arbitrary segmentation, arbitrary delivery order,
//! and duplication — the conditions a mirror port actually produces.

use nfstrace_net::ethernet::MacAddr;
use nfstrace_net::ipv4::Ipv4Addr4;
use nfstrace_net::packet::{DecodedPacket, PacketBuilder, Transport};
use nfstrace_net::pcap::{CapturedPacket, PcapHeader, PcapReader, PcapWriter};
use nfstrace_net::reassembly::StreamReassembler;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

proptest! {
    #[test]
    fn reassembly_recovers_stream(
        stream in proptest::collection::vec(any::<u8>(), 1..4096),
        cuts in proptest::collection::vec(any::<u16>(), 0..32),
        seed in any::<u64>(),
        initial_seq in any::<u32>(),
        dup_first in any::<bool>(),
    ) {
        // Cut the stream into segments at arbitrary points.
        let mut points: Vec<usize> = cuts
            .iter()
            .map(|&c| usize::from(c) % stream.len())
            .collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut segments: Vec<(usize, &[u8])> = points
            .windows(2)
            .map(|w| (w[0], &stream[w[0]..w[1]]))
            .collect();

        // Shuffle delivery order deterministically; optionally duplicate
        // the first segment to exercise the dedup path.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        segments.shuffle(&mut rng);
        if dup_first && !segments.is_empty() {
            segments.push(segments[0]);
        }

        let mut r = StreamReassembler::new(initial_seq);
        let mut out = Vec::new();
        for (off, seg) in segments {
            r.push(initial_seq.wrapping_add(off as u32), seg);
            out.extend_from_slice(r.read_available());
        }
        out.extend_from_slice(r.read_available());
        prop_assert_eq!(out, stream);
        prop_assert!(!r.has_gap());
    }

    #[test]
    fn udp_frame_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        sport in any::<u16>(),
        dport in any::<u16>(),
        sip in any::<u32>(),
        dip in any::<u32>(),
    ) {
        let frame = PacketBuilder::udp(
            MacAddr::new([1, 2, 3, 4, 5, 6]),
            MacAddr::new([6, 5, 4, 3, 2, 1]),
            Ipv4Addr4::from_u32(sip),
            Ipv4Addr4::from_u32(dip),
            sport,
            dport,
            payload.clone(),
        );
        let d = DecodedPacket::parse(&frame).unwrap();
        prop_assert_eq!(d.transport, Transport::Udp);
        prop_assert_eq!(d.src_ip.as_u32(), sip);
        prop_assert_eq!(d.dst_ip.as_u32(), dip);
        prop_assert_eq!(d.src_port, sport);
        prop_assert_eq!(d.dst_port, dport);
        prop_assert_eq!(d.payload, payload);
    }

    #[test]
    fn pcap_roundtrip(
        pkts in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..256)),
            0..20,
        )
    ) {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, PcapHeader::default()).unwrap();
            for (ts, data) in &pkts {
                w.write_packet(&CapturedPacket::new(u64::from(*ts), data.clone())).unwrap();
            }
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        let read: Vec<_> = r.packets().collect::<Result<Vec<_>, _>>().unwrap();
        prop_assert_eq!(read.len(), pkts.len());
        for (got, (ts, data)) in read.iter().zip(&pkts) {
            prop_assert_eq!(got.timestamp_micros, u64::from(*ts));
            prop_assert_eq!(&got.data, data);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DecodedPacket::parse(&data);
    }
}
