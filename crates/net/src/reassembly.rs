//! TCP byte-stream reassembly.
//!
//! The paper's tracer had to handle "some forms of TCP packet coalescing"
//! (§2): RPC messages on CAMPUS arrived packed into a TCP stream, split
//! and merged arbitrarily by the sender, and the mirror port could deliver
//! segments out of order or drop them outright. [`StreamReassembler`]
//! reconstructs the in-order byte stream from segments identified by
//! sequence number, tolerating duplication, overlap, and reordering, and
//! reports gaps (from drops) so the RPC layer can resynchronize.

use std::collections::BTreeMap;

/// Reassembles one direction of one TCP connection.
///
/// Segments are fed in with their 32-bit sequence numbers; in-order bytes
/// are drained with [`StreamReassembler::read_available`]. If a gap
/// persists (a dropped segment), [`StreamReassembler::skip_gap`] jumps
/// over it and counts the lost bytes.
///
/// # Examples
///
/// ```
/// use nfstrace_net::reassembly::StreamReassembler;
///
/// let mut r = StreamReassembler::new(1000);
/// r.push(1004, b"world");   // arrives first, out of order
/// r.push(1000, b"hell");
/// assert_eq!(r.read_available(), b"hellworld");
/// ```
#[derive(Debug)]
pub struct StreamReassembler {
    /// Reused drain buffer behind [`StreamReassembler::read_available`]:
    /// the sniffer calls that once per packet, and a fresh `Vec` each
    /// time dominated the hot loop's allocations. In-order segments are
    /// appended here directly by [`StreamReassembler::push`], skipping
    /// the pending map entirely.
    ready: Vec<u8>,
    /// Whether `ready` has been handed out by `read_available` and must
    /// be cleared before the next bytes are staged.
    consumed: bool,
    /// Next expected sequence number (start of the contiguous frontier).
    next_seq: u32,
    /// Out-of-order segments keyed by relative offset from `next_seq`'s
    /// original position. Using u64 relative offsets sidesteps sequence
    /// wraparound for streams under 2^32 bytes either side of the origin.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Origin sequence number, fixed at creation.
    origin: u32,
    /// Relative offset of `next_seq` from the origin.
    frontier: u64,
    /// Total payload bytes accepted.
    bytes_in: u64,
    /// Bytes skipped over unrecoverable gaps.
    bytes_lost: u64,
    /// Count of segments that arrived out of order.
    out_of_order: u64,
    /// Count of duplicate/overlapping bytes discarded.
    dup_bytes: u64,
}

impl StreamReassembler {
    /// Creates a reassembler whose first expected byte is `initial_seq`.
    pub fn new(initial_seq: u32) -> Self {
        Self {
            ready: Vec::new(),
            consumed: false,
            next_seq: initial_seq,
            pending: BTreeMap::new(),
            origin: initial_seq,
            frontier: 0,
            bytes_in: 0,
            bytes_lost: 0,
            out_of_order: 0,
            dup_bytes: 0,
        }
    }

    /// Relative stream offset of a sequence number (wrap-aware).
    fn rel(&self, seq: u32) -> u64 {
        u64::from(seq.wrapping_sub(self.origin))
    }

    /// Drops bytes already handed out before staging new ones.
    fn reset_ready(&mut self) {
        if self.consumed {
            self.ready.clear();
            self.consumed = false;
        }
    }

    /// Feeds one segment's payload at `seq`.
    ///
    /// Duplicate and already-delivered bytes are discarded; overlapping
    /// prefixes are trimmed.
    pub fn push(&mut self, seq: u32, payload: &[u8]) {
        if payload.is_empty() {
            return;
        }
        self.bytes_in += payload.len() as u64;
        let mut off = self.rel(seq);
        let mut data = payload;

        // Trim any prefix already delivered.
        if off < self.frontier {
            let overlap = (self.frontier - off).min(data.len() as u64) as usize;
            self.dup_bytes += overlap as u64;
            data = &data[overlap..];
            off = self.frontier;
            if data.is_empty() {
                return;
            }
        }
        if off > self.frontier {
            self.out_of_order += 1;
        }
        // Fast path for the common in-order stream: the segment lands
        // exactly at the frontier with nothing parked, so its bytes go
        // straight to the drain buffer without touching the heap.
        if off == self.frontier && self.pending.is_empty() {
            self.reset_ready();
            self.ready.extend_from_slice(data);
            self.frontier += data.len() as u64;
            self.next_seq = self.origin.wrapping_add(self.frontier as u32);
            return;
        }
        // Insert, trimming against an existing segment at the same offset.
        match self.pending.get(&off) {
            Some(existing) if existing.len() >= data.len() => {
                self.dup_bytes += data.len() as u64;
            }
            _ => {
                self.pending.insert(off, data.to_vec());
            }
        }
    }

    /// Drains all bytes that are now contiguous at the frontier.
    ///
    /// The returned slice borrows an internal buffer that is reused by
    /// the next call — copy it out if it must outlive the reassembler's
    /// next mutation.
    pub fn read_available(&mut self) -> &[u8] {
        self.reset_ready();
        while let Some((&off, _)) = self.pending.range(..=self.frontier).next_back() {
            let seg = self.pending.remove(&off).expect("key just observed");
            let seg_end = off + seg.len() as u64;
            if seg_end <= self.frontier {
                // Entirely stale.
                self.dup_bytes += seg.len() as u64;
                continue;
            }
            let skip = (self.frontier - off) as usize;
            self.dup_bytes += skip as u64;
            self.ready.extend_from_slice(&seg[skip..]);
            self.frontier = seg_end;
            self.next_seq = self.origin.wrapping_add(self.frontier as u32);
        }
        self.consumed = true;
        &self.ready
    }

    /// Whether out-of-order data is waiting beyond a gap.
    pub fn has_gap(&self) -> bool {
        self.pending
            .keys()
            .next()
            .is_some_and(|&off| off > self.frontier)
    }

    /// Total bytes parked out-of-order beyond the frontier, waiting for
    /// a gap to fill. A large value means the gap is real (packet loss),
    /// not mere reordering.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.values().map(|v| v.len() as u64).sum()
    }

    /// Size in bytes of the gap in front of the oldest pending segment,
    /// or 0 when there is no gap.
    pub fn gap_len(&self) -> u64 {
        match self.pending.keys().next() {
            Some(&off) if off > self.frontier => off - self.frontier,
            _ => 0,
        }
    }

    /// Abandons the current gap: advances the frontier to the oldest
    /// pending segment, recording the skipped bytes as lost. Returns the
    /// number of bytes skipped.
    ///
    /// The sniffer calls this when a gap has aged out, then
    /// resynchronizes on RPC record marks.
    pub fn skip_gap(&mut self) -> u64 {
        let skipped = self.gap_len();
        if skipped > 0 {
            self.frontier += skipped;
            self.next_seq = self.origin.wrapping_add(self.frontier as u32);
            self.bytes_lost += skipped;
        }
        skipped
    }

    /// Next expected sequence number.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Statistics counters: (bytes in, bytes lost, out-of-order segments,
    /// duplicate bytes).
    pub fn stats(&self) -> ReassemblyStats {
        ReassemblyStats {
            bytes_in: self.bytes_in,
            bytes_lost: self.bytes_lost,
            out_of_order_segments: self.out_of_order,
            duplicate_bytes: self.dup_bytes,
        }
    }
}

/// Counters describing one reassembled stream direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReassemblyStats {
    /// Total payload bytes pushed in.
    pub bytes_in: u64,
    /// Bytes skipped over gaps.
    pub bytes_lost: u64,
    /// Segments that arrived ahead of the frontier.
    pub out_of_order_segments: u64,
    /// Bytes discarded as duplicates or overlaps.
    pub duplicate_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"abc");
        r.push(3, b"def");
        assert_eq!(r.read_available(), b"abcdef");
        assert!(!r.has_gap());
    }

    #[test]
    fn out_of_order_two_segments() {
        let mut r = StreamReassembler::new(100);
        r.push(103, b"def");
        assert!(r.has_gap());
        assert_eq!(r.gap_len(), 3);
        assert!(r.read_available().is_empty());
        r.push(100, b"abc");
        assert_eq!(r.read_available(), b"abcdef");
        assert_eq!(r.stats().out_of_order_segments, 1);
    }

    #[test]
    fn duplicate_segment_discarded() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"abcd");
        assert_eq!(r.read_available(), b"abcd");
        r.push(0, b"abcd");
        assert!(r.read_available().is_empty());
        assert_eq!(r.stats().duplicate_bytes, 4);
    }

    #[test]
    fn overlapping_retransmit_trimmed() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"abcd");
        assert_eq!(r.read_available(), b"abcd");
        // Retransmit covering old+new bytes.
        r.push(2, b"cdEF");
        assert_eq!(r.read_available(), b"EF");
    }

    #[test]
    fn gap_skip_counts_lost_bytes() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"ab");
        r.push(10, b"xy");
        assert_eq!(r.read_available(), b"ab");
        assert_eq!(r.gap_len(), 8);
        assert_eq!(r.skip_gap(), 8);
        assert_eq!(r.read_available(), b"xy");
        assert_eq!(r.stats().bytes_lost, 8);
    }

    #[test]
    fn sequence_wraparound() {
        let start = u32::MAX - 1;
        let mut r = StreamReassembler::new(start);
        r.push(start, b"ab"); // bytes at 0xFFFFFFFE, 0xFFFFFFFF
        r.push(0, b"cd"); // wraps
        assert_eq!(r.read_available(), b"abcd");
        assert_eq!(r.next_seq(), 2);
    }

    /// Many segments delivered out of order across the `u32::MAX`
    /// boundary: the relative-offset bookkeeping must see one contiguous
    /// stream, not a gap at the wrap point.
    #[test]
    fn wraparound_with_out_of_order_segments() {
        let data: Vec<u8> = (0..200u32).flat_map(|i| i.to_be_bytes()).collect();
        let start = u32::MAX - 350; // the wrap lands mid-stream
        let mut r = StreamReassembler::new(start);
        let chunks: Vec<(u32, &[u8])> = data
            .chunks(16)
            .enumerate()
            .map(|(i, c)| (start.wrapping_add((i * 16) as u32), c))
            .collect();
        // Everything after the first chunk arrives before it.
        for &(seq, chunk) in chunks.iter().skip(1).rev() {
            r.push(seq, chunk);
        }
        assert!(r.has_gap());
        r.push(chunks[0].0, chunks[0].1);
        assert_eq!(r.read_available(), data);
        assert!(!r.has_gap());
        assert_eq!(r.next_seq(), start.wrapping_add(data.len() as u32));
        assert_eq!(r.stats().bytes_lost, 0);
    }

    #[test]
    fn empty_push_is_noop() {
        let mut r = StreamReassembler::new(5);
        r.push(5, b"");
        assert!(r.read_available().is_empty());
        assert_eq!(r.stats().bytes_in, 0);
    }

    /// The in-order fast path stages bytes without a heap copy but must
    /// keep `read_available`'s semantics: each call returns exactly the
    /// bytes made contiguous since the previous call.
    #[test]
    fn fast_path_interleaves_with_pending_drain() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"ab"); // fast path
        r.push(2, b"cd"); // fast path
        assert_eq!(r.read_available(), b"abcd");
        assert!(r.read_available().is_empty());
        r.push(6, b"gh"); // out of order: parked
        r.push(4, b"ef"); // fills the gap; pending non-empty so slow path
        assert_eq!(r.read_available(), b"efgh");
        r.push(8, b"ij"); // fast path again after the drain
        assert_eq!(r.read_available(), b"ij");
        assert_eq!(r.stats().bytes_lost, 0);
        assert_eq!(r.stats().out_of_order_segments, 1);
    }

    #[test]
    fn fast_path_after_skip_gap() {
        let mut r = StreamReassembler::new(0);
        r.push(0, b"ab");
        assert_eq!(r.read_available(), b"ab");
        r.push(10, b"xy");
        assert!(r.read_available().is_empty());
        assert_eq!(r.skip_gap(), 8);
        assert_eq!(r.read_available(), b"xy");
        r.push(12, b"zz");
        assert_eq!(r.read_available(), b"zz");
    }

    #[test]
    fn interleaved_many_segments() {
        let data: Vec<u8> = (0..=255).collect();
        let mut r = StreamReassembler::new(0);
        // Push in a scrambled but deterministic order of 16-byte chunks.
        let order = [3usize, 0, 7, 1, 15, 2, 9, 4, 5, 12, 6, 8, 10, 11, 13, 14];
        for &i in &order {
            r.push((i * 16) as u32, &data[i * 16..(i + 1) * 16]);
        }
        assert_eq!(r.read_available(), data);
    }
}
