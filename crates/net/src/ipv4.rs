//! IPv4 header encoding, parsing, and checksumming.
//!
//! Only the fields the tracer needs are modeled richly (addresses,
//! protocol, total length); options are preserved but uninterpreted, and
//! fragmentation is not modeled because NFS-over-UDP on both traced
//! systems ran below the interface MTU (CAMPUS used jumbo frames for
//! exactly this reason).

use crate::{Error, Result};
use std::fmt;

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// A 32-bit IPv4 address.
///
/// Named `Ipv4Addr4` to avoid colliding with `std::net::Ipv4Addr`, which
/// we deliberately do not use: trace anonymization treats addresses as
/// opaque 32-bit tokens.
///
/// # Examples
///
/// ```
/// use nfstrace_net::ipv4::Ipv4Addr4;
/// let a = Ipv4Addr4::new(10, 1, 2, 3);
/// assert_eq!(a.to_string(), "10.1.2.3");
/// assert_eq!(Ipv4Addr4::from_u32(a.as_u32()), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr4(pub u32);

impl Ipv4Addr4 {
    /// Builds an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self(u32::from_be_bytes([a, b, c, d]))
    }

    /// Builds an address from its 32-bit big-endian value.
    pub const fn from_u32(v: u32) -> Self {
        Self(v)
    }

    /// The 32-bit big-endian value.
    pub const fn as_u32(&self) -> u32 {
        self.0
    }

    /// The four dotted-quad octets.
    pub const fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Addr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A parsed IPv4 packet borrowing its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<'a> {
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
    /// IP protocol number ([`PROTO_TCP`] or [`PROTO_UDP`] for NFS traffic).
    pub protocol: u8,
    /// Time-to-live as seen on the wire.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
    /// Transport payload.
    pub payload: &'a [u8],
}

impl<'a> Ipv4Packet<'a> {
    /// Parses an IPv4 packet, verifying version, header length, and that
    /// the total-length field fits the buffer.
    ///
    /// # Errors
    ///
    /// [`Error::Truncated`] for short input; [`Error::Unsupported`] for a
    /// non-4 version field or a bad header-length field.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated {
                what: "ipv4 header",
                needed: MIN_HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(Error::Unsupported {
                what: "ip version",
                value: u32::from(version),
            });
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < MIN_HEADER_LEN || data.len() < ihl {
            return Err(Error::Unsupported {
                what: "ipv4 header length",
                value: ihl as u32,
            });
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < ihl || data.len() < total_len {
            return Err(Error::Truncated {
                what: "ipv4 packet body",
                needed: total_len,
                got: data.len(),
            });
        }
        Ok(Ipv4Packet {
            src: Ipv4Addr4::from_u32(u32::from_be_bytes([data[12], data[13], data[14], data[15]])),
            dst: Ipv4Addr4::from_u32(u32::from_be_bytes([data[16], data[17], data[18], data[19]])),
            protocol: data[9],
            ttl: data[8],
            ident: u16::from_be_bytes([data[4], data[5]]),
            payload: &data[ihl..total_len],
        })
    }

    /// Serializes a minimal (option-free) IPv4 packet around `payload`.
    ///
    /// The header checksum is computed; `ident` increments help exercise
    /// parsers but carry no semantics here.
    pub fn encode(
        src: Ipv4Addr4,
        dst: Ipv4Addr4,
        protocol: u8,
        ident: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let total_len = (MIN_HEADER_LEN + payload.len()) as u16;
        let mut hdr = [0u8; MIN_HEADER_LEN];
        hdr[0] = 0x45; // version 4, ihl 5
        hdr[1] = 0; // dscp/ecn
        hdr[2..4].copy_from_slice(&total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&ident.to_be_bytes());
        hdr[6] = 0x40; // don't fragment
        hdr[8] = 64; // ttl
        hdr[9] = protocol;
        hdr[12..16].copy_from_slice(&src.octets());
        hdr[16..20].copy_from_slice(&dst.octets());
        let csum = header_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());

        let mut out = Vec::with_capacity(MIN_HEADER_LEN + payload.len());
        out.extend_from_slice(&hdr);
        out.extend_from_slice(payload);
        out
    }

    /// Verifies the header checksum of a raw IPv4 header slice.
    pub fn verify_checksum(header: &[u8]) -> bool {
        internet_checksum(header) == 0
    }
}

/// Computes the checksum field value for a header whose checksum bytes
/// are currently zero.
pub fn header_checksum(header: &[u8]) -> u16 {
    internet_checksum(header)
}

/// The one's-complement Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = Ipv4Addr4::new(192, 168, 1, 10);
        let dst = Ipv4Addr4::new(10, 0, 0, 2);
        let bytes = Ipv4Packet::encode(src, dst, PROTO_UDP, 42, b"data");
        let p = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(p.src, src);
        assert_eq!(p.dst, dst);
        assert_eq!(p.protocol, PROTO_UDP);
        assert_eq!(p.ident, 42);
        assert_eq!(p.payload, b"data");
    }

    #[test]
    fn checksum_verifies() {
        let bytes = Ipv4Packet::encode(
            Ipv4Addr4::new(1, 2, 3, 4),
            Ipv4Addr4::new(5, 6, 7, 8),
            PROTO_TCP,
            7,
            b"xyz",
        );
        assert!(Ipv4Packet::verify_checksum(&bytes[..MIN_HEADER_LEN]));
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut bytes = Ipv4Packet::encode(
            Ipv4Addr4::new(1, 2, 3, 4),
            Ipv4Addr4::new(5, 6, 7, 8),
            PROTO_TCP,
            7,
            b"xyz",
        );
        bytes[12] ^= 0xff;
        assert!(!Ipv4Packet::verify_checksum(&bytes[..MIN_HEADER_LEN]));
    }

    #[test]
    fn rejects_version_6() {
        let mut bytes = Ipv4Packet::encode(
            Ipv4Addr4::default(),
            Ipv4Addr4::default(),
            PROTO_UDP,
            0,
            b"",
        );
        bytes[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::parse(&bytes),
            Err(Error::Unsupported { .. })
        ));
    }

    #[test]
    fn rejects_total_length_beyond_buffer() {
        let mut bytes = Ipv4Packet::encode(
            Ipv4Addr4::default(),
            Ipv4Addr4::default(),
            PROTO_UDP,
            0,
            b"abcd",
        );
        bytes[2..4].copy_from_slice(&1000u16.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::parse(&bytes),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn payload_respects_total_length_with_trailer() {
        // Ethernet padding after the IP datagram must be excluded.
        let mut bytes = Ipv4Packet::encode(
            Ipv4Addr4::new(1, 1, 1, 1),
            Ipv4Addr4::new(2, 2, 2, 2),
            PROTO_UDP,
            0,
            b"abc",
        );
        bytes.extend_from_slice(&[0u8; 7]); // trailer padding
        let p = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(p.payload, b"abc");
    }

    #[test]
    fn internet_checksum_odd_length() {
        // Known value check: checksum of a single byte 0x01 is !0x0100.
        assert_eq!(internet_checksum(&[0x01]), !0x0100);
    }
}
