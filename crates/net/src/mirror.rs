//! Mirror-port capture model.
//!
//! On CAMPUS the monitor was "a single gigabit Ethernet port on a
//! fully-switched gigabit network", so during bursts "the monitor port
//! simply did not have the bandwidth to forward all of the network
//! traffic" and up to 10% of packets were lost (paper §4.1.4). On EECS the
//! monitor port matched the server port speed and nothing was lost.
//!
//! [`MirrorPort`] models this as a leaky-bucket queue: packets arrive with
//! timestamps and sizes, drain at the port's line rate into a bounded
//! buffer, and overflow packets are dropped. Feeding the same traffic
//! through a port provisioned at aggregate speed reproduces the EECS
//! (lossless) condition; an oversubscribed port reproduces CAMPUS bursts.

/// Configuration of a mirror port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorConfig {
    /// Drain rate of the monitor port, in bytes per second.
    pub rate_bytes_per_sec: f64,
    /// Buffer capacity in bytes before packets are dropped.
    pub buffer_bytes: u64,
}

impl MirrorConfig {
    /// A gigabit port with a 256 KiB buffer, as on the CAMPUS monitor.
    pub fn gigabit() -> Self {
        Self {
            rate_bytes_per_sec: 125_000_000.0,
            buffer_bytes: 256 * 1024,
        }
    }

    /// An effectively infinite port: nothing is ever dropped (EECS).
    pub fn lossless() -> Self {
        Self {
            rate_bytes_per_sec: f64::INFINITY,
            buffer_bytes: u64::MAX,
        }
    }
}

/// Whether the port forwarded or dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorVerdict {
    /// The packet fit in the buffer and reaches the tracer.
    Forwarded,
    /// The buffer was full; the tracer never sees this packet.
    Dropped,
}

/// A leaky-bucket model of a switch mirror port.
///
/// # Examples
///
/// ```
/// use nfstrace_net::mirror::{MirrorConfig, MirrorPort, MirrorVerdict};
///
/// let mut port = MirrorPort::new(MirrorConfig::lossless());
/// assert_eq!(port.offer(0, 1500), MirrorVerdict::Forwarded);
/// assert_eq!(port.stats().dropped, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MirrorPort {
    config: MirrorConfig,
    /// Bytes currently queued in the buffer.
    queued_bytes: f64,
    /// Timestamp (µs) of the last offer, for drain accounting.
    last_micros: u64,
    offered: u64,
    dropped: u64,
    offered_bytes: u64,
    dropped_bytes: u64,
}

impl MirrorPort {
    /// Creates a port with the given configuration.
    pub fn new(config: MirrorConfig) -> Self {
        Self {
            config,
            queued_bytes: 0.0,
            last_micros: 0,
            offered: 0,
            dropped: 0,
            offered_bytes: 0,
            dropped_bytes: 0,
        }
    }

    /// Offers a packet of `size` bytes at `timestamp_micros`.
    ///
    /// Timestamps must be non-decreasing; earlier timestamps are treated
    /// as equal to the latest seen.
    pub fn offer(&mut self, timestamp_micros: u64, size: usize) -> MirrorVerdict {
        // Drain the buffer for the time elapsed since the last packet.
        let now = timestamp_micros.max(self.last_micros);
        if self.config.rate_bytes_per_sec.is_finite() {
            let elapsed_s = (now - self.last_micros) as f64 / 1e6;
            self.queued_bytes =
                (self.queued_bytes - elapsed_s * self.config.rate_bytes_per_sec).max(0.0);
        } else {
            self.queued_bytes = 0.0;
        }
        self.last_micros = now;

        self.offered += 1;
        self.offered_bytes += size as u64;
        if self.queued_bytes + size as f64 > self.config.buffer_bytes as f64 {
            self.dropped += 1;
            self.dropped_bytes += size as u64;
            MirrorVerdict::Dropped
        } else {
            self.queued_bytes += size as f64;
            MirrorVerdict::Forwarded
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> MirrorStats {
        MirrorStats {
            offered: self.offered,
            dropped: self.dropped,
            offered_bytes: self.offered_bytes,
            dropped_bytes: self.dropped_bytes,
        }
    }
}

/// Counters for a mirror port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MirrorStats {
    /// Packets offered to the port.
    pub offered: u64,
    /// Packets dropped for lack of buffer space.
    pub dropped: u64,
    /// Bytes offered.
    pub offered_bytes: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
}

impl MirrorStats {
    /// Fraction of offered packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_port_never_drops() {
        let mut p = MirrorPort::new(MirrorConfig::lossless());
        for t in 0..10_000u64 {
            assert_eq!(p.offer(t, 9000), MirrorVerdict::Forwarded);
        }
        assert_eq!(p.stats().dropped, 0);
    }

    #[test]
    fn oversubscribed_burst_drops() {
        // 1 MB buffer-less-ish port at 1 MB/s; offer 100 x 9000B packets
        // in the same microsecond: only ~11 fit in a 100 KB buffer.
        let mut p = MirrorPort::new(MirrorConfig {
            rate_bytes_per_sec: 1_000_000.0,
            buffer_bytes: 100_000,
        });
        let mut fwd = 0;
        for _ in 0..100 {
            if p.offer(0, 9000) == MirrorVerdict::Forwarded {
                fwd += 1;
            }
        }
        assert_eq!(fwd, 11);
        assert!(p.stats().drop_rate() > 0.8);
    }

    #[test]
    fn buffer_drains_over_time() {
        let mut p = MirrorPort::new(MirrorConfig {
            rate_bytes_per_sec: 1_000_000.0, // 1 byte/µs
            buffer_bytes: 10_000,
        });
        // Fill the buffer.
        assert_eq!(p.offer(0, 10_000), MirrorVerdict::Forwarded);
        assert_eq!(p.offer(0, 1), MirrorVerdict::Dropped);
        // 5 ms later, 5000 bytes have drained.
        assert_eq!(p.offer(5_000, 5_000), MirrorVerdict::Forwarded);
        assert_eq!(p.offer(5_000, 1), MirrorVerdict::Dropped);
    }

    #[test]
    fn spaced_traffic_is_lossless_on_gigabit() {
        // 1500-byte packets every 100 µs = 15 MB/s, far below 125 MB/s.
        let mut p = MirrorPort::new(MirrorConfig::gigabit());
        for i in 0..10_000u64 {
            assert_eq!(p.offer(i * 100, 1500), MirrorVerdict::Forwarded);
        }
    }

    #[test]
    fn non_monotonic_timestamps_tolerated() {
        let mut p = MirrorPort::new(MirrorConfig::gigabit());
        p.offer(1000, 100);
        // Earlier timestamp: treated as "now", no panic, no negative drain.
        p.offer(500, 100);
        assert_eq!(p.stats().offered, 2);
    }
}
