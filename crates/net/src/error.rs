//! Error type for packet parsing and pcap I/O.

use std::fmt;

/// Convenient alias for results of packet operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An error from parsing packets or reading/writing capture files.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A frame, header, or file was shorter than its format requires.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A header field held an unsupported value.
    Unsupported {
        /// What was being parsed.
        what: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A pcap file had an unrecognized magic number.
    BadMagic(u32),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {got}")
            }
            Error::Unsupported { what, value } => {
                write!(f, "unsupported {what} value {value:#x}")
            }
            Error::BadMagic(m) => write!(f, "unrecognized pcap magic {m:#010x}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::Truncated {
            what: "ethernet frame",
            needed: 14,
            got: 6,
        };
        assert!(e.to_string().contains("ethernet frame"));
        let e = Error::BadMagic(0xdeadbeef);
        assert!(e.to_string().contains("0xdeadbeef"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
