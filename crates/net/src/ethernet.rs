//! Ethernet II framing.
//!
//! The CAMPUS network used gigabit Ethernet with 9000-byte jumbo frames;
//! EECS used standard 1500-byte frames. Frames here carry no FCS (as
//! delivered by a capture interface).

use crate::{Error, Result};
use std::fmt;

/// Length of an Ethernet II header: two MACs plus the EtherType.
pub const HEADER_LEN: usize = 14;
/// Conventional MTU for standard Ethernet.
pub const MTU_STANDARD: usize = 1500;
/// MTU for the jumbo frames used on the CAMPUS gigabit network.
pub const MTU_JUMBO: usize = 9000;

/// A 48-bit IEEE MAC address.
///
/// # Examples
///
/// ```
/// use nfstrace_net::ethernet::MacAddr;
/// let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
/// assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        Self(octets)
    }

    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const fn broadcast() -> Self {
        Self([0xff; 6])
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// EtherType values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800) — the only payload NFS tracing needs.
    Ipv4,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(v) => v,
        }
    }

    /// Interprets a 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed Ethernet II frame borrowing its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// The bytes after the header.
    pub payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Parses a frame from raw bytes.
    ///
    /// # Errors
    ///
    /// [`Error::Truncated`] if `data` is shorter than the 14-byte header.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated {
                what: "ethernet frame",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([data[12], data[13]]));
        Ok(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: &data[HEADER_LEN..],
        })
    }

    /// Serializes a frame around `payload`.
    pub fn encode(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&dst.0);
        out.extend_from_slice(&src.0);
        out.extend_from_slice(&ethertype.as_u16().to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dst = MacAddr::new([1, 2, 3, 4, 5, 6]);
        let src = MacAddr::new([7, 8, 9, 10, 11, 12]);
        let bytes = Frame::encode(dst, src, EtherType::Ipv4, b"hello");
        let f = Frame::parse(&bytes).unwrap();
        assert_eq!(f.dst, dst);
        assert_eq!(f.src, src);
        assert_eq!(f.ethertype, EtherType::Ipv4);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn too_short_errors() {
        assert!(Frame::parse(&[0u8; 13]).is_err());
    }

    #[test]
    fn jumbo_payload_roundtrips() {
        let payload = vec![0xabu8; MTU_JUMBO];
        let bytes = Frame::encode(
            MacAddr::broadcast(),
            MacAddr::default(),
            EtherType::Ipv4,
            &payload,
        );
        let f = Frame::parse(&bytes).unwrap();
        assert_eq!(f.payload.len(), MTU_JUMBO);
    }

    #[test]
    fn other_ethertype_preserved() {
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x86dd).as_u16(), 0x86dd);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            MacAddr::new([0, 0x1b, 0x21, 0xab, 0xcd, 0xef]).to_string(),
            "00:1b:21:ab:cd:ef"
        );
    }
}
