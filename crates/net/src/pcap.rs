//! Classic libpcap capture-file format (the `tcpdump` on-disk format the
//! paper's tracer was built on).
//!
//! Supports the microsecond-resolution little-endian variant, which is
//! what every contemporary tcpdump wrote, plus big-endian reading.

use crate::{Error, Result};
use std::io::{Read, Write};

/// Little-endian, microsecond-timestamp magic.
pub const MAGIC_USEC: u32 = 0xa1b2c3d4;
/// The same magic as read from an opposite-endian file.
pub const MAGIC_USEC_SWAPPED: u32 = 0xd4c3b2a1;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// The fixed 24-byte global header of a pcap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapHeader {
    /// Snap length: maximum stored bytes per packet.
    pub snaplen: u32,
    /// Link type (always Ethernet here).
    pub linktype: u32,
}

impl Default for PcapHeader {
    fn default() -> Self {
        // 9216 comfortably covers jumbo frames (paper §3.2).
        Self {
            snaplen: 9216,
            linktype: LINKTYPE_ETHERNET,
        }
    }
}

/// One captured packet: a microsecond timestamp and the frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Microseconds since the epoch of the simulation or system clock.
    pub timestamp_micros: u64,
    /// Original (on-the-wire) length, which may exceed `data.len()` if
    /// the snap length truncated the capture.
    pub orig_len: u32,
    /// The captured bytes.
    pub data: Vec<u8>,
}

impl CapturedPacket {
    /// Captures `data` in full at `timestamp_micros`.
    pub fn new(timestamp_micros: u64, data: Vec<u8>) -> Self {
        let orig_len = data.len() as u32;
        Self {
            timestamp_micros,
            orig_len,
            data,
        }
    }
}

/// Writes pcap files.
///
/// # Examples
///
/// ```
/// use nfstrace_net::pcap::{CapturedPacket, PcapWriter, PcapReader, PcapHeader};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut buf = Vec::new();
/// let mut w = PcapWriter::new(&mut buf, PcapHeader::default())?;
/// w.write_packet(&CapturedPacket::new(1_000_000, vec![1, 2, 3]))?;
/// drop(w);
///
/// let mut r = PcapReader::new(&buf[..])?;
/// let pkt = r.read_packet()?.expect("one packet");
/// assert_eq!(pkt.data, vec![1, 2, 3]);
/// assert!(r.read_packet()?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn new(mut inner: W, header: PcapHeader) -> Result<Self> {
        inner.write_all(&MAGIC_USEC.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&header.snaplen.to_le_bytes())?;
        inner.write_all(&header.linktype.to_le_bytes())?;
        Ok(Self {
            inner,
            snaplen: header.snaplen,
        })
    }

    /// Appends one packet record, truncating to the snap length.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying writer.
    pub fn write_packet(&mut self, pkt: &CapturedPacket) -> Result<()> {
        let secs = (pkt.timestamp_micros / 1_000_000) as u32;
        let usecs = (pkt.timestamp_micros % 1_000_000) as u32;
        let incl = pkt.data.len().min(self.snaplen as usize);
        self.inner.write_all(&secs.to_le_bytes())?;
        self.inner.write_all(&usecs.to_le_bytes())?;
        self.inner.write_all(&(incl as u32).to_le_bytes())?;
        self.inner.write_all(&pkt.orig_len.to_le_bytes())?;
        self.inner.write_all(&pkt.data[..incl])?;
        Ok(())
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reads pcap files in either byte order.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// The file's global header, as parsed.
    pub header: PcapHeader,
}

impl<R: Read> PcapReader<R> {
    /// Parses the global header and returns the reader.
    ///
    /// # Errors
    ///
    /// [`Error::BadMagic`] for unknown file magic, or I/O errors.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_USEC => false,
            MAGIC_USEC_SWAPPED => true,
            other => return Err(Error::BadMagic(other)),
        };
        let rd32 = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        Ok(Self {
            inner,
            swapped,
            header: PcapHeader {
                snaplen: rd32(&hdr[16..20]),
                linktype: rd32(&hdr[20..24]),
            },
        })
    }

    /// Reads the next packet, or `None` at end of file.
    ///
    /// # Errors
    ///
    /// I/O errors, including truncation mid-record.
    pub fn read_packet(&mut self) -> Result<Option<CapturedPacket>> {
        let mut rec = [0u8; 16];
        match self.inner.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let rd32 = |b: &[u8]| {
            let arr = [b[0], b[1], b[2], b[3]];
            if self.swapped {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let secs = u64::from(rd32(&rec[0..4]));
        let usecs = u64::from(rd32(&rec[4..8]));
        let incl = rd32(&rec[8..12]) as usize;
        let orig_len = rd32(&rec[12..16]);
        let mut data = vec![0u8; incl];
        self.inner.read_exact(&mut data)?;
        Ok(Some(CapturedPacket {
            timestamp_micros: secs * 1_000_000 + usecs,
            orig_len,
            data,
        }))
    }

    /// Iterates over all remaining packets.
    pub fn packets(self) -> Packets<R> {
        Packets { reader: self }
    }
}

/// Iterator over the packets of a [`PcapReader`].
#[derive(Debug)]
pub struct Packets<R: Read> {
    reader: PcapReader<R>,
}

impl<R: Read> Iterator for Packets<R> {
    type Item = Result<CapturedPacket>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.read_packet().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_packets() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, PcapHeader::default()).unwrap();
            for i in 0..5u8 {
                w.write_packet(&CapturedPacket::new(
                    u64::from(i) * 1_500_000,
                    vec![i; usize::from(i) + 1],
                ))
                .unwrap();
            }
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.header.linktype, LINKTYPE_ETHERNET);
        let pkts: Vec<_> = r.packets().collect::<Result<_>>().unwrap();
        assert_eq!(pkts.len(), 5);
        assert_eq!(pkts[3].timestamp_micros, 4_500_000);
        assert_eq!(pkts[3].data, vec![3; 4]);
    }

    #[test]
    fn snaplen_truncates_but_keeps_orig_len() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(
                &mut buf,
                PcapHeader {
                    snaplen: 4,
                    linktype: LINKTYPE_ETHERNET,
                },
            )
            .unwrap();
            w.write_packet(&CapturedPacket::new(0, vec![7; 100]))
                .unwrap();
        }
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.read_packet().unwrap().unwrap();
        assert_eq!(p.data.len(), 4);
        assert_eq!(p.orig_len, 100);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = [0u8; 24];
        buf[0] = 0x11;
        assert!(matches!(PcapReader::new(&buf[..]), Err(Error::BadMagic(_))));
    }

    #[test]
    fn big_endian_file_is_read() {
        // Hand-build a big-endian header plus one empty packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&9216u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&3u32.to_be_bytes()); // secs
        buf.extend_from_slice(&7u32.to_be_bytes()); // usecs
        buf.extend_from_slice(&2u32.to_be_bytes()); // incl
        buf.extend_from_slice(&2u32.to_be_bytes()); // orig
        buf.extend_from_slice(&[0xaa, 0xbb]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.read_packet().unwrap().unwrap();
        assert_eq!(p.timestamp_micros, 3_000_007);
        assert_eq!(p.data, vec![0xaa, 0xbb]);
    }

    #[test]
    fn empty_file_yields_none() {
        let mut buf = Vec::new();
        PcapWriter::new(&mut buf, PcapHeader::default()).unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.read_packet().unwrap().is_none());
    }
}
