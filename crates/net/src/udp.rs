//! UDP datagram header handling.
//!
//! All EECS clients spoke NFS over UDP (paper §3.1), so the sniffer's UDP
//! path is the hot path for that trace.

use crate::{Error, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// The well-known NFS server port.
pub const NFS_PORT: u16 = 2049;

/// A parsed UDP datagram borrowing its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload after the 8-byte header.
    pub payload: &'a [u8],
}

impl<'a> UdpDatagram<'a> {
    /// Parses a datagram, honoring the length field.
    ///
    /// # Errors
    ///
    /// [`Error::Truncated`] if the buffer is shorter than the header or
    /// the declared length.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated {
                what: "udp header",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if len < HEADER_LEN || data.len() < len {
            return Err(Error::Truncated {
                what: "udp datagram",
                needed: len,
                got: data.len(),
            });
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: &data[HEADER_LEN..len],
        })
    }

    /// Serializes a datagram around `payload` (checksum zero: legal for
    /// IPv4 UDP and what many NFS stacks of the era actually sent).
    pub fn encode(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let len = (HEADER_LEN + payload.len()) as u16;
        let mut out = Vec::with_capacity(usize::from(len));
        out.extend_from_slice(&src_port.to_be_bytes());
        out.extend_from_slice(&dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bytes = UdpDatagram::encode(1023, NFS_PORT, b"rpc call");
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert_eq!(d.src_port, 1023);
        assert_eq!(d.dst_port, NFS_PORT);
        assert_eq!(d.payload, b"rpc call");
    }

    #[test]
    fn short_header_rejected() {
        assert!(UdpDatagram::parse(&[0u8; 7]).is_err());
    }

    #[test]
    fn length_field_truncates_trailer() {
        let mut bytes = UdpDatagram::encode(1, 2, b"abc");
        bytes.extend_from_slice(&[9, 9, 9]);
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert_eq!(d.payload, b"abc");
    }

    #[test]
    fn declared_length_beyond_buffer_rejected() {
        let mut bytes = UdpDatagram::encode(1, 2, b"abc");
        bytes[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(UdpDatagram::parse(&bytes).is_err());
    }

    #[test]
    fn empty_payload() {
        let bytes = UdpDatagram::encode(5, 6, b"");
        let d = UdpDatagram::parse(&bytes).unwrap();
        assert!(d.payload.is_empty());
    }
}
