//! TCP segment header handling.
//!
//! All CAMPUS clients spoke NFSv3 over TCP (paper §3.2). The sniffer must
//! reassemble the byte stream (see [`crate::reassembly`]) and then split
//! RPC messages out of it via record marking (`nfstrace-rpc`).

use crate::{Error, Result};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits, as in the wire format's flags octet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender is done sending.
    pub const FIN: u8 = 0x01;
    /// SYN: connection setup.
    pub const SYN: u8 = 0x02;
    /// RST: reset.
    pub const RST: u8 = 0x04;
    /// PSH: push buffered data to the application.
    pub const PSH: u8 = 0x08;
    /// ACK: acknowledgment field is valid.
    pub const ACK: u8 = 0x10;

    /// Whether the given flag bit(s) are all set.
    pub fn contains(self, bits: u8) -> bool {
        self.0 & bits == bits
    }
}

/// A parsed TCP segment borrowing its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgment number (meaningful when ACK set).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Payload after the header and options.
    pub payload: &'a [u8],
}

impl<'a> TcpSegment<'a> {
    /// Parses a segment, skipping options.
    ///
    /// # Errors
    ///
    /// [`Error::Truncated`] for short buffers; [`Error::Unsupported`] for
    /// a data-offset field below the minimum.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated {
                what: "tcp header",
                needed: MIN_HEADER_LEN,
                got: data.len(),
            });
        }
        let data_off = usize::from(data[12] >> 4) * 4;
        if data_off < MIN_HEADER_LEN {
            return Err(Error::Unsupported {
                what: "tcp data offset",
                value: data_off as u32,
            });
        }
        if data.len() < data_off {
            return Err(Error::Truncated {
                what: "tcp options",
                needed: data_off,
                got: data.len(),
            });
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            payload: &data[data_off..],
        })
    }

    /// Serializes a minimal (option-free) segment around `payload`.
    pub fn encode(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(MIN_HEADER_LEN + payload.len());
        out.extend_from_slice(&src_port.to_be_bytes());
        out.extend_from_slice(&dst_port.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&ack.to_be_bytes());
        out.push(5 << 4); // data offset = 5 words
        out.push(flags.0);
        out.extend_from_slice(&65535u16.to_be_bytes()); // window
        out.extend_from_slice(&0u16.to_be_bytes()); // checksum (not computed)
        out.extend_from_slice(&0u16.to_be_bytes()); // urgent pointer
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bytes = TcpSegment::encode(
            700,
            2049,
            1000,
            2000,
            TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
            b"stream data",
        );
        let s = TcpSegment::parse(&bytes).unwrap();
        assert_eq!(s.src_port, 700);
        assert_eq!(s.dst_port, 2049);
        assert_eq!(s.seq, 1000);
        assert_eq!(s.ack, 2000);
        assert!(s.flags.contains(TcpFlags::ACK));
        assert!(s.flags.contains(TcpFlags::PSH));
        assert!(!s.flags.contains(TcpFlags::SYN));
        assert_eq!(s.payload, b"stream data");
    }

    #[test]
    fn options_are_skipped() {
        // Hand-build a header with data offset 6 (one option word).
        let mut bytes = TcpSegment::encode(1, 2, 0, 0, TcpFlags(TcpFlags::ACK), b"");
        bytes[12] = 6 << 4;
        bytes.extend_from_slice(&[1, 1, 1, 1]); // NOP options
        bytes.extend_from_slice(b"xy");
        let s = TcpSegment::parse(&bytes).unwrap();
        assert_eq!(s.payload, b"xy");
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut bytes = TcpSegment::encode(1, 2, 0, 0, TcpFlags::default(), b"");
        bytes[12] = 2 << 4;
        assert!(matches!(
            TcpSegment::parse(&bytes),
            Err(Error::Unsupported { .. })
        ));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(TcpSegment::parse(&[0u8; 10]).is_err());
    }
}
