//! Whole-packet composition and decomposition.
//!
//! [`PacketBuilder`] assembles Ethernet/IPv4/UDP (or TCP) frames for the
//! workload simulator; [`DecodedPacket`] is the sniffer's first parsing
//! stage, peeling the three headers off a captured frame.

use crate::ethernet::{EtherType, Frame, MacAddr};
use crate::ipv4::{Ipv4Addr4, Ipv4Packet, PROTO_TCP, PROTO_UDP};
use crate::tcp::{TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use crate::Result;

/// Which transport a decoded packet used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// UDP, with no stream state.
    Udp,
    /// TCP, with the segment's sequence number for reassembly.
    Tcp {
        /// Sequence number of the first payload byte.
        seq: u32,
        /// Raw flag bits.
        flags: u8,
    },
}

/// A fully decoded frame: addresses, ports, transport, and payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedPacket {
    /// IP source address.
    pub src_ip: Ipv4Addr4,
    /// IP destination address.
    pub dst_ip: Ipv4Addr4,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// Transport kind plus stream metadata.
    pub transport: Transport,
    /// The transport payload (an RPC message or stream fragment).
    pub payload: Vec<u8>,
}

impl DecodedPacket {
    /// Decodes an Ethernet frame down to its transport payload.
    ///
    /// This is [`PacketView::parse`] plus one copy of the payload; use
    /// the view form when the payload only needs to be looked at, not
    /// kept.
    ///
    /// # Errors
    ///
    /// Any truncation or unsupported field from the ethernet, ipv4, udp,
    /// or tcp parsers.
    pub fn parse(frame: &[u8]) -> Result<Self> {
        PacketView::parse(frame).map(PacketView::to_owned)
    }
}

/// A decoded frame whose payload is a view into the captured bytes.
///
/// The borrow is tied to the frame slice, not to any parser state, so
/// the payload stays valid for as long as the capture buffer does.
/// [`DecodedPacket::parse`] is this plus [`PacketView::to_owned`], so
/// the two parsers accept and reject exactly the same frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// IP source address.
    pub src_ip: Ipv4Addr4,
    /// IP destination address.
    pub dst_ip: Ipv4Addr4,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// Transport kind plus stream metadata.
    pub transport: Transport,
    /// The transport payload, borrowed from the frame.
    pub payload: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Decodes an Ethernet frame down to its transport payload without
    /// copying it.
    ///
    /// # Errors
    ///
    /// Any truncation or unsupported field from the ethernet, ipv4, udp,
    /// or tcp parsers.
    pub fn parse(frame: &'a [u8]) -> Result<Self> {
        let eth = Frame::parse(frame)?;
        let ip = Ipv4Packet::parse(eth.payload)?;
        match ip.protocol {
            PROTO_UDP => {
                let udp = UdpDatagram::parse(ip.payload)?;
                Ok(PacketView {
                    src_ip: ip.src,
                    dst_ip: ip.dst,
                    src_port: udp.src_port,
                    dst_port: udp.dst_port,
                    transport: Transport::Udp,
                    payload: udp.payload,
                })
            }
            PROTO_TCP => {
                let tcp = TcpSegment::parse(ip.payload)?;
                Ok(PacketView {
                    src_ip: ip.src,
                    dst_ip: ip.dst,
                    src_port: tcp.src_port,
                    dst_port: tcp.dst_port,
                    transport: Transport::Tcp {
                        seq: tcp.seq,
                        flags: tcp.flags.0,
                    },
                    payload: tcp.payload,
                })
            }
            other => Err(crate::Error::Unsupported {
                what: "ip protocol",
                value: u32::from(other),
            }),
        }
    }

    /// Materializes an owned [`DecodedPacket`], copying the payload.
    pub fn to_owned(self) -> DecodedPacket {
        DecodedPacket {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            transport: self.transport,
            payload: self.payload.to_vec(),
        }
    }
}

/// Convenience constructors for complete frames.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketBuilder;

impl PacketBuilder {
    /// Builds an Ethernet/IPv4/UDP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr4,
        dst_ip: Ipv4Addr4,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Vec<u8> {
        let udp = UdpDatagram::encode(src_port, dst_port, &payload);
        let ip = Ipv4Packet::encode(src_ip, dst_ip, PROTO_UDP, 0, &udp);
        Frame::encode(dst_mac, src_mac, EtherType::Ipv4, &ip)
    }

    /// Builds an Ethernet/IPv4/TCP frame carrying `payload` at `seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr4,
        dst_ip: Ipv4Addr4,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        payload: Vec<u8>,
    ) -> Vec<u8> {
        let tcp = TcpSegment::encode(
            src_port,
            dst_port,
            seq,
            0,
            TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
            &payload,
        );
        let ip = Ipv4Packet::encode(src_ip, dst_ip, PROTO_TCP, 0, &tcp);
        Frame::encode(dst_mac, src_mac, EtherType::Ipv4, &ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs() -> (MacAddr, MacAddr) {
        (
            MacAddr::new([0, 0, 0, 0, 0, 1]),
            MacAddr::new([0, 0, 0, 0, 0, 2]),
        )
    }

    #[test]
    fn udp_roundtrip() {
        let (m1, m2) = macs();
        let frame = PacketBuilder::udp(
            m1,
            m2,
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(10, 0, 0, 2),
            900,
            2049,
            b"call".to_vec(),
        );
        let d = DecodedPacket::parse(&frame).unwrap();
        assert_eq!(d.transport, Transport::Udp);
        assert_eq!(d.src_port, 900);
        assert_eq!(d.dst_port, 2049);
        assert_eq!(d.payload, b"call");
    }

    #[test]
    fn tcp_roundtrip_preserves_seq() {
        let (m1, m2) = macs();
        let frame = PacketBuilder::tcp(
            m1,
            m2,
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(10, 0, 0, 2),
            700,
            2049,
            123456,
            b"streambytes".to_vec(),
        );
        let d = DecodedPacket::parse(&frame).unwrap();
        match d.transport {
            Transport::Tcp { seq, .. } => assert_eq!(seq, 123456),
            other => panic!("expected tcp, got {other:?}"),
        }
        assert_eq!(d.payload, b"streambytes");
    }

    #[test]
    fn non_ip_protocol_rejected() {
        let (m1, m2) = macs();
        let ip = Ipv4Packet::encode(
            Ipv4Addr4::new(1, 1, 1, 1),
            Ipv4Addr4::new(2, 2, 2, 2),
            1, // ICMP
            0,
            b"ping",
        );
        let frame = Frame::encode(m2, m1, EtherType::Ipv4, &ip);
        assert!(DecodedPacket::parse(&frame).is_err());
    }
}
