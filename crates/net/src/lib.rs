//! Network packet substrate for passive NFS tracing.
//!
//! The FAST 2003 tracer attached a snooping host to a switch mirror port
//! and decoded raw Ethernet frames carrying NFS RPC traffic. This crate
//! provides everything between the wire and the RPC layer:
//!
//! - [`ethernet`]: Ethernet II frames, including 9000-byte jumbo frames as
//!   used on the CAMPUS gigabit network.
//! - [`ipv4`]: IPv4 headers with checksums.
//! - [`udp`] and [`tcp`]: transport headers (EECS used UDP, CAMPUS TCP).
//! - [`pcap`]: the classic libpcap capture-file format.
//! - [`reassembly`]: in-order TCP byte-stream reconstruction tolerant of
//!   out-of-order and duplicated segments.
//! - [`mirror`]: a model of the bandwidth-limited mirror port that dropped
//!   up to 10% of packets during CAMPUS load bursts (paper §4.1.4).
//!
//! # Examples
//!
//! ```
//! use nfstrace_net::packet::PacketBuilder;
//! use nfstrace_net::{ethernet::MacAddr, ipv4::Ipv4Addr4};
//!
//! let frame = PacketBuilder::udp(
//!     MacAddr::new([0, 1, 2, 3, 4, 5]),
//!     MacAddr::new([6, 7, 8, 9, 10, 11]),
//!     Ipv4Addr4::new(10, 0, 0, 1),
//!     Ipv4Addr4::new(10, 0, 0, 2),
//!     1023,
//!     2049,
//!     b"payload".to_vec(),
//! );
//! let decoded = nfstrace_net::packet::DecodedPacket::parse(&frame).unwrap();
//! assert_eq!(decoded.payload, b"payload");
//! ```

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod error;
pub mod ethernet;
pub mod ipv4;
pub mod mirror;
pub mod packet;
pub mod pcap;
pub mod reassembly;
pub mod tcp;
pub mod udp;

pub use error::{Error, Result};
