//! Chunked on-disk trace store with mergeable partial indices.
//!
//! The paper's traces are multi-day, multi-million-operation captures
//! (CAMPUS peaks near half a *billion* operations a day); holding such
//! a trace as one `Vec<TraceRecord>` caps every analysis at RAM size.
//! This crate stores a trace as a sequence of independently decodable
//! **chunks** in one binary file and rebuilds the analysis index from
//! per-chunk [`nfstrace_core::index::PartialIndex`]es, so both the
//! write path (generation, capture) and the read path (every table and
//! figure) stream: peak resident record memory is bounded by chunk
//! size × worker threads, never by trace length.
//!
//! # Pieces
//!
//! - [`StoreWriter`] — a [`nfstrace_core::sink::RecordSink`] that
//!   encodes time-ordered records through fixed-size chunks
//!   ([`StoreConfig::target_chunk_bytes`]) and finishes with a footer
//!   of per-chunk byte ranges, record counts, and time ranges.
//! - [`StoreReader`] — opens a store by reading only the footer;
//!   decodes chunks on demand from `&self`, so any number of threads
//!   can read concurrently.
//! - [`StoreIndex`] — implements
//!   [`nfstrace_core::index::TraceView`], the same analysis surface as
//!   the in-memory `TraceIndex`: chunk-parallel partial-index builds
//!   (sharded across `NFSTRACE_THREADS` via
//!   [`nfstrace_core::parallel::run_sharded`]) merged in chunk order,
//!   bit-identical to indexing the concatenated records. An index can
//!   span one file or an ordered **segment directory**
//!   ([`StoreIndex::open_dir`]; naming and the reopen-and-append
//!   catalog live in module [`segments`]) — which is how the
//!   `nfstrace-live` rotating ingest's output is analyzed.
//!
//! The record codec (module [`codec`]) delta-encodes timestamps,
//! varint-packs every numeric field, and interns percent-escaped name
//! arguments per chunk. On top of that, the **v3** layout (the
//! default; v1 and v2 stores stay readable and writable) LZ-compresses
//! each chunk when that wins — negotiated per chunk via a flags byte
//! with a raw fallback (module [`compress`]) — checksums every chunk
//! and the footer so corruption surfaces as [`StoreError::Format`]
//! rather than wrong records, and carries a per-chunk
//! [`FileIdFilter`] **sized from the chunk's distinct-handle count**
//! (exact sorted set at low fan-in, adaptively sized Bloom above) so
//! per-file queries ([`StoreIndex::file_records`],
//! [`StoreIndex::file_runs`]) keep skipping chunks that cannot match
//! even where the fixed v2 filter saturates. Module [`format`]
//! documents all three layouts. Record-replaying analyses batch
//! through [`nfstrace_core::index::TraceView::prepare`] into a single
//! fused decode pass, and that pass **pipelines**: with two or more
//! workers, [`stream_records`] decodes chunk *i+1* on a worker thread
//! while analyzers consume chunk *i*, output unchanged.
//!
//! # Example: write, reopen, analyze
//!
//! ```
//! use nfstrace_core::index::{TraceIndex, TraceView};
//! use nfstrace_core::record::{FileId, Op, TraceRecord};
//! use nfstrace_store::{StoreConfig, StoreIndex, StoreWriter};
//!
//! let dir = std::env::temp_dir().join("nfstrace-store-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.nfstore");
//!
//! let records: Vec<TraceRecord> = (0..1000u64)
//!     .map(|i| TraceRecord::new(i * 500, Op::Read, FileId(i % 7)).with_range(i * 8192, 8192))
//!     .collect();
//! let config = StoreConfig {
//!     target_chunk_bytes: 1024,
//!     ..StoreConfig::default()
//! };
//! let mut w = StoreWriter::create(&path, config).unwrap();
//! for r in &records {
//!     w.push(r).unwrap();
//! }
//! let summary = w.finish().unwrap();
//! assert!(summary.chunks > 1, "small target ⇒ many chunks");
//!
//! // The store-backed index equals the in-memory one, bit for bit.
//! let on_disk = StoreIndex::open(&path).unwrap();
//! let in_memory = TraceIndex::new(records);
//! assert_eq!(on_disk.summary(), in_memory.summary());
//! assert_eq!(on_disk.hourly(), in_memory.hourly());
//! assert_eq!(
//!     on_disk.accesses(10).as_ref(),
//!     in_memory.accesses(10).as_ref()
//! );
//! # std::fs::remove_file(&path).unwrap();
//! ```

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod codec;
pub mod compact;
pub mod compress;
pub mod error;
pub mod format;
pub mod index;
pub mod reader;
pub mod segments;
pub mod seqfile;
pub mod writer;

pub use compact::{CompactionPolicy, Compactor, FaultInjector, RetentionPolicy};
pub use error::{Result, StoreError};
pub use format::{ChunkMeta, FileIdFilter, FilterBuilder, FilterKind, StoreVersion};
pub use index::{stream_records, stream_records_with_threads, StoreIndex};
pub use reader::StoreReader;
pub use segments::{SegmentCatalog, SegmentId};
pub use writer::{Compression, StoreConfig, StoreSummary, StoreWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::index::{TraceIndex, TraceView};
    use nfstrace_core::record::{FileId, Op, TraceRecord};
    use nfstrace_core::runs::RunOptions;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nfstrace-store-tests");
        std::fs::create_dir_all(&dir).expect("mkdir tempdir");
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample(n: u64) -> Vec<TraceRecord> {
        let mut v = Vec::new();
        for i in 0..n {
            let mut r = TraceRecord::new(i * 997, Op::Read, FileId(i % 5))
                .with_range((i / 5) * 8192, 8192)
                .with_client(10 + (i % 3) as u32);
            r.reply_micros = i * 997 + 180;
            r.xid = i as u32;
            v.push(r);
            if i % 7 == 0 {
                let mut c = TraceRecord::new(i * 997 + 11, Op::Create, FileId(100))
                    .with_name(format!("snd.{i}"));
                c.new_fh = Some(FileId(1000 + i));
                v.push(c);
            }
            if i % 11 == 0 {
                v.push(
                    TraceRecord::new(i * 997 + 13, Op::Write, FileId(1000 + i)).with_range(0, 900),
                );
            }
        }
        v
    }

    fn write_store(path: &std::path::Path, records: &[TraceRecord], chunk_bytes: usize) {
        let mut w = StoreWriter::create(
            path,
            StoreConfig {
                target_chunk_bytes: chunk_bytes,
                ..StoreConfig::default()
            },
        )
        .expect("create store");
        for r in records {
            w.push(r).expect("push");
        }
        w.finish().expect("finish");
    }

    #[test]
    fn roundtrip_is_bit_identical_across_chunk_sizes() {
        let records = sample(500);
        for chunk_bytes in [64, 1024, 1 << 20] {
            let path = tmp(&format!("roundtrip-{chunk_bytes}"));
            write_store(&path, &records, chunk_bytes);
            let reader = StoreReader::open(&path).expect("open");
            assert_eq!(reader.total_records(), records.len() as u64);
            let mut back = Vec::new();
            reader.for_each(|r| back.push(r.clone())).expect("stream");
            assert_eq!(back, records, "chunk_bytes={chunk_bytes}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn tiny_chunks_make_many_chunks_and_metas_cover_time() {
        let records = sample(400);
        let path = tmp("metas");
        write_store(&path, &records, 128);
        let reader = StoreReader::open(&path).expect("open");
        assert!(reader.chunk_count() > 5);
        let metas = reader.chunks();
        for w in metas.windows(2) {
            assert!(w[0].max_micros <= w[1].min_micros, "chunks in time order");
        }
        assert_eq!(metas[0].min_micros, records[0].micros);
        assert_eq!(
            metas.last().unwrap().max_micros,
            records.last().unwrap().micros
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_order_push_is_rejected() {
        let path = tmp("order");
        let mut w = StoreWriter::create(&path, StoreConfig::default()).expect("create");
        w.push(&TraceRecord::new(100, Op::Read, FileId(1))).unwrap();
        let err = w.push(&TraceRecord::new(99, Op::Read, FileId(1)));
        assert!(matches!(err, Err(StoreError::OutOfOrder { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_index_matches_trace_index_products() {
        let records = sample(600);
        let path = tmp("index");
        write_store(&path, &records, 512);
        let disk = StoreIndex::open(&path).expect("open");
        let mem = TraceIndex::new(records);
        assert_eq!(TraceView::len(&disk), TraceView::len(&mem));
        assert_eq!(disk.summary(), mem.summary());
        assert_eq!(disk.hourly(), mem.hourly());
        assert_eq!(disk.accesses(0).as_ref(), mem.accesses(0).as_ref());
        assert_eq!(disk.accesses(10).as_ref(), mem.accesses(10).as_ref());
        assert_eq!(
            disk.runs(10, RunOptions::default()).as_ref(),
            mem.runs(10, RunOptions::default()).as_ref()
        );
        assert_eq!(disk.names(), mem.names());
        let cfg = nfstrace_core::lifetime::LifetimeConfig {
            phase1_start: 0,
            phase1_len: 200_000,
            phase2_len: 200_000,
        };
        assert_eq!(disk.lifetime(cfg).as_ref(), mem.lifetime(cfg).as_ref());
        assert_eq!(
            disk.hierarchy_coverage(50_000),
            mem.hierarchy_coverage(50_000)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_time_window_matches_trace_index_window() {
        let records = sample(600);
        let path = tmp("window");
        write_store(&path, &records, 512);
        let disk = StoreIndex::open(&path).expect("open");
        let mem = TraceIndex::new(records);
        let (a, b) = (40_000u64, 300_000u64);
        let dw = disk.time_window(a, b);
        let mw = mem.time_window(a, b);
        assert_eq!(TraceView::len(&dw), TraceView::len(&mw));
        assert_eq!(dw.summary(), mw.summary());
        assert_eq!(dw.accesses(5).as_ref(), mw.accesses(5).as_ref());
        // A nested window intersects, exactly like the slice-based view.
        let dn = dw.time_window(0, 100_000);
        let mn = mw.time_window(0, 100_000);
        assert_eq!(dn.summary(), mn.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_opens_and_indexes() {
        let path = tmp("empty");
        write_store(&path, &[], 512);
        let disk = StoreIndex::open(&path).expect("open");
        assert!(TraceView::is_empty(&disk));
        assert_eq!(disk.summary().total_ops, 0);
        std::fs::remove_file(&path).ok();
    }

    /// Splits `records` into `n` stretches and writes each as one
    /// sealed segment in `dir`.
    fn write_segments(dir: &std::path::Path, records: &[TraceRecord], n: usize, chunk: usize) {
        std::fs::create_dir_all(dir).expect("mkdir");
        let mut cat = segments::SegmentCatalog::open(dir).expect("catalog");
        let per = records.len().div_ceil(n.max(1)).max(1);
        for part in records.chunks(per) {
            let ord = cat.next_ordinal();
            write_store(&cat.path_for(ord), part, chunk);
            cat.note_sealed(ord);
        }
    }

    #[test]
    fn segment_dir_index_matches_single_file_index() {
        let records = sample(700);
        let dir = std::env::temp_dir().join(format!("nfstrace-segdir-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        write_segments(&dir, &records, 4, 512);
        let single = tmp("segdir-single");
        write_store(&single, &records, 512);

        let seg = StoreIndex::open_dir(&dir).expect("open dir");
        assert_eq!(seg.readers().len(), 4);
        let one = StoreIndex::open(&single).expect("open single");
        assert_eq!(TraceView::len(&seg), TraceView::len(&one));
        assert_eq!(seg.summary(), one.summary());
        assert_eq!(seg.hourly(), one.hourly());
        assert_eq!(seg.accesses(10).as_ref(), one.accesses(10).as_ref());
        assert_eq!(
            seg.runs(10, RunOptions::default()).as_ref(),
            one.runs(10, RunOptions::default()).as_ref()
        );
        assert_eq!(seg.names(), one.names());
        // Windows cross segment boundaries transparently.
        let (a, b) = (100_000u64, 400_000u64);
        let sw = seg.time_window(a, b);
        let ow = one.time_window(a, b);
        assert_eq!(sw.summary(), ow.summary());
        // Per-file queries skip across all segments and agree.
        let probe = FileId(3);
        assert_eq!(
            seg.file_records(probe).expect("file query"),
            one.file_records(probe).expect("file query")
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&single).ok();
    }

    #[test]
    fn open_dir_rejects_missing_and_segmentless_directories() {
        let missing =
            std::env::temp_dir().join(format!("nfstrace-no-such-dir-{}", std::process::id()));
        std::fs::remove_dir_all(&missing).ok();
        assert!(
            StoreIndex::open_dir(&missing).is_err(),
            "a mistyped path must not read as an empty trace"
        );
        assert!(!missing.exists(), "opening must not create the directory");
        let empty = std::env::temp_dir().join(format!("nfstrace-empty-dir-{}", std::process::id()));
        std::fs::create_dir_all(&empty).expect("mkdir");
        let err = StoreIndex::open_dir(&empty).expect_err("no segments");
        assert!(matches!(&err, StoreError::Format(m) if m.contains("segments")));
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn out_of_order_segments_are_rejected() {
        let records = sample(200);
        let dir = std::env::temp_dir().join(format!("nfstrace-segbad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cat = segments::SegmentCatalog::open(&dir).expect("catalog");
        // Segment 0 holds the LATER half, segment 1 the earlier one.
        let mid = records.len() / 2;
        write_store(&cat.path_for(0), &records[mid..], 512);
        write_store(&cat.path_for(1), &records[..mid], 512);
        let err = StoreIndex::open_dir(&dir).expect_err("time travel must fail");
        assert!(
            matches!(&err, StoreError::Format(m) if m.contains("segment")),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_decode_is_bit_identical_to_serial() {
        let records = sample(900);
        let dir = std::env::temp_dir().join(format!("nfstrace-pipe-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        write_segments(&dir, &records, 3, 256);
        let readers: Vec<std::sync::Arc<StoreReader>> = segments::SegmentCatalog::open(&dir)
            .expect("catalog")
            .paths()
            .into_iter()
            .map(|p| std::sync::Arc::new(StoreReader::open(p).expect("open")))
            .collect();
        for (start, end) in [(0u64, u64::MAX), (50_000, 300_000)] {
            let mut serial = Vec::new();
            stream_records_with_threads(&readers, start, end, 1, &mut |r| serial.push(r.clone()));
            for threads in [2, 8] {
                let mut piped = Vec::new();
                stream_records_with_threads(&readers, start, end, threads, &mut |r| {
                    piped.push(r.clone())
                });
                assert_eq!(piped, serial, "threads={threads} window=({start},{end})");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_a_format_error() {
        let records = sample(100);
        let path = tmp("trunc");
        write_store(&path, &records, 512);
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(StoreReader::open(&path).is_err(), "cut={cut}");
        }
        std::fs::remove_file(&path).ok();
    }
}
