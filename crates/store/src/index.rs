//! The out-of-core analysis index over chunked stores — one file or a
//! whole segment directory.

use crate::error::{Result, StoreError};
use crate::reader::StoreReader;
use crate::segments::SegmentCatalog;
use nfstrace_core::hierarchy::CoveragePoint;
use nfstrace_core::hourly::HourlySeries;
use nfstrace_core::index::{
    AccessMap, IndexBase, PartialIndex, ProductCaches, RecordStream, ReplayRequest, TraceView,
};
use nfstrace_core::lifetime::{LifetimeConfig, LifetimeReport};
use nfstrace_core::names::NamePredictionReport;
use nfstrace_core::parallel;
use nfstrace_core::record::{FileId, TraceRecord};
use nfstrace_core::reorder::{self, Access, SwapPoint};
use nfstrace_core::runs::{split_runs, Run, RunOptions};
use nfstrace_core::summary::SummaryStats;
use nfstrace_telemetry::Registry;
use std::path::Path;
use std::sync::Arc;

/// Streams every record of `readers` (segments in order, chunks in
/// order within each) whose capture time lies in `[start, end)`,
/// decoding one chunk at a time and skipping chunks whose footer time
/// range misses the window.
///
/// With two or more `NFSTRACE_THREADS` workers the decode is
/// **pipelined**: a worker thread decodes chunk *i+1* (and reads ahead
/// through a bounded channel) while the caller's observers consume
/// chunk *i* — overlapping decompression with analysis without
/// changing a single byte of output, since chunks are still delivered
/// in order. At most a handful of decoded chunks are resident at once
/// (the channel bound plus the one being consumed), so the memory
/// contract is unchanged.
///
/// # Panics
///
/// On chunk read/decode failure after a successful open — a store
/// corrupted (or deleted) mid-analysis.
pub fn stream_records(
    readers: &[Arc<StoreReader>],
    start: u64,
    end: u64,
    f: &mut dyn FnMut(&TraceRecord),
) {
    stream_records_with_threads(readers, start, end, parallel::threads(), f)
}

/// [`stream_records`] with an explicit worker count: `1` forces the
/// serial decode, anything higher enables the pipelined decode. Output
/// is identical either way (tested), which is why the public entry
/// point can pick from `NFSTRACE_THREADS` freely.
pub fn stream_records_with_threads(
    readers: &[Arc<StoreReader>],
    start: u64,
    end: u64,
    threads: usize,
    f: &mut dyn FnMut(&TraceRecord),
) {
    let jobs: Vec<(usize, usize)> = overlapping_chunks(readers, start, end);
    let deliver = |records: Vec<TraceRecord>, f: &mut dyn FnMut(&TraceRecord)| {
        for r in &records {
            if r.micros >= start && r.micros < end {
                f(r);
            }
        }
    };
    if threads >= 2 && jobs.len() > 1 {
        let jobs = &jobs;
        std::thread::scope(|scope| {
            // One decoded chunk in flight in the channel, one being
            // decoded, one being consumed: bounded read-ahead.
            let (tx, rx) = std::sync::mpsc::sync_channel::<Result<Vec<TraceRecord>>>(1);
            scope.spawn(move || {
                for &(ri, ci) in jobs {
                    if tx.send(readers[ri].read_chunk(ci)).is_err() {
                        break; // consumer went away (panic unwinding)
                    }
                }
            });
            for batch in rx {
                let records =
                    batch.unwrap_or_else(|e| panic!("store chunk unreadable mid-analysis: {e}"));
                deliver(records, f);
            }
        });
    } else {
        for (ri, ci) in jobs {
            let records = readers[ri]
                .read_chunk(ci)
                .unwrap_or_else(|e| panic!("store chunk {ci} unreadable mid-analysis: {e}"));
            deliver(records, f);
        }
    }
}

/// Every `(reader ordinal, chunk ordinal)` whose footer time range
/// overlaps `[start, end)`, in stream order.
///
/// The query planner's first cut: a segment whose *folded* footer time
/// range misses the window is dismissed whole
/// ([`StoreReader::prune_window`], counted as `store.segments_pruned`)
/// before its per-chunk metas are even iterated — on an archive-scale
/// catalog a narrow window touches a handful of segments and prunes
/// the rest here.
fn overlapping_chunks(readers: &[Arc<StoreReader>], start: u64, end: u64) -> Vec<(usize, usize)> {
    let mut jobs = Vec::new();
    for (ri, reader) in readers.iter().enumerate() {
        if reader.prune_window(start, end) {
            continue;
        }
        for (ci, m) in reader.chunks().iter().enumerate() {
            if m.overlaps(start, end) {
                jobs.push((ri, ci));
            }
        }
    }
    jobs
}

/// A [`TraceView`] whose records live on disk — in one store file or
/// across an ordered run of segment files.
///
/// Construction builds one [`PartialIndex`] per store chunk — sharded
/// across `NFSTRACE_THREADS` worker threads by
/// [`parallel::run_sharded`] — and merges them in chunk order (segments
/// in catalog order first), so the summary counters, hourly buckets,
/// and per-file access lists are bit-identical to
/// [`nfstrace_core::index::TraceIndex::new`] over the concatenated
/// records while peak resident *record* memory stays bounded by
/// (chunk size × worker count), not trace size. Record-replaying
/// analyses (block lifetimes, name prediction, hierarchy coverage)
/// stream chunk by chunk through [`stream_records`] — pipelined on
/// multi-worker runs — and batched through [`TraceView::prepare`] they
/// all ride **one** fused decode pass, so a full analysis suite costs
/// construction + one replay ≈ two decodes per chunk (asserted end to
/// end by `repro --store` via [`TraceView::decode_passes`] and
/// [`StoreReader::chunks_decoded`]).
///
/// Time windows ([`TraceView::time_window`]) share the underlying
/// [`StoreReader`]s via [`Arc`] and skip chunks whose footer time range
/// misses the window entirely.
///
/// Every index carries a telemetry [`Registry`]: the plain constructors
/// give each index a private one, while the `*_with_registry`
/// constructors report the `store.*` / `query.*` instruments into a
/// shared pipeline-health export. Windowed views inherit their parent's
/// registry either way.
#[derive(Debug)]
pub struct StoreIndex {
    readers: Vec<Arc<StoreReader>>,
    /// This view's half-open time range.
    start: u64,
    end: u64,
    base: IndexBase,
    caches: ProductCaches,
    /// Where this view's (and its windows') instruments live.
    registry: Registry,
}

impl StoreIndex {
    /// Opens a store file and indexes all of it.
    ///
    /// # Errors
    ///
    /// On open/decode failure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_with_registry(path, &Registry::new())
    }

    /// [`StoreIndex::open`] reporting telemetry into `registry`.
    ///
    /// # Errors
    ///
    /// On open/decode failure.
    pub fn open_with_registry<P: AsRef<Path>>(path: P, registry: &Registry) -> Result<Self> {
        let reader = Arc::new(StoreReader::open_with_registry(path, registry)?);
        Self::from_readers_in(vec![reader], parallel::threads(), registry)
    }

    /// Opens every sealed segment in `dir` (see
    /// [`crate::segments::SegmentCatalog`]) and indexes the
    /// concatenated trace. Segment time ranges must follow each other —
    /// a rotated ingest writes them that way; anything else is a
    /// [`StoreError::Format`].
    ///
    /// # Errors
    ///
    /// On a missing directory or one holding no segments (a mistyped
    /// path must not read as an empty trace), open/decode failure, or
    /// out-of-order segments.
    pub fn open_dir<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Self::open_dir_with_registry(dir, &Registry::new())
    }

    /// [`StoreIndex::open_dir`] reporting telemetry into `registry` —
    /// every segment reader and the query caches share it.
    ///
    /// # Errors
    ///
    /// See [`StoreIndex::open_dir`].
    pub fn open_dir_with_registry<P: AsRef<Path>>(dir: P, registry: &Registry) -> Result<Self> {
        let dir = dir.as_ref();
        if !dir.is_dir() {
            return Err(StoreError::Format(format!(
                "{} is not a directory",
                dir.display()
            )));
        }
        let catalog = SegmentCatalog::open(dir)?;
        if catalog.is_empty() {
            return Err(StoreError::Format(format!(
                "{} holds no trace segments",
                dir.display()
            )));
        }
        let mut readers = Vec::with_capacity(catalog.len());
        for path in catalog.paths() {
            readers.push(Arc::new(StoreReader::open_with_registry(path, registry)?));
        }
        Self::from_readers_in(readers, parallel::threads(), registry)
    }

    /// Indexes all of an already-open store.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn from_reader(reader: Arc<StoreReader>) -> Result<Self> {
        Self::from_reader_with_threads(reader, parallel::threads())
    }

    /// [`StoreIndex::from_reader`] with an explicit construction-pass
    /// worker count (bit-identical for any count).
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn from_reader_with_threads(reader: Arc<StoreReader>, threads: usize) -> Result<Self> {
        Self::from_readers_with_threads(vec![reader], threads)
    }

    /// Indexes the concatenation of already-open stores (segments in
    /// time order).
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure or out-of-order segments.
    pub fn from_readers(readers: Vec<Arc<StoreReader>>) -> Result<Self> {
        Self::from_readers_with_threads(readers, parallel::threads())
    }

    /// [`StoreIndex::from_readers`] reporting telemetry into
    /// `registry`. The readers keep whatever registry they were opened
    /// with; this sets where the index's own `query.*` instruments
    /// live.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure or out-of-order segments.
    pub fn from_readers_with_registry(
        readers: Vec<Arc<StoreReader>>,
        registry: &Registry,
    ) -> Result<Self> {
        Self::from_readers_in(readers, parallel::threads(), registry)
    }

    /// [`StoreIndex::from_readers`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure or out-of-order segments.
    pub fn from_readers_with_threads(
        readers: Vec<Arc<StoreReader>>,
        threads: usize,
    ) -> Result<Self> {
        Self::from_readers_in(readers, threads, &Registry::new())
    }

    /// The shared tail of every `from_readers` flavor: validates
    /// segment ordering, then runs the construction pass.
    fn from_readers_in(
        readers: Vec<Arc<StoreReader>>,
        threads: usize,
        registry: &Registry,
    ) -> Result<Self> {
        // Adjacent non-empty segments must not travel back in time:
        // the concatenation is analyzed as one time-ordered trace.
        let mut prev_max: Option<u64> = None;
        for (i, r) in readers.iter().enumerate() {
            let metas = r.chunks().iter().filter(|m| m.records > 0);
            for m in metas {
                if prev_max.is_some_and(|p| m.min_micros < p) {
                    return Err(StoreError::Format(format!(
                        "segment {i} begins before its predecessor ends"
                    )));
                }
                prev_max = Some(m.max_micros);
            }
        }
        Self::build_with_threads(readers, 0, u64::MAX, threads, registry)
    }

    /// The chunk-parallel construction pass.
    fn build(
        readers: Vec<Arc<StoreReader>>,
        start: u64,
        end: u64,
        registry: &Registry,
    ) -> Result<Self> {
        Self::build_with_threads(readers, start, end, parallel::threads(), registry)
    }

    /// See [`StoreIndex::build`].
    fn build_with_threads(
        readers: Vec<Arc<StoreReader>>,
        start: u64,
        end: u64,
        threads: usize,
        registry: &Registry,
    ) -> Result<Self> {
        let chunks = overlapping_chunks(&readers, start, end);
        let parts: Vec<Result<PartialIndex>> = parallel::run_sharded(chunks.len(), threads, |i| {
            let (ri, ci) = chunks[i];
            let records = readers[ri].read_chunk(ci)?;
            Ok(PartialIndex::from_records(
                records
                    .iter()
                    .filter(|r| r.micros >= start && r.micros < end),
            ))
        });
        let mut ordered = Vec::with_capacity(parts.len());
        for p in parts {
            ordered.push(p?);
        }
        let base = PartialIndex::merge_ordered(ordered);
        Ok(StoreIndex {
            readers,
            start,
            end,
            base,
            caches: ProductCaches::with_registry(registry),
            registry: registry.clone(),
        })
    }

    /// The underlying reader of a single-store index (the first
    /// segment's reader otherwise).
    ///
    /// # Panics
    ///
    /// If the index has no segments at all (an empty directory).
    pub fn reader(&self) -> &Arc<StoreReader> {
        self.readers.first().expect("index over at least one store")
    }

    /// Every underlying reader, in segment order.
    pub fn readers(&self) -> &[Arc<StoreReader>] {
        &self.readers
    }

    /// Total chunks across every segment.
    pub fn chunk_count(&self) -> usize {
        self.readers.iter().map(|r| r.chunk_count()).sum()
    }

    /// Chunk decodes served across every segment since open.
    pub fn chunks_decoded(&self) -> u64 {
        self.readers.iter().map(|r| r.chunks_decoded()).sum()
    }

    /// This view's records whose primary handle is `fh`, in time order.
    ///
    /// Planned in two cuts: whole segments are dismissed first — by
    /// folded footer time range against the view's window, then by
    /// "no chunk filter admits `fh`" ([`StoreReader::prune_window`] /
    /// [`StoreReader::prune_file`], counted as
    /// `store.segments_pruned`) — and only the survivors' chunks are
    /// tested individually against their footer time ranges and
    /// [`crate::format::FileIdFilter`]s. On a multi-segment catalog a
    /// single file's records usually live in a handful of chunks, so
    /// most segments are never touched (observable via
    /// [`StoreReader::chunks_decoded`]). The result always equals
    /// filtering a full scan.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn file_records(&self, fh: FileId) -> Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        for reader in &self.readers {
            if reader.prune_window(self.start, self.end) || reader.prune_file(fh) {
                continue;
            }
            out.extend(reader.records_for_file_in(fh, self.start, self.end)?);
        }
        Ok(out)
    }

    /// One file's reorder-corrected access stream — the single-file
    /// slice of [`TraceView::accesses`] — computed with chunk skipping
    /// (see [`StoreIndex::file_records`]) instead of a full decode.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn file_accesses(&self, fh: FileId, window_ms: u64) -> Result<Vec<Access>> {
        let mut list: Vec<Access> = self
            .file_records(fh)?
            .iter()
            .filter_map(Access::from_record)
            .collect();
        if window_ms > 0 {
            reorder::sort_within_window(&mut list, window_ms * 1000);
        }
        Ok(list)
    }

    /// One file's run table — the single-file slice of
    /// [`TraceView::runs`] — computed with chunk skipping.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn file_runs(&self, fh: FileId, window_ms: u64, opts: RunOptions) -> Result<Vec<Run>> {
        Ok(split_runs(fh, &self.file_accesses(fh, window_ms)?, opts))
    }
}

impl RecordStream for StoreIndex {
    /// Streams the view's records in time order via [`stream_records`]
    /// (pipelined decode when `NFSTRACE_THREADS >= 2`).
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure after a successful open — a store
    /// corrupted (or deleted) mid-analysis.
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord)) {
        stream_records(&self.readers, self.start, self.end, f);
    }
}

impl TraceView for StoreIndex {
    fn len(&self) -> usize {
        self.base.len
    }

    fn summary(&self) -> &SummaryStats {
        &self.base.summary
    }

    fn hourly(&self) -> &HourlySeries {
        &self.base.hourly
    }

    fn names(&self) -> &NamePredictionReport {
        self.caches.names(self)
    }

    fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        self.caches.accesses(&self.base.raw, window_ms)
    }

    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        self.caches.runs(&self.base.raw, window_ms, opts)
    }

    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        self.caches.lifetime(self, cfg)
    }

    fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        self.caches.weekday_lifetime(self)
    }

    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        nfstrace_core::reorder::swap_fraction_sweep(&self.base.raw, windows_ms)
    }

    /// # Panics
    ///
    /// On chunk read/decode failure (see
    /// [`RecordStream::for_each_record`] on this type).
    fn time_window(&self, start_micros: u64, end_micros: u64) -> StoreIndex {
        let start = start_micros.max(self.start);
        let end = end_micros.min(self.end);
        Self::build(self.readers.clone(), start, end.max(start), &self.registry)
            .unwrap_or_else(|e| panic!("store unreadable while windowing: {e}"))
    }

    fn sort_passes(&self) -> u64 {
        self.caches.sort_passes()
    }

    fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>> {
        self.caches.coverage(self, bucket_micros)
    }

    fn prepare(&self, requests: &[ReplayRequest]) {
        self.caches.prepare(self, requests);
    }

    fn decode_passes(&self) -> u64 {
        self.caches.decode_passes()
    }
}
