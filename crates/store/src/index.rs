//! The out-of-core analysis index over a chunked store.

use crate::error::Result;
use crate::reader::StoreReader;
use nfstrace_core::hourly::HourlySeries;
use nfstrace_core::index::{
    AccessMap, IndexBase, PartialIndex, ProductCaches, RecordStream, TraceView,
};
use nfstrace_core::lifetime::{LifetimeConfig, LifetimeReport};
use nfstrace_core::names::NamePredictionReport;
use nfstrace_core::parallel;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::reorder::SwapPoint;
use nfstrace_core::runs::{Run, RunOptions};
use nfstrace_core::summary::SummaryStats;
use std::path::Path;
use std::sync::Arc;

/// A [`TraceView`] whose records live on disk.
///
/// Construction builds one [`PartialIndex`] per store chunk — sharded
/// across `NFSTRACE_THREADS` worker threads by
/// [`parallel::run_sharded`] — and merges them in chunk order, so the
/// summary counters, hourly buckets, and per-file access lists are
/// bit-identical to [`nfstrace_core::index::TraceIndex::new`] over the
/// same records while peak resident *record* memory stays bounded by
/// (chunk size × worker count), not trace size. Record-replaying
/// analyses (block lifetimes, name prediction, hierarchy coverage)
/// stream chunk by chunk through [`RecordStream`].
///
/// Time windows ([`TraceView::time_window`]) share the underlying
/// [`StoreReader`] via [`Arc`] and skip chunks whose footer time range
/// misses the window entirely.
#[derive(Debug)]
pub struct StoreIndex {
    reader: Arc<StoreReader>,
    /// This view's half-open time range.
    start: u64,
    end: u64,
    base: IndexBase,
    caches: ProductCaches,
}

impl StoreIndex {
    /// Opens a store file and indexes all of it.
    ///
    /// # Errors
    ///
    /// On open/decode failure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::from_reader(Arc::new(StoreReader::open(path)?))
    }

    /// Indexes all of an already-open store.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn from_reader(reader: Arc<StoreReader>) -> Result<Self> {
        Self::build(reader, 0, u64::MAX)
    }

    /// The chunk-parallel construction pass.
    fn build(reader: Arc<StoreReader>, start: u64, end: u64) -> Result<Self> {
        let chunks: Vec<usize> = reader
            .chunks()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.overlaps(start, end))
            .map(|(i, _)| i)
            .collect();
        let parts: Vec<Result<PartialIndex>> =
            parallel::run_sharded(chunks.len(), parallel::threads(), |i| {
                let records = reader.read_chunk(chunks[i])?;
                Ok(PartialIndex::from_records(
                    records
                        .iter()
                        .filter(|r| r.micros >= start && r.micros < end),
                ))
            });
        let mut ordered = Vec::with_capacity(parts.len());
        for p in parts {
            ordered.push(p?);
        }
        let base = PartialIndex::merge_ordered(ordered);
        Ok(StoreIndex {
            reader,
            start,
            end,
            base,
            caches: ProductCaches::new(),
        })
    }

    /// The underlying reader.
    pub fn reader(&self) -> &Arc<StoreReader> {
        &self.reader
    }
}

impl RecordStream for StoreIndex {
    /// Streams the view's records in time order, decoding one chunk at
    /// a time and skipping chunks outside the window.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure after a successful open — a store
    /// corrupted (or deleted) mid-analysis.
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord)) {
        for (i, m) in self.reader.chunks().iter().enumerate() {
            if !m.overlaps(self.start, self.end) {
                continue;
            }
            let records = self
                .reader
                .read_chunk(i)
                .unwrap_or_else(|e| panic!("store chunk {i} unreadable mid-analysis: {e}"));
            for r in &records {
                if r.micros >= self.start && r.micros < self.end {
                    f(r);
                }
            }
        }
    }
}

impl TraceView for StoreIndex {
    fn len(&self) -> usize {
        self.base.len
    }

    fn summary(&self) -> &SummaryStats {
        &self.base.summary
    }

    fn hourly(&self) -> &HourlySeries {
        &self.base.hourly
    }

    fn names(&self) -> &NamePredictionReport {
        self.caches.names(self)
    }

    fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        self.caches.accesses(&self.base.raw, window_ms)
    }

    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        self.caches.runs(&self.base.raw, window_ms, opts)
    }

    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        self.caches.lifetime(self, cfg)
    }

    fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        self.caches.weekday_lifetime(self)
    }

    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        nfstrace_core::reorder::swap_fraction_sweep(&self.base.raw, windows_ms)
    }

    /// # Panics
    ///
    /// On chunk read/decode failure (see
    /// [`RecordStream::for_each_record`] on this type).
    fn time_window(&self, start_micros: u64, end_micros: u64) -> StoreIndex {
        let start = start_micros.max(self.start);
        let end = end_micros.min(self.end);
        Self::build(Arc::clone(&self.reader), start, end.max(start))
            .unwrap_or_else(|e| panic!("store unreadable while windowing: {e}"))
    }

    fn sort_passes(&self) -> u64 {
        self.caches.sort_passes()
    }
}
