//! The out-of-core analysis index over a chunked store.

use crate::error::Result;
use crate::reader::StoreReader;
use nfstrace_core::hierarchy::CoveragePoint;
use nfstrace_core::hourly::HourlySeries;
use nfstrace_core::index::{
    AccessMap, IndexBase, PartialIndex, ProductCaches, RecordStream, ReplayRequest, TraceView,
};
use nfstrace_core::lifetime::{LifetimeConfig, LifetimeReport};
use nfstrace_core::names::NamePredictionReport;
use nfstrace_core::parallel;
use nfstrace_core::record::{FileId, TraceRecord};
use nfstrace_core::reorder::{self, Access, SwapPoint};
use nfstrace_core::runs::{split_runs, Run, RunOptions};
use nfstrace_core::summary::SummaryStats;
use std::path::Path;
use std::sync::Arc;

/// A [`TraceView`] whose records live on disk.
///
/// Construction builds one [`PartialIndex`] per store chunk — sharded
/// across `NFSTRACE_THREADS` worker threads by
/// [`parallel::run_sharded`] — and merges them in chunk order, so the
/// summary counters, hourly buckets, and per-file access lists are
/// bit-identical to [`nfstrace_core::index::TraceIndex::new`] over the
/// same records while peak resident *record* memory stays bounded by
/// (chunk size × worker count), not trace size. Record-replaying
/// analyses (block lifetimes, name prediction, hierarchy coverage)
/// stream chunk by chunk through [`RecordStream`] — and batched through
/// [`TraceView::prepare`] they all ride **one** fused decode pass, so a
/// full analysis suite costs construction + one replay ≈ two decodes
/// per chunk (asserted end to end by `repro --store` via
/// [`TraceView::decode_passes`] and [`StoreReader::chunks_decoded`]).
///
/// Time windows ([`TraceView::time_window`]) share the underlying
/// [`StoreReader`] via [`Arc`] and skip chunks whose footer time range
/// misses the window entirely.
#[derive(Debug)]
pub struct StoreIndex {
    reader: Arc<StoreReader>,
    /// This view's half-open time range.
    start: u64,
    end: u64,
    base: IndexBase,
    caches: ProductCaches,
}

impl StoreIndex {
    /// Opens a store file and indexes all of it.
    ///
    /// # Errors
    ///
    /// On open/decode failure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::from_reader(Arc::new(StoreReader::open(path)?))
    }

    /// Indexes all of an already-open store.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn from_reader(reader: Arc<StoreReader>) -> Result<Self> {
        Self::from_reader_with_threads(reader, parallel::threads())
    }

    /// [`StoreIndex::from_reader`] with an explicit construction-pass
    /// worker count (bit-identical for any count).
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn from_reader_with_threads(reader: Arc<StoreReader>, threads: usize) -> Result<Self> {
        Self::build_with_threads(reader, 0, u64::MAX, threads)
    }

    /// The chunk-parallel construction pass.
    fn build(reader: Arc<StoreReader>, start: u64, end: u64) -> Result<Self> {
        Self::build_with_threads(reader, start, end, parallel::threads())
    }

    /// See [`StoreIndex::build`].
    fn build_with_threads(
        reader: Arc<StoreReader>,
        start: u64,
        end: u64,
        threads: usize,
    ) -> Result<Self> {
        let chunks: Vec<usize> = reader
            .chunks()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.overlaps(start, end))
            .map(|(i, _)| i)
            .collect();
        let parts: Vec<Result<PartialIndex>> = parallel::run_sharded(chunks.len(), threads, |i| {
            let records = reader.read_chunk(chunks[i])?;
            Ok(PartialIndex::from_records(
                records
                    .iter()
                    .filter(|r| r.micros >= start && r.micros < end),
            ))
        });
        let mut ordered = Vec::with_capacity(parts.len());
        for p in parts {
            ordered.push(p?);
        }
        let base = PartialIndex::merge_ordered(ordered);
        Ok(StoreIndex {
            reader,
            start,
            end,
            base,
            caches: ProductCaches::new(),
        })
    }

    /// The underlying reader.
    pub fn reader(&self) -> &Arc<StoreReader> {
        &self.reader
    }

    /// This view's records whose primary handle is `fh`, in time order.
    ///
    /// Decodes only the chunks whose footer time range overlaps the
    /// view **and** whose [`crate::format::FileIdFilter`] could contain
    /// `fh` — on a multi-chunk store a single file's records usually
    /// live in a handful of chunks, so most chunks are never touched
    /// (observable via [`StoreReader::chunks_decoded`]). The result
    /// always equals filtering a full scan.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn file_records(&self, fh: FileId) -> Result<Vec<TraceRecord>> {
        self.reader.records_for_file_in(fh, self.start, self.end)
    }

    /// One file's reorder-corrected access stream — the single-file
    /// slice of [`TraceView::accesses`] — computed with chunk skipping
    /// (see [`StoreIndex::file_records`]) instead of a full decode.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn file_accesses(&self, fh: FileId, window_ms: u64) -> Result<Vec<Access>> {
        let mut list: Vec<Access> = self
            .file_records(fh)?
            .iter()
            .filter_map(Access::from_record)
            .collect();
        if window_ms > 0 {
            reorder::sort_within_window(&mut list, window_ms * 1000);
        }
        Ok(list)
    }

    /// One file's run table — the single-file slice of
    /// [`TraceView::runs`] — computed with chunk skipping.
    ///
    /// # Errors
    ///
    /// On chunk read/decode failure.
    pub fn file_runs(&self, fh: FileId, window_ms: u64, opts: RunOptions) -> Result<Vec<Run>> {
        Ok(split_runs(fh, &self.file_accesses(fh, window_ms)?, opts))
    }
}

impl RecordStream for StoreIndex {
    /// Streams the view's records in time order, decoding one chunk at
    /// a time and skipping chunks outside the window.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure after a successful open — a store
    /// corrupted (or deleted) mid-analysis.
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord)) {
        for (i, m) in self.reader.chunks().iter().enumerate() {
            if !m.overlaps(self.start, self.end) {
                continue;
            }
            let records = self
                .reader
                .read_chunk(i)
                .unwrap_or_else(|e| panic!("store chunk {i} unreadable mid-analysis: {e}"));
            for r in &records {
                if r.micros >= self.start && r.micros < self.end {
                    f(r);
                }
            }
        }
    }
}

impl TraceView for StoreIndex {
    fn len(&self) -> usize {
        self.base.len
    }

    fn summary(&self) -> &SummaryStats {
        &self.base.summary
    }

    fn hourly(&self) -> &HourlySeries {
        &self.base.hourly
    }

    fn names(&self) -> &NamePredictionReport {
        self.caches.names(self)
    }

    fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        self.caches.accesses(&self.base.raw, window_ms)
    }

    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        self.caches.runs(&self.base.raw, window_ms, opts)
    }

    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        self.caches.lifetime(self, cfg)
    }

    fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        self.caches.weekday_lifetime(self)
    }

    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        nfstrace_core::reorder::swap_fraction_sweep(&self.base.raw, windows_ms)
    }

    /// # Panics
    ///
    /// On chunk read/decode failure (see
    /// [`RecordStream::for_each_record`] on this type).
    fn time_window(&self, start_micros: u64, end_micros: u64) -> StoreIndex {
        let start = start_micros.max(self.start);
        let end = end_micros.min(self.end);
        Self::build(Arc::clone(&self.reader), start, end.max(start))
            .unwrap_or_else(|e| panic!("store unreadable while windowing: {e}"))
    }

    fn sort_passes(&self) -> u64 {
        self.caches.sort_passes()
    }

    fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>> {
        self.caches.coverage(self, bucket_micros)
    }

    fn prepare(&self, requests: &[ReplayRequest]) {
        self.caches.prepare(self, requests);
    }

    fn decode_passes(&self) -> u64 {
        self.caches.decode_passes()
    }
}
