//! Store reader: footer-driven random access to chunks (v1 and v2).

use crate::codec::{decode_record, read_varint, NameTable};
use crate::compress;
use crate::error::{Result, StoreError};
use crate::format::{
    fnv1a64, ChunkMeta, FileIdFilter, FilterKind, StoreVersion, BLOOM_BYTES, END_MAGIC,
    FILTER_KIND_BLOOM, FILTER_KIND_EXACT, FLAG_COMPRESSED, FLAG_MASK, MAGIC_V1, MAGIC_V2, MAGIC_V3,
    MAX_CHUNK_PAYLOAD, MAX_FILTER_BYTES, V1_ENTRY_BYTES, V2_ENTRY_BYTES,
};
use nfstrace_core::record::{FileId, TraceRecord};
use nfstrace_telemetry::{Counter, Registry};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Reads a chunked trace store.
///
/// Opening parses only the footer; record bytes are read chunk by chunk
/// on demand. Both on-disk format revisions are readable — the leading
/// magic selects the parser, so v1 stores written before the v2 layout
/// (compression, checksums, file filters; see [`crate::format`]) keep
/// working. [`StoreReader::read_chunk`] takes `&self` and opens its
/// own file handle, so chunk decodes can run on any number of threads
/// concurrently — [`nfstrace_core::parallel::run_sharded`] drives the
/// chunk-parallel index builds in `crate::index`.
#[derive(Debug)]
pub struct StoreReader {
    path: PathBuf,
    version: StoreVersion,
    chunks: Vec<ChunkMeta>,
    total_records: u64,
    metrics: StoreReadMetrics,
}

/// Registry handles for the read-side `store.*` metrics: decodes
/// served, chunks skipped by footer filters, whole segments the query
/// planner dismissed without touching a single chunk, and per-file
/// queries that decoded a chunk the filter admitted but that held no
/// record for the file (the filter's false positives).
#[derive(Debug, Clone)]
struct StoreReadMetrics {
    chunks_decoded: Counter,
    chunks_skipped: Counter,
    segments_pruned: Counter,
    filter_false_positives: Counter,
}

impl StoreReadMetrics {
    fn register(registry: &Registry) -> Self {
        StoreReadMetrics {
            chunks_decoded: registry.counter("store.chunks_decoded"),
            chunks_skipped: registry.counter("store.chunks_skipped"),
            segments_pruned: registry.counter("store.segments_pruned"),
            filter_false_positives: registry.counter("store.filter_false_positives"),
        }
    }
}

impl StoreReader {
    /// Opens a store and parses its footer, counting into a private
    /// registry.
    ///
    /// # Errors
    ///
    /// On I/O failure or a malformed/truncated file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_with_registry(path, &Registry::new())
    }

    /// Like [`StoreReader::open`], but counts the `store.*` read
    /// metrics into `registry`. Readers sharing one registry sum
    /// their counts (so [`StoreReader::chunks_decoded`] then reads
    /// the shared total, not this reader's own).
    ///
    /// # Errors
    ///
    /// On I/O failure or a malformed/truncated file.
    pub fn open_with_registry<P: AsRef<Path>>(path: P, registry: &Registry) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut f = File::open(&path)?;
        let file_len = f.metadata()?.len();
        let min_len = (MAGIC_V1.len() + END_MAGIC.len() + 8 + 16) as u64;
        if file_len < min_len {
            return Err(StoreError::Format("file too short for a store".into()));
        }
        let mut head = [0u8; 8];
        f.read_exact(&mut head)?;
        let version = if &head == MAGIC_V1 {
            StoreVersion::V1
        } else if &head == MAGIC_V2 {
            StoreVersion::V2
        } else if &head == MAGIC_V3 {
            StoreVersion::V3
        } else {
            return Err(StoreError::Format("bad leading magic".into()));
        };
        f.seek(SeekFrom::End(-16))?;
        let mut trailer = [0u8; 16];
        f.read_exact(&mut trailer)?;
        if &trailer[8..] != END_MAGIC {
            return Err(StoreError::Format("bad trailing magic".into()));
        }
        let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let footer_end = file_len - 16;
        if footer_offset > footer_end.saturating_sub(16) {
            return Err(StoreError::Format("footer offset out of range".into()));
        }
        f.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; (footer_end - footer_offset) as usize];
        f.read_exact(&mut footer)?;

        if version != StoreVersion::V1 {
            if footer.len() < 24 {
                return Err(StoreError::Format("footer size mismatch".into()));
            }
            let sum_at = footer.len() - 8;
            let stored = u64::from_le_bytes(footer[sum_at..].try_into().expect("8 bytes"));
            if fnv1a64(&footer[..sum_at]) != stored {
                return Err(StoreError::Format("footer checksum mismatch".into()));
            }
        }
        let (mut chunks, total_records) = match version {
            StoreVersion::V1 | StoreVersion::V2 => Self::parse_fixed_footer(&footer, version)?,
            StoreVersion::V3 => Self::parse_v3_footer(&footer)?,
        };
        if chunks.iter().map(|m| m.records).sum::<u64>() != total_records {
            return Err(StoreError::Format("record total mismatch".into()));
        }
        // Validate the byte geometry up front so a corrupt footer is a
        // Format error here, not an allocation abort in read_chunk.
        let mut expect_offset = MAGIC_V1.len() as u64;
        for (i, m) in chunks.iter().enumerate() {
            if m.offset != expect_offset {
                return Err(StoreError::Format(format!(
                    "chunk {i} offset {} does not follow its predecessor",
                    m.offset
                )));
            }
            expect_offset = m.offset.checked_add(m.len).ok_or_else(|| {
                StoreError::Format(format!("chunk {i} length overflows the file"))
            })?;
            if expect_offset > footer_offset {
                return Err(StoreError::Format(format!(
                    "chunk {i} extends past the footer"
                )));
            }
            // Every record costs well over one encoded byte; an entry
            // claiming more records than bytes is corrupt. A compressed
            // v2 chunk can legitimately pack many records per stored
            // byte, so its bound is enforced against the decoded
            // payload in read_chunk instead.
            if version == StoreVersion::V1 && m.records > m.len {
                return Err(StoreError::Format(format!(
                    "chunk {i} claims {} records in {} bytes",
                    m.records, m.len
                )));
            }
            if let Some(f) = &m.filter {
                if m.records > 0 && f.min_fh > f.max_fh {
                    return Err(StoreError::Format(format!(
                        "chunk {i} file filter range is inverted"
                    )));
                }
            }
            if m.records > 0 && m.min_micros > m.max_micros {
                return Err(StoreError::Format(format!(
                    "chunk {i} time range is inverted"
                )));
            }
        }
        // Normalize the degenerate time range a zero-record chunk may
        // carry (an empty chunk has no first or last record, so its
        // min/max words are whatever the writer left — possibly
        // min > max). Pruning compares against these words; pinning
        // them to the canonical empty range means no comparison can
        // ever dismiss a live chunk or admit an empty one.
        for m in &mut chunks {
            if m.records == 0 {
                m.min_micros = u64::MAX;
                m.max_micros = 0;
            }
        }
        Ok(StoreReader {
            path,
            version,
            chunks,
            total_records,
            metrics: StoreReadMetrics::register(registry),
        })
    }

    /// Parses the fixed-stride v1/v2 footer body into chunk metas and
    /// the total record count.
    fn parse_fixed_footer(footer: &[u8], version: StoreVersion) -> Result<(Vec<ChunkMeta>, u64)> {
        let (entry_bytes, tail_bytes) = match version {
            StoreVersion::V1 => (V1_ENTRY_BYTES, 16),
            _ => (V2_ENTRY_BYTES, 24),
        };
        if footer.len() < tail_bytes || !(footer.len() - tail_bytes).is_multiple_of(entry_bytes) {
            return Err(StoreError::Format("footer size mismatch".into()));
        }
        let tail = &footer[footer.len() - tail_bytes..];
        let chunk_count = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes")) as usize;
        let total_records = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
        if chunk_count * entry_bytes != footer.len() - tail_bytes {
            return Err(StoreError::Format("chunk count mismatch".into()));
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        for i in 0..chunk_count {
            let e = &footer[i * entry_bytes..(i + 1) * entry_bytes];
            let word =
                |j: usize| u64::from_le_bytes(e[j * 8..(j + 1) * 8].try_into().expect("8 bytes"));
            let (checksum, filter) = match version {
                StoreVersion::V1 => (None, None),
                _ => (
                    Some(word(7)),
                    Some(FileIdFilter {
                        min_fh: word(5),
                        max_fh: word(6),
                        kind: FilterKind::Bloom {
                            hashes: 3,
                            bits: e[64..64 + BLOOM_BYTES].to_vec(),
                        },
                    }),
                ),
            };
            chunks.push(ChunkMeta {
                offset: word(0),
                len: word(1),
                records: word(2),
                min_micros: word(3),
                max_micros: word(4),
                checksum,
                filter,
            });
        }
        Ok((chunks, total_records))
    }

    /// Parses the v3 footer body (counts first, then variable-length
    /// entries carrying adaptively sized filters, then the checksum the
    /// caller already verified).
    fn parse_v3_footer(footer: &[u8]) -> Result<(Vec<ChunkMeta>, u64)> {
        // The trailing checksum was verified by the caller; everything
        // before it is the body this parses exactly to its end.
        let body = &footer[..footer.len() - 8];
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = body
                .get(*pos..*pos + n)
                .ok_or_else(|| StoreError::Format("footer size mismatch".into()))?;
            *pos += n;
            Ok(s)
        };
        let rd_u64 = |pos: &mut usize| -> Result<u64> {
            Ok(u64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            ))
        };
        let rd_u32 = |pos: &mut usize| -> Result<u32> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("4 bytes"),
            ))
        };
        let chunk_count = rd_u64(&mut pos)?;
        let total_records = rd_u64(&mut pos)?;
        // The smallest possible entry is 8 words + kind byte + an empty
        // exact set's count: a corrupt count cannot force a huge
        // allocation.
        if chunk_count > (body.len() / (8 * 8 + 5)) as u64 {
            return Err(StoreError::Format("chunk count mismatch".into()));
        }
        let mut chunks = Vec::with_capacity(chunk_count as usize);
        for i in 0..chunk_count {
            let mut word = [0u64; 8];
            for w in &mut word {
                *w = rd_u64(&mut pos)?;
            }
            let kind = take(&mut pos, 1)?[0];
            let kind = match kind {
                FILTER_KIND_EXACT => {
                    let count = rd_u32(&mut pos)? as usize;
                    let raw = take(
                        &mut pos,
                        count.checked_mul(8).ok_or_else(|| {
                            StoreError::Format(format!("chunk {i} filter set overflows"))
                        })?,
                    )?;
                    let handles: Vec<u64> = raw
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect();
                    if !handles.windows(2).all(|w| w[0] < w[1]) {
                        return Err(StoreError::Format(format!(
                            "chunk {i} exact filter is not sorted"
                        )));
                    }
                    FilterKind::Exact(handles)
                }
                FILTER_KIND_BLOOM => {
                    let hashes = u32::from(take(&mut pos, 1)?[0]);
                    if !(1..=64).contains(&hashes) {
                        return Err(StoreError::Format(format!(
                            "chunk {i} filter hash count {hashes} out of range"
                        )));
                    }
                    let nbytes = rd_u32(&mut pos)? as usize;
                    if nbytes > MAX_FILTER_BYTES {
                        return Err(StoreError::Format(format!(
                            "chunk {i} claims a {nbytes}-byte filter"
                        )));
                    }
                    FilterKind::Bloom {
                        hashes,
                        bits: take(&mut pos, nbytes)?.to_vec(),
                    }
                }
                other => {
                    return Err(StoreError::Format(format!(
                        "chunk {i} has unknown filter kind {other}"
                    )))
                }
            };
            chunks.push(ChunkMeta {
                offset: word[0],
                len: word[1],
                records: word[2],
                min_micros: word[3],
                max_micros: word[4],
                checksum: Some(word[7]),
                filter: Some(FileIdFilter {
                    min_fh: word[5],
                    max_fh: word[6],
                    kind,
                }),
            });
        }
        if pos != body.len() {
            return Err(StoreError::Format("footer size mismatch".into()));
        }
        Ok((chunks, total_records))
    }

    /// The on-disk format revision this store was written with.
    pub fn version(&self) -> StoreVersion {
        self.version
    }

    /// Per-chunk footer entries, in chunk-ordinal order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total records across all chunks.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many chunk decodes this reader has served since opening
    /// (the `store.chunks_decoded` counter). Index construction plus
    /// one fused replay costs two per chunk; chunk-skipping per-file
    /// queries add less than a full scan.
    pub fn chunks_decoded(&self) -> u64 {
        self.metrics.chunks_decoded.value()
    }

    /// This segment's record time range `(min, max)` micros, folded
    /// from the footer without touching a single chunk — `None` for a
    /// segment holding no records (the normalized empty range, so
    /// empty segments can never confuse pruning arithmetic).
    pub fn time_range(&self) -> Option<(u64, u64)> {
        self.chunks
            .iter()
            .filter(|m| m.records > 0)
            .map(|m| (m.min_micros, m.max_micros))
            .reduce(|(lo, hi), (mlo, mhi)| (lo.min(mlo), hi.max(mhi)))
    }

    /// Query-planner check: `true` when this whole segment can be
    /// dismissed for the window `[start, end)` — its footer time range
    /// misses the window entirely (or it holds no records at all).
    /// Counts a dismissal into `store.segments_pruned`; the caller
    /// skips every chunk without iterating them.
    pub fn prune_window(&self, start: u64, end: u64) -> bool {
        let pruned = match self.time_range() {
            None => true,
            Some((min, max)) => !(min < end && max >= start),
        };
        if pruned {
            self.metrics.segments_pruned.inc();
        }
        pruned
    }

    /// Query-planner check for per-file queries: `true` when no chunk
    /// of this segment could contain a record for `fh` (every chunk is
    /// empty or carries a filter that rejects the handle), counted
    /// into `store.segments_pruned`. Conservative on v1 stores — a
    /// chunk without a filter keeps the segment.
    pub fn prune_file(&self, fh: FileId) -> bool {
        let pruned = self
            .chunks
            .iter()
            .all(|m| m.records == 0 || (m.filter.is_some() && !m.may_contain_file(fh)));
        if pruned {
            self.metrics.segments_pruned.inc();
        }
        pruned
    }

    /// Reads and decodes one chunk. Thread-safe: opens a private file
    /// handle.
    ///
    /// # Errors
    ///
    /// On I/O failure, a bad ordinal, or corrupt chunk bytes — under
    /// v2, any stored byte that does not hash to the footer's chunk
    /// checksum is a [`StoreError::Format`] before decoding begins.
    pub fn read_chunk(&self, ordinal: usize) -> Result<Vec<TraceRecord>> {
        let meta = self
            .chunks
            .get(ordinal)
            .ok_or_else(|| StoreError::Format(format!("no chunk {ordinal}")))?;
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(meta.offset))?;
        let mut bytes = vec![0u8; meta.len as usize];
        f.read_exact(&mut bytes)?;
        self.metrics.chunks_decoded.inc();

        let decompressed: Vec<u8>;
        let payload: &[u8] = match self.version {
            StoreVersion::V1 => &bytes,
            StoreVersion::V2 | StoreVersion::V3 => {
                let expect = meta.checksum.expect("v2/v3 metas carry checksums");
                if fnv1a64(&bytes) != expect {
                    return Err(StoreError::Format(format!(
                        "chunk {ordinal} checksum mismatch"
                    )));
                }
                let &flags = bytes
                    .first()
                    .ok_or_else(|| StoreError::Format(format!("chunk {ordinal} is empty")))?;
                if flags & !FLAG_MASK != 0 {
                    return Err(StoreError::Format(format!(
                        "chunk {ordinal} has unknown flags {flags:#04x}"
                    )));
                }
                if flags & FLAG_COMPRESSED != 0 {
                    let mut pos = 1;
                    let raw_len = read_varint(&bytes, &mut pos)?;
                    if raw_len > MAX_CHUNK_PAYLOAD {
                        return Err(StoreError::Format(format!(
                            "chunk {ordinal} claims a {raw_len}-byte payload"
                        )));
                    }
                    decompressed = compress::decompress(&bytes[pos..], raw_len as usize)?;
                    &decompressed
                } else {
                    &bytes[1..]
                }
            }
        };

        let mut pos = 0;
        let names = NameTable::decode(payload, &mut pos)?;
        let count = read_varint(payload, &mut pos)?;
        if count != meta.records {
            return Err(StoreError::Format(format!(
                "chunk {ordinal}: header says {count} records, footer {}",
                meta.records
            )));
        }
        if count > payload.len() as u64 {
            return Err(StoreError::Format(format!(
                "chunk {ordinal} claims {count} records in a {}-byte payload",
                payload.len()
            )));
        }
        let mut prev = read_varint(payload, &mut pos)?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let r = decode_record(payload, &mut pos, prev, &names)?;
            prev = r.micros;
            out.push(r);
        }
        if pos != payload.len() {
            return Err(StoreError::Format(format!(
                "chunk {ordinal}: {} trailing bytes",
                payload.len() - pos
            )));
        }
        Ok(out)
    }

    /// Streams every record in chunk order (= time order), holding only
    /// one decoded chunk at a time.
    ///
    /// # Errors
    ///
    /// Propagates the first chunk read/decode failure.
    pub fn for_each(&self, mut f: impl FnMut(&TraceRecord)) -> Result<()> {
        for i in 0..self.chunks.len() {
            for r in &self.read_chunk(i)? {
                f(r);
            }
        }
        Ok(())
    }

    /// All records whose primary handle is `fh`, in time order,
    /// decoding only the chunks whose footer [`FileIdFilter`] could
    /// contain it. On a v1 store (no filters) this degrades to a full
    /// scan; either way the result equals filtering a full scan.
    ///
    /// # Errors
    ///
    /// Propagates the first chunk read/decode failure.
    pub fn records_for_file(&self, fh: FileId) -> Result<Vec<TraceRecord>> {
        self.records_for_file_in(fh, 0, u64::MAX)
    }

    /// [`StoreReader::records_for_file`] restricted to capture times in
    /// `[start, end)` — the one copy of the skip-then-filter loop, so
    /// windowed views (`StoreIndex::file_records`) and whole-store
    /// queries share the same chunk-skipping logic.
    ///
    /// # Errors
    ///
    /// Propagates the first chunk read/decode failure.
    pub fn records_for_file_in(
        &self,
        fh: FileId,
        start: u64,
        end: u64,
    ) -> Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        for (i, m) in self.chunks.iter().enumerate() {
            if !m.overlaps(start, end) || !m.may_contain_file(fh) {
                self.metrics.chunks_skipped.inc();
                continue;
            }
            let mut holds_file = false;
            for r in self.read_chunk(i)? {
                if r.fh == fh {
                    holds_file = true;
                    if r.micros >= start && r.micros < end {
                        out.push(r);
                    }
                }
            }
            if !holds_file && m.filter.is_some() {
                // The footer filter admitted a chunk with no record
                // for this file: a false positive we paid a decode
                // for. (v1 chunks have no filter; their full scans
                // are not the filter's fault.)
                self.metrics.filter_false_positives.inc();
            }
        }
        Ok(out)
    }
}
