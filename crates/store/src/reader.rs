//! Store reader: footer-driven random access to chunks.

use crate::codec::{decode_record, read_varint, NameTable};
use crate::error::{Result, StoreError};
use crate::format::{ChunkMeta, END_MAGIC, MAGIC};
use nfstrace_core::record::TraceRecord;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Reads a chunked trace store.
///
/// Opening parses only the footer; record bytes are read chunk by chunk
/// on demand. [`StoreReader::read_chunk`] takes `&self` and opens its
/// own file handle, so chunk decodes can run on any number of threads
/// concurrently — [`nfstrace_core::parallel::run_sharded`] drives the
/// chunk-parallel index builds in `crate::index`.
#[derive(Debug)]
pub struct StoreReader {
    path: PathBuf,
    chunks: Vec<ChunkMeta>,
    total_records: u64,
}

impl StoreReader {
    /// Opens a store and parses its footer.
    ///
    /// # Errors
    ///
    /// On I/O failure or a malformed/truncated file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut f = File::open(&path)?;
        let file_len = f.metadata()?.len();
        let min_len = (MAGIC.len() + END_MAGIC.len() + 8 + 16) as u64;
        if file_len < min_len {
            return Err(StoreError::Format("file too short for a store".into()));
        }
        let mut head = [0u8; 8];
        f.read_exact(&mut head)?;
        if &head != MAGIC {
            return Err(StoreError::Format("bad leading magic".into()));
        }
        f.seek(SeekFrom::End(-16))?;
        let mut trailer = [0u8; 16];
        f.read_exact(&mut trailer)?;
        if &trailer[8..] != END_MAGIC {
            return Err(StoreError::Format("bad trailing magic".into()));
        }
        let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let footer_end = file_len - 16;
        if footer_offset > footer_end.saturating_sub(16) {
            return Err(StoreError::Format("footer offset out of range".into()));
        }
        f.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; (footer_end - footer_offset) as usize];
        f.read_exact(&mut footer)?;
        if footer.len() < 16 || !(footer.len() - 16).is_multiple_of(40) {
            return Err(StoreError::Format("footer size mismatch".into()));
        }
        let tail = &footer[footer.len() - 16..];
        let chunk_count = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes")) as usize;
        let total_records = u64::from_le_bytes(tail[8..].try_into().expect("8 bytes"));
        if chunk_count * 40 != footer.len() - 16 {
            return Err(StoreError::Format("chunk count mismatch".into()));
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        for i in 0..chunk_count {
            let e = &footer[i * 40..(i + 1) * 40];
            let word =
                |j: usize| u64::from_le_bytes(e[j * 8..(j + 1) * 8].try_into().expect("8 bytes"));
            chunks.push(ChunkMeta {
                offset: word(0),
                len: word(1),
                records: word(2),
                min_micros: word(3),
                max_micros: word(4),
            });
        }
        if chunks.iter().map(|m| m.records).sum::<u64>() != total_records {
            return Err(StoreError::Format("record total mismatch".into()));
        }
        // Validate the byte geometry up front so a corrupt footer is a
        // Format error here, not an allocation abort in read_chunk.
        let mut expect_offset = MAGIC.len() as u64;
        for (i, m) in chunks.iter().enumerate() {
            if m.offset != expect_offset {
                return Err(StoreError::Format(format!(
                    "chunk {i} offset {} does not follow its predecessor",
                    m.offset
                )));
            }
            expect_offset = m.offset.checked_add(m.len).ok_or_else(|| {
                StoreError::Format(format!("chunk {i} length overflows the file"))
            })?;
            if expect_offset > footer_offset {
                return Err(StoreError::Format(format!(
                    "chunk {i} extends past the footer"
                )));
            }
            // Every record costs well over one encoded byte; an entry
            // claiming more records than bytes is corrupt.
            if m.records > m.len {
                return Err(StoreError::Format(format!(
                    "chunk {i} claims {} records in {} bytes",
                    m.records, m.len
                )));
            }
        }
        Ok(StoreReader {
            path,
            chunks,
            total_records,
        })
    }

    /// Per-chunk footer entries, in chunk-ordinal order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total records across all chunks.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads and decodes one chunk. Thread-safe: opens a private file
    /// handle.
    ///
    /// # Errors
    ///
    /// On I/O failure, a bad ordinal, or corrupt chunk bytes.
    pub fn read_chunk(&self, ordinal: usize) -> Result<Vec<TraceRecord>> {
        let meta = *self
            .chunks
            .get(ordinal)
            .ok_or_else(|| StoreError::Format(format!("no chunk {ordinal}")))?;
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(meta.offset))?;
        let mut bytes = vec![0u8; meta.len as usize];
        f.read_exact(&mut bytes)?;
        let mut pos = 0;
        let names = NameTable::decode(&bytes, &mut pos)?;
        let count = read_varint(&bytes, &mut pos)?;
        if count != meta.records {
            return Err(StoreError::Format(format!(
                "chunk {ordinal}: header says {count} records, footer {}",
                meta.records
            )));
        }
        let mut prev = read_varint(&bytes, &mut pos)?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let r = decode_record(&bytes, &mut pos, prev, &names)?;
            prev = r.micros;
            out.push(r);
        }
        if pos != bytes.len() {
            return Err(StoreError::Format(format!(
                "chunk {ordinal}: {} trailing bytes",
                bytes.len() - pos
            )));
        }
        Ok(out)
    }

    /// Streams every record in chunk order (= time order), holding only
    /// one decoded chunk at a time.
    ///
    /// # Errors
    ///
    /// Propagates the first chunk read/decode failure.
    pub fn for_each(&self, mut f: impl FnMut(&TraceRecord)) -> Result<()> {
        for i in 0..self.chunks.len() {
            for r in &self.read_chunk(i)? {
                f(r);
            }
        }
        Ok(())
    }
}
