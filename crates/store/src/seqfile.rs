//! Per-segment arrival-sequence sidecars (`seg-NNNNNN.nfseq`).
//!
//! A sharded ingest splits one globally ordered record stream across
//! shards, so a single shard's segments no longer carry enough
//! information to reconstruct the original interleave: records with
//! equal timestamps tie-break on *arrival order*, which the store
//! format does not (and should not) record. When sequence tracking is
//! on, each sealed segment gets a sidecar file holding the **global
//! arrival sequence number** of every record in it, in record order —
//! the merge-on-read view k-way merges shards by these sequences and
//! replays the exact original stream, and the compactor
//! ([`crate::compact`]) concatenates sidecars when it merges adjacent
//! segments.
//!
//! The sidecar is deliberately *not* part of the store format: a plain
//! segment directory stays byte-identical with or without tracking,
//! and every store reader keeps working unchanged. Durability follows
//! the segment protocol: the sidecar is written (tmp + rename) **before**
//! its segment is renamed to its sealed name, so a sealed segment always
//! has its sidecar; a crash in between leaves an orphan sidecar that the
//! next sweeping open ([`crate::segments::SegmentCatalog::open_and_sweep`])
//! removes.
//!
//! Layout (all little-endian): magic `NFSQ`, `u8` version, `u64`
//! count, `count × u64` sequences, `u64` FNV-1a checksum over the
//! sequence bytes.

use crate::error::{Result, StoreError};
use crate::format::fnv1a64;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"NFSQ";
const VERSION: u8 = 1;

/// File suffix every sequence sidecar carries.
pub const SEQ_SUFFIX: &str = ".nfseq";

/// The sidecar path for a sealed segment path
/// (`seg-000042.nfseg` → `seg-000042.nfseq`).
pub fn sidecar_path(segment: &Path) -> PathBuf {
    segment.with_extension("nfseq")
}

fn seq_bytes(seqs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(seqs.len() * 8);
    for &s in seqs {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Writes the sidecar body for `segment` under its temp name
/// (`….nfseq.tmp`, synced) and returns that temp path — the first
/// half of [`write_sidecar`], split out so the crash-safe seal/compact
/// protocols can treat "sidecar bytes durable" and "sidecar visible"
/// as separate filesystem steps.
///
/// # Errors
///
/// On I/O failure.
pub fn write_sidecar_tmp(segment: &Path, seqs: &[u64]) -> Result<PathBuf> {
    let tmp = sidecar_path(segment).with_extension("nfseq.tmp");
    let body = seq_bytes(seqs);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(MAGIC)?;
    file.write_all(&[VERSION])?;
    file.write_all(&(seqs.len() as u64).to_le_bytes())?;
    file.write_all(&body)?;
    file.write_all(&fnv1a64(&body).to_le_bytes())?;
    file.sync_all()?;
    Ok(tmp)
}

/// Writes the sidecar for `segment` (tmp + rename, so a reader never
/// sees a torn sidecar).
///
/// # Errors
///
/// On I/O failure.
pub fn write_sidecar(segment: &Path, seqs: &[u64]) -> Result<()> {
    let tmp = write_sidecar_tmp(segment, seqs)?;
    std::fs::rename(tmp, sidecar_path(segment))?;
    Ok(())
}

/// Reads the sidecar for `segment` and validates magic, version,
/// length, and checksum.
///
/// # Errors
///
/// [`StoreError::Sidecar`] on a missing, truncated, or corrupt sidecar
/// — the `problem` string distinguishes "missing" (the segment was
/// sealed without tracking, or a crash was swept) from byte rot, so a
/// sharded reopen can report exactly what happened.
pub fn read_sidecar(segment: &Path) -> Result<Vec<u64>> {
    let path = sidecar_path(segment);
    let fail = |what: String| StoreError::Sidecar {
        segment: segment.to_path_buf(),
        problem: what,
    };
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                fail(format!(
                    "missing ({} does not exist; the directory was written without \
                     sequence tracking, or the sidecar was swept after a crash)",
                    path.display()
                ))
            } else {
                fail(format!("unreadable: {e}"))
            }
        })?;
    if bytes.len() < 13 || &bytes[..4] != MAGIC {
        return Err(fail("bad magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(fail("unsupported version".into()));
    }
    let count = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")) as usize;
    let body_end = 13 + count * 8;
    if bytes.len() != body_end + 8 {
        return Err(fail("truncated".into()));
    }
    let body = &bytes[13..body_end];
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(fail("checksum mismatch".into()));
    }
    Ok(body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_segment(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nfstrace-seqfile-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("seg-000000.nfseg")
    }

    #[test]
    fn roundtrip() {
        let seg = temp_segment("roundtrip");
        let seqs: Vec<u64> = vec![0, 1, 5, 7, u64::MAX];
        write_sidecar(&seg, &seqs).expect("write");
        assert_eq!(read_sidecar(&seg).expect("read"), seqs);
        write_sidecar(&seg, &[]).expect("rewrite empty");
        assert_eq!(read_sidecar(&seg).expect("read empty"), Vec::<u64>::new());
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let seg = temp_segment("corrupt");
        write_sidecar(&seg, &[1, 2, 3]).expect("write");
        let path = sidecar_path(&seg);
        let mut bytes = std::fs::read(&path).expect("read raw");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            read_sidecar(&seg),
            Err(StoreError::Sidecar { .. })
        ));
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        assert!(matches!(
            read_sidecar(&seg),
            Err(StoreError::Sidecar { .. })
        ));
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }

    #[test]
    fn missing_sidecar_is_a_precise_error() {
        let seg = temp_segment("missing");
        let err = read_sidecar(&seg).expect_err("no sidecar");
        match &err {
            StoreError::Sidecar { segment, problem } => {
                assert_eq!(segment, &seg);
                assert!(problem.contains("missing"), "{problem}");
            }
            other => panic!("expected a Sidecar error, got {other}"),
        }
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }

    #[test]
    fn tmp_then_rename_matches_write_sidecar() {
        let seg = temp_segment("split");
        let tmp = write_sidecar_tmp(&seg, &[9, 10]).expect("tmp");
        assert!(tmp.to_string_lossy().ends_with(".nfseq.tmp"));
        assert!(matches!(
            read_sidecar(&seg),
            Err(StoreError::Sidecar { .. })
        ));
        std::fs::rename(&tmp, sidecar_path(&seg)).expect("rename");
        assert_eq!(read_sidecar(&seg).expect("read"), vec![9, 10]);
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }
}
