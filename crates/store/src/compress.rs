//! Minimal self-contained LZ77 codec for chunk bodies.
//!
//! The workspace builds offline — no flate2/lz4/zstd — so the store
//! carries its own byte-oriented compressor. It is deliberately simple:
//! a single-probe hash table finds 4-byte match anchors, matches extend
//! greedily, and the stream interleaves literal runs with back
//! references. Chunk payloads (delta-encoded, varint-packed records
//! sharing a handful of field shapes) are repetitive enough that this
//! typically removes a third or more of the bytes; incompressible
//! chunks fall back to raw storage at the writer (see
//! [`crate::format`]), so the codec never needs to win.
//!
//! Stream grammar, all integers LEB128 varints (see [`crate::codec`]):
//!
//! ```text
//! stream := seq* last
//! seq    := lit_len, lit_len literal bytes, dist, extra
//! last   := lit_len, lit_len literal bytes
//! ```
//!
//! A back reference copies `MIN_MATCH + extra` bytes starting `dist`
//! bytes (≥ 1) behind the current output position; overlapping copies
//! are allowed, as in every LZ77 family. Decoding is driven by the
//! caller-supplied raw length: the final sequence simply omits the back
//! reference once the output is complete. [`decompress`] validates
//! every distance and length and demands the input be consumed exactly,
//! so corrupt streams surface as [`crate::StoreError::Format`] — never
//! as silently wrong bytes (the chunk checksum catches flips even in
//! streams that would still parse).

use crate::codec::{read_varint, write_varint};
use crate::error::{Result, StoreError};

/// Shortest back reference worth encoding (a match token costs up to
/// three varints).
pub const MIN_MATCH: usize = 4;

const HASH_BITS: u32 = 15;

fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`. Never fails; the output of an incompressible
/// input is the input plus small framing overhead (callers compare
/// sizes and keep the raw form when it wins).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut pos = 0usize;
    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let cand = table[h];
        table[h] = pos;
        if cand == usize::MAX || input[cand..cand + MIN_MATCH] != input[pos..pos + MIN_MATCH] {
            pos += 1;
            continue;
        }
        let mut len = MIN_MATCH;
        while pos + len < input.len() && input[cand + len] == input[pos + len] {
            len += 1;
        }
        write_varint(&mut out, (pos - lit_start) as u64);
        out.extend_from_slice(&input[lit_start..pos]);
        write_varint(&mut out, (pos - cand) as u64);
        write_varint(&mut out, (len - MIN_MATCH) as u64);
        // Index the positions the match covers so later data can still
        // anchor inside it, then continue past it.
        let end = pos + len;
        pos += 1;
        while pos < end && pos + MIN_MATCH <= input.len() {
            table[hash4(&input[pos..])] = pos;
            pos += 1;
        }
        pos = end;
        lit_start = end;
    }
    write_varint(&mut out, (input.len() - lit_start) as u64);
    out.extend_from_slice(&input[lit_start..]);
    out
}

/// Decompresses a [`compress`] stream into exactly `raw_len` bytes.
///
/// # Errors
///
/// [`StoreError::Format`] on any malformed stream: a literal run or
/// back reference overflowing `raw_len`, a distance of zero or beyond
/// the bytes produced so far, a truncated varint, or trailing input
/// after the output is complete.
pub fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    loop {
        let lit = read_varint(input, &mut pos)? as usize;
        let end = pos
            .checked_add(lit)
            .filter(|&e| e <= input.len())
            .ok_or_else(|| StoreError::Format("truncated literal run".into()))?;
        if out.len().checked_add(lit).is_none_or(|n| n > raw_len) {
            return Err(StoreError::Format(
                "literal run overflows the raw length".into(),
            ));
        }
        out.extend_from_slice(&input[pos..end]);
        pos = end;
        if out.len() == raw_len {
            break;
        }
        let dist = read_varint(input, &mut pos)? as usize;
        let extra = read_varint(input, &mut pos)? as usize;
        let mlen = MIN_MATCH
            .checked_add(extra)
            .ok_or_else(|| StoreError::Format("match length overflows".into()))?;
        if dist == 0 || dist > out.len() {
            return Err(StoreError::Format("match distance out of range".into()));
        }
        if out.len().checked_add(mlen).is_none_or(|n| n > raw_len) {
            return Err(StoreError::Format(
                "back reference overflows the raw length".into(),
            ));
        }
        // Byte-at-a-time on purpose: dist < mlen means the copy overlaps
        // its own output (the classic LZ run-length trick).
        let start = out.len() - dist;
        for i in 0..mlen {
            let b = out[start + i];
            out.push(b);
        }
    }
    if pos != input.len() {
        return Err(StoreError::Format(
            "trailing bytes after the compressed stream".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) {
        let c = compress(input);
        let back = decompress(&c, input.len()).expect("decompress");
        assert_eq!(back, input);
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"abc");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(b"abcdabcdabcdabcdabcdxyzabcdabcd");
        let mut mixed = Vec::new();
        for i in 0..4096u32 {
            mixed.extend_from_slice(&(i % 37).to_le_bytes());
        }
        roundtrip(&mixed);
    }

    #[test]
    fn repetitive_input_shrinks() {
        let input: Vec<u8> = b"inbox.lock inbox inbox.lock snd.123 "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 4,
            "{} bytes compressed to {}",
            input.len(),
            c.len()
        );
        assert_eq!(decompress(&c, input.len()).unwrap(), input);
    }

    #[test]
    fn pseudorandom_input_roundtrips() {
        // Incompressible data must still round-trip (the writer falls
        // back to raw for size, not correctness).
        let mut v = 0x1234_5678_9abc_def0u64;
        let input: Vec<u8> = (0..10_000)
            .map(|_| {
                v ^= v << 13;
                v ^= v >> 7;
                v ^= v << 17;
                v as u8
            })
            .collect();
        roundtrip(&input);
    }

    #[test]
    fn overlapping_copy_roundtrips() {
        // A long run compresses to matches overlapping their own output.
        let input = vec![7u8; 100_000];
        let c = compress(&input);
        assert!(c.len() < 64);
        assert_eq!(decompress(&c, input.len()).unwrap(), input);
    }

    #[test]
    fn corrupt_streams_error_not_garbage() {
        let input: Vec<u8> = b"abcdabcdabcdabcdabcd".repeat(50);
        let good = compress(&input);
        // Truncations at every boundary.
        for cut in 0..good.len() {
            assert!(decompress(&good[..cut], input.len()).is_err(), "cut={cut}");
        }
        // A wrong raw length in either direction.
        assert!(decompress(&good, input.len() + 1).is_err());
        assert!(decompress(&good, input.len() - 1).is_err());
    }

    #[test]
    fn bad_distance_is_an_error() {
        // lit_len 0, dist 5 with no output yet.
        let bogus = [0u8, 5, 0];
        assert!(decompress(&bogus, 10).is_err());
    }

    #[test]
    fn overflowing_match_length_is_an_error() {
        // lit_len 1, one literal, dist 1, extra = u64::MAX - 4:
        // MIN_MATCH + extra == usize::MAX, so the raw-length bound
        // check must not wrap (it used to, turning this crafted chunk
        // into a near-endless copy loop instead of a Format error).
        let mut bogus = vec![1u8, 0xaa, 1];
        crate::codec::write_varint(&mut bogus, u64::MAX - 4);
        assert!(decompress(&bogus, 1 << 20).is_err());
        // Same shape on the literal side: a literal run whose length
        // varint is absurd must fail cleanly too.
        let mut bogus = Vec::new();
        crate::codec::write_varint(&mut bogus, u64::MAX - 1);
        assert!(decompress(&bogus, 1 << 20).is_err());
    }
}
