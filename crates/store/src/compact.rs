//! Segment lifecycle: LSM-style compaction, retention tiering, and the
//! crash-safe seal protocol they share with live ingest.
//!
//! A long-running ingest seals thousands of small segments; a
//! multi-month archive queried through a flat list of them pays a
//! footer parse per segment per open and leaves the directory fragile
//! to crash leftovers. This module merges adjacent sealed segments
//! into larger **generation-tagged** segments (see
//! [`crate::segments`]) and retires the oldest under a retention
//! budget, both without ever making a reader choose between torn
//! states.
//!
//! # Compaction
//!
//! [`CompactionPolicy`] picks the first contiguous run of `fan_in`
//! same-generation segments; [`Compactor::compact`] streams their
//! records — in catalog order, which **is** the k-way time merge,
//! because adjacent segments' time ranges follow each other and
//! concatenation preserves arrival order for equal timestamps where a
//! timestamp re-sort would not — through a fresh [`StoreWriter`] into
//! one output segment. Rewriting through the writer recomputes the
//! adaptive per-chunk [`crate::format::FileIdFilter`]s and footer time
//! ranges for the merged record population for free. Arrival-sequence
//! sidecars ([`crate::seqfile`]) concatenate the same way.
//!
//! # Crash safety
//!
//! Every mutation is tmp + rename, ordered so that a kill between any
//! two filesystem steps leaves a directory that
//! [`crate::segments::SegmentCatalog::open_and_sweep`] resolves to
//! exactly the old or the new catalog — never a mix:
//!
//! 1. output bytes → `….nfseg.tmp` (crash: tmp swept, old state)
//! 2. output sidecar → tmp, then rename (crash: orphan sidecar swept,
//!    old state)
//! 3. output rename to its sealed name — **the commit point**: from
//!    here the output supersedes its sources by generation
//! 4. source segments and sidecars removed (crash: survivors are
//!    superseded and swept, new state)
//!
//! [`FaultInjector`] makes the kill points testable: the crash-recovery
//! proptest runs every protocol with a budget of *n* filesystem steps
//! for every possible *n* and reopens after each induced crash.
//!
//! # Retention
//!
//! [`RetentionPolicy`] retires oldest-first while the catalog exceeds a
//! byte budget or segments age past a horizon — deleting them, or
//! moving them (with sidecars) into an archive directory, which keeps
//! the full trace reconstructable: the archive ∪ the live catalog is
//! byte-identical to never having retired at all.

use crate::error::{Result, StoreError};
use crate::reader::StoreReader;
use crate::segments::{SegmentCatalog, SegmentId};
use crate::seqfile;
use crate::writer::{StoreConfig, StoreWriter};
use nfstrace_telemetry::{Counter, Registry};
use std::path::{Path, PathBuf};

/// Deterministic crash simulation for the seal/compact protocols: a
/// budget of filesystem steps after which every further [`step`]
/// fails, standing in for a kill at that exact point. Production
/// callers pass [`FaultInjector::none`]; the crash-recovery proptest
/// sweeps every budget.
///
/// [`step`]: FaultInjector::step
#[derive(Debug)]
pub struct FaultInjector {
    remaining: Option<u64>,
}

impl FaultInjector {
    /// No injected faults: every step succeeds.
    pub fn none() -> Self {
        FaultInjector { remaining: None }
    }

    /// Crash after `steps` successful filesystem steps.
    pub fn after(steps: u64) -> Self {
        FaultInjector {
            remaining: Some(steps),
        }
    }

    /// Called immediately before each filesystem step of a protocol.
    ///
    /// # Errors
    ///
    /// When the injected budget is exhausted — the simulated kill.
    pub fn step(&mut self) -> Result<()> {
        if let Some(r) = &mut self.remaining {
            if *r == 0 {
                return Err(StoreError::Format(
                    "simulated crash (fault injection)".into(),
                ));
            }
            *r -= 1;
        }
        Ok(())
    }
}

/// The temp path a segment's bytes are staged at before the sealing
/// rename (`seg-000042.nfseg` → `seg-000042.nfseg.tmp` — the suffix
/// the sweeping reopen deletes).
pub fn tmp_path(segment: &Path) -> PathBuf {
    let mut name = segment
        .file_name()
        .expect("segment paths carry file names")
        .to_os_string();
    name.push(".tmp");
    segment.with_file_name(name)
}

/// Seals a fully written temp segment at its final name — the one
/// crash-safe publication protocol shared by live rotation and
/// compaction. When `seqs` is given, the arrival-sequence sidecar is
/// made visible *before* the segment (sidecar tmp → rename → segment
/// rename), so a sealed tracking segment always has its sidecar and a
/// crash in between leaves only an orphan sidecar for the sweep.
///
/// # Errors
///
/// On I/O failure or an injected fault.
pub fn seal_segment(
    tmp: &Path,
    dest: &Path,
    seqs: Option<&[u64]>,
    fault: &mut FaultInjector,
) -> Result<()> {
    if let Some(seqs) = seqs {
        fault.step()?;
        let side_tmp = seqfile::write_sidecar_tmp(dest, seqs)?;
        fault.step()?;
        std::fs::rename(side_tmp, seqfile::sidecar_path(dest))?;
    }
    fault.step()?;
    std::fs::rename(tmp, dest)?;
    Ok(())
}

/// When to merge: the fan-in of one compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// How many adjacent same-generation segments one pass merges
    /// (minimum 2). Classic tiered shape: `fan_in` generation-*g*
    /// segments become one generation-*g+1* segment, which later
    /// cascades with its own peers.
    pub fan_in: usize,
}

impl CompactionPolicy {
    /// The first mergeable run in `ids` (ascending catalog order), as
    /// the generation-bumped output id covering it — `None` when
    /// nothing is ripe. A run is `fan_in` segments of equal generation
    /// whose ordinal ranges are contiguous (no retention gap).
    pub fn plan(&self, ids: &[SegmentId]) -> Option<SegmentId> {
        let k = self.fan_in.max(2);
        ids.windows(k).find_map(|w| {
            let uniform = w.iter().all(|id| id.generation == w[0].generation);
            let contiguous = w.windows(2).all(|p| p[0].hi + 1 == p[1].lo);
            (uniform && contiguous).then(|| SegmentId {
                lo: w[0].lo,
                hi: w[k - 1].hi,
                generation: w[0].generation + 1,
            })
        })
    }
}

/// What one compaction pass did: the output id, where it spliced into
/// the catalog, and the merged sidecar (when the sources tracked
/// arrival sequences) — everything a live ingest needs to mirror the
/// swap in its in-memory reader chain.
#[derive(Debug)]
pub struct CompactionOutcome {
    /// The generation-bumped segment now covering the sources' range.
    pub output: SegmentId,
    /// `(first index, length)` of the catalog run the output replaced.
    pub replaced: (usize, usize),
    /// Concatenated arrival sequences of the output (present iff the
    /// sources had sidecars; the output's sidecar holds the same).
    pub seqs: Option<Vec<u64>>,
}

/// The background merge engine: applies a [`CompactionPolicy`] to a
/// [`SegmentCatalog`], counting passes into `store.compactions`.
#[derive(Debug)]
pub struct Compactor {
    policy: CompactionPolicy,
    config: StoreConfig,
    compactions: Counter,
}

impl Compactor {
    /// A compactor writing outputs with `config` (use the same config
    /// as the ingest so chunk sizing stays uniform) and counting into
    /// `registry`.
    pub fn new(policy: CompactionPolicy, config: StoreConfig, registry: &Registry) -> Self {
        Compactor {
            policy,
            config,
            compactions: registry.counter("store.compactions"),
        }
    }

    /// This compactor's policy.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// One compaction pass merging the catalog run `output` covers,
    /// following the crash-safe protocol in the module docs. On
    /// success the sources are gone from disk and `catalog`, replaced
    /// by the sealed output.
    ///
    /// The merge decodes and rewrites through private registries so a
    /// shared pipeline registry's `store.*` read/write counters keep
    /// describing the query workload, not maintenance; only
    /// `store.compactions` is reported.
    ///
    /// # Errors
    ///
    /// On I/O failure, an injected fault (the simulated kill — the
    /// directory is then mid-protocol by design and the next
    /// [`SegmentCatalog::open_and_sweep`] resolves it), corrupt source
    /// bytes, or sources where some but not all segments have
    /// arrival-sequence sidecars ([`StoreError::Sidecar`] — a tracked
    /// catalog can never be half-tracked, so that is corruption, not a
    /// state to guess through).
    ///
    /// # Panics
    ///
    /// If `output` does not cover a non-empty run of whole catalog
    /// entries (plan with [`CompactionPolicy::plan`]).
    pub fn compact(
        &self,
        catalog: &mut SegmentCatalog,
        output: SegmentId,
        fault: &mut FaultInjector,
    ) -> Result<CompactionOutcome> {
        let sources: Vec<SegmentId> = catalog
            .ids()
            .iter()
            .filter(|id| output.contains(id))
            .copied()
            .collect();
        assert!(
            sources.first().is_some_and(|id| id.lo == output.lo)
                && sources.last().is_some_and(|id| id.hi == output.hi),
            "compaction output {} must cover whole catalog entries",
            output.file_name()
        );
        let paths: Vec<PathBuf> = sources.iter().map(|id| catalog.path_of(id)).collect();

        // Sidecars are all-or-none across the sources: a tracked
        // catalog seals every segment with one, so a mix means a
        // sidecar rotted away after sealing — report which.
        let with_sidecar = paths
            .iter()
            .filter(|p| seqfile::sidecar_path(p).exists())
            .count();
        let seqs = if with_sidecar == paths.len() {
            let mut all = Vec::new();
            for p in &paths {
                all.extend(seqfile::read_sidecar(p)?);
            }
            Some(all)
        } else if with_sidecar == 0 {
            None
        } else {
            let missing = paths
                .iter()
                .find(|p| !seqfile::sidecar_path(p).exists())
                .expect("some sidecar is missing");
            return Err(StoreError::Sidecar {
                segment: missing.clone(),
                problem: "missing, but sibling segments in the same compaction have \
                          sidecars (a tracked segment lost its sidecar after sealing)"
                    .into(),
            });
        };

        let dest = catalog.path_of(&output);
        let tmp = tmp_path(&dest);
        fault.step()?;
        let mut writer = StoreWriter::create(&tmp, self.config)?;
        for path in &paths {
            let reader = StoreReader::open(path)?;
            for ci in 0..reader.chunk_count() {
                for record in reader.read_chunk(ci)? {
                    writer.push(&record)?;
                }
            }
        }
        writer.finish()?;
        seal_segment(&tmp, &dest, seqs.as_deref(), fault)?;
        // The commit point has passed: the output supersedes the
        // sources whether or not their removal below completes.
        for path in &paths {
            fault.step()?;
            std::fs::remove_file(path)?;
            let sidecar = seqfile::sidecar_path(path);
            if sidecar.exists() {
                fault.step()?;
                std::fs::remove_file(sidecar)?;
            }
        }
        let replaced = catalog.apply_compaction(output);
        self.compactions.inc();
        Ok(CompactionOutcome {
            output,
            replaced,
            seqs,
        })
    }

    /// Runs compaction passes until the policy finds nothing ripe —
    /// the cascade: merged generation-*g+1* outputs can immediately
    /// form a run of their own.
    ///
    /// # Errors
    ///
    /// See [`Compactor::compact`].
    pub fn compact_all(
        &self,
        catalog: &mut SegmentCatalog,
        fault: &mut FaultInjector,
    ) -> Result<Vec<CompactionOutcome>> {
        let mut outcomes = Vec::new();
        while let Some(output) = self.policy.plan(catalog.ids()) {
            outcomes.push(self.compact(catalog, output, fault)?);
        }
        Ok(outcomes)
    }
}

/// What to keep: the retention budget a catalog is trimmed to, oldest
/// segments first. All limits are optional; an unset policy retires
/// nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Retire oldest segments while the catalog's total segment bytes
    /// exceed this.
    pub max_total_bytes: Option<u64>,
    /// Retire segments whose newest record is more than this many
    /// microseconds older than the catalog's newest record.
    pub max_age_micros: Option<u64>,
    /// Where retired segments go: `Some` moves them (with sidecars)
    /// into this directory — the archive tier, from which the full
    /// trace remains reconstructable — `None` deletes them.
    pub archive_dir: Option<PathBuf>,
}

impl RetentionPolicy {
    /// Whether this policy can ever retire anything.
    pub fn is_unbounded(&self) -> bool {
        self.max_total_bytes.is_none() && self.max_age_micros.is_none()
    }
}

/// One segment retired by [`apply_retention`].
#[derive(Debug)]
pub struct RetiredSegment {
    /// Which segment.
    pub id: SegmentId,
    /// Its on-disk size when retired.
    pub bytes: u64,
    /// Where it went (`None` = deleted).
    pub archived_to: Option<PathBuf>,
}

/// Trims `catalog` to `policy`, oldest segments first, counting each
/// into `store.segments_retired`. The newest segment is always kept —
/// a catalog never retires itself to emptiness — and retirement never
/// splits the middle of the timeline, so what remains is still a
/// contiguous, openable catalog.
///
/// # Errors
///
/// On I/O failure reading segment footers or moving/removing files.
pub fn apply_retention(
    catalog: &mut SegmentCatalog,
    policy: &RetentionPolicy,
    registry: &Registry,
) -> Result<Vec<RetiredSegment>> {
    let retired_counter = registry.counter("store.segments_retired");
    let mut retired = Vec::new();
    if policy.is_unbounded() {
        return Ok(retired);
    }
    // Size from metadata, age from the footer — neither decodes a
    // chunk, so retention stays cheap at archive scale.
    struct SegmentInfo {
        id: SegmentId,
        bytes: u64,
        range: Option<(u64, u64)>,
    }
    let mut infos: Vec<SegmentInfo> = Vec::with_capacity(catalog.len());
    for id in catalog.ids().to_vec() {
        let path = catalog.path_of(&id);
        let bytes = std::fs::metadata(&path)?.len();
        let range = StoreReader::open(&path)?.time_range();
        infos.push(SegmentInfo { id, bytes, range });
    }
    let mut total: u64 = infos.iter().map(|i| i.bytes).sum();
    let newest = infos.iter().filter_map(|i| i.range.map(|(_, hi)| hi)).max();
    let mut idx = 0;
    while infos.len() - idx > 1 {
        let SegmentInfo { id, bytes, range } = infos[idx];
        let over_budget = policy.max_total_bytes.is_some_and(|cap| total > cap);
        let too_old = match (policy.max_age_micros, newest, range) {
            (Some(age), Some(newest), Some((_, seg_max))) => seg_max < newest.saturating_sub(age),
            _ => false,
        };
        if !over_budget && !too_old {
            break;
        }
        let path = catalog.path_of(&id);
        let sidecar = seqfile::sidecar_path(&path);
        let archived_to = if let Some(dir) = &policy.archive_dir {
            std::fs::create_dir_all(dir)?;
            let dest = dir.join(id.file_name());
            std::fs::rename(&path, &dest)?;
            if sidecar.exists() {
                std::fs::rename(&sidecar, seqfile::sidecar_path(&dest))?;
            }
            Some(dest)
        } else {
            std::fs::remove_file(&path)?;
            if sidecar.exists() {
                std::fs::remove_file(&sidecar)?;
            }
            None
        };
        catalog.forget(&id);
        total -= bytes;
        retired_counter.inc();
        retired.push(RetiredSegment {
            id,
            bytes,
            archived_to,
        });
        idx += 1;
    }
    Ok(retired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::stream_records;
    use nfstrace_core::record::{FileId, Op, TraceRecord};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nfstrace-compact-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn record(i: u64) -> TraceRecord {
        TraceRecord::new(i * 1000, Op::Read, FileId(i % 5)).with_range(i * 4096, 4096)
    }

    /// Seals `per_seg`-record base segments 0..count into `dir`, with
    /// sidecars when `track`.
    fn seed_catalog(dir: &Path, count: u64, per_seg: u64, track: bool) -> SegmentCatalog {
        let mut cat = SegmentCatalog::open(dir).expect("open");
        for s in 0..count {
            let ordinal = cat.next_ordinal();
            let dest = cat.path_for(ordinal);
            let tmp = tmp_path(&dest);
            let mut w = StoreWriter::create(&tmp, StoreConfig::default()).expect("create");
            let base = s * per_seg;
            for i in base..base + per_seg {
                w.push(&record(i)).expect("push");
            }
            w.finish().expect("finish");
            let seqs: Vec<u64> = (base..base + per_seg).collect();
            seal_segment(
                &tmp,
                &dest,
                track.then_some(seqs.as_slice()),
                &mut FaultInjector::none(),
            )
            .expect("seal");
            cat.note_sealed(ordinal);
        }
        cat
    }

    fn collect(readers: &[Arc<StoreReader>]) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        stream_records(readers, 0, u64::MAX, &mut |r| out.push(r.clone()));
        out
    }

    fn catalog_records(cat: &SegmentCatalog) -> Vec<TraceRecord> {
        let readers: Vec<Arc<StoreReader>> = cat
            .paths()
            .iter()
            .map(|p| Arc::new(StoreReader::open(p).expect("open")))
            .collect();
        collect(&readers)
    }

    #[test]
    fn plan_finds_contiguous_same_generation_runs() {
        let policy = CompactionPolicy { fan_in: 3 };
        let base: Vec<SegmentId> = (0..3).map(SegmentId::base).collect();
        assert_eq!(
            policy.plan(&base),
            Some(SegmentId {
                lo: 0,
                hi: 2,
                generation: 1
            })
        );
        assert_eq!(policy.plan(&base[..2]), None, "too few");
        // A retention gap breaks contiguity.
        let gapped = [SegmentId::base(0), SegmentId::base(2), SegmentId::base(3)];
        assert_eq!(policy.plan(&gapped), None);
        // Mixed generations do not merge; a run of equals later does.
        let mixed = [
            SegmentId {
                lo: 0,
                hi: 2,
                generation: 1,
            },
            SegmentId::base(3),
            SegmentId::base(4),
            SegmentId::base(5),
        ];
        assert_eq!(
            policy.plan(&mixed),
            Some(SegmentId {
                lo: 3,
                hi: 5,
                generation: 1
            })
        );
    }

    #[test]
    fn compaction_preserves_the_record_stream_and_sidecars() {
        let dir = tmpdir("merge");
        let mut cat = seed_catalog(&dir, 4, 50, true);
        let before = catalog_records(&cat);
        let reg = Registry::new();
        let compactor =
            Compactor::new(CompactionPolicy { fan_in: 4 }, StoreConfig::default(), &reg);
        let outcomes = compactor
            .compact_all(&mut cat, &mut FaultInjector::none())
            .expect("compact");
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes[0].output,
            SegmentId {
                lo: 0,
                hi: 3,
                generation: 1
            }
        );
        assert_eq!(outcomes[0].replaced, (0, 4));
        let expect_seqs: Vec<u64> = (0..200).collect();
        assert_eq!(outcomes[0].seqs.as_deref(), Some(expect_seqs.as_slice()));
        assert_eq!(reg.counter("store.compactions").value(), 1);
        // The merged segment carries the merged sidecar, the sources
        // are gone, and the record stream is unchanged.
        assert_eq!(cat.ids(), &[outcomes[0].output]);
        assert_eq!(
            seqfile::read_sidecar(&cat.path_of(&outcomes[0].output)).expect("sidecar"),
            expect_seqs
        );
        assert_eq!(catalog_records(&cat), before);
        let reopened = SegmentCatalog::open_and_sweep(&dir).expect("reopen");
        assert_eq!(reopened.ids(), cat.ids());
        assert_eq!(reopened.next_ordinal(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn half_tracked_sources_are_a_precise_sidecar_error() {
        let dir = tmpdir("halftracked");
        let mut cat = seed_catalog(&dir, 2, 10, true);
        std::fs::remove_file(seqfile::sidecar_path(&cat.path_for(1))).expect("drop sidecar");
        let reg = Registry::new();
        let compactor =
            Compactor::new(CompactionPolicy { fan_in: 2 }, StoreConfig::default(), &reg);
        let output = compactor.policy().plan(cat.ids()).expect("plan");
        let err = compactor
            .compact(&mut cat, output, &mut FaultInjector::none())
            .expect_err("half-tracked");
        assert!(
            matches!(&err, StoreError::Sidecar { segment, .. } if segment.ends_with("seg-000001.nfseg")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_trims_oldest_and_archives_reconstructably() {
        let dir = tmpdir("retain");
        let mut cat = seed_catalog(&dir, 4, 50, false);
        let before = catalog_records(&cat);
        let seg_bytes = std::fs::metadata(cat.path_for(0)).expect("meta").len();
        let reg = Registry::new();
        let archive = dir.join("archive");
        let policy = RetentionPolicy {
            // Budget for two segments: the two oldest retire.
            max_total_bytes: Some(seg_bytes * 2 + seg_bytes / 2),
            max_age_micros: None,
            archive_dir: Some(archive.clone()),
        };
        let retired = apply_retention(&mut cat, &policy, &reg).expect("retain");
        assert_eq!(
            retired.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![SegmentId::base(0), SegmentId::base(1)]
        );
        assert_eq!(reg.counter("store.segments_retired").value(), 2);
        assert_eq!(cat.ids(), &[SegmentId::base(2), SegmentId::base(3)]);
        // Archive ∪ live catalog reconstructs the original stream.
        let archived = SegmentCatalog::open(&archive).expect("archive catalog");
        assert_eq!(archived.ids(), &[SegmentId::base(0), SegmentId::base(1)]);
        let mut union: Vec<Arc<StoreReader>> = Vec::new();
        for p in archived.paths().iter().chain(cat.paths().iter()) {
            union.push(Arc::new(StoreReader::open(p).expect("open")));
        }
        assert_eq!(collect(&union), before);
        // An unbounded policy retires nothing; the newest segment is
        // never retired even under an impossible budget.
        assert!(apply_retention(&mut cat, &RetentionPolicy::default(), &reg)
            .expect("noop")
            .is_empty());
        let brutal = RetentionPolicy {
            max_total_bytes: Some(0),
            max_age_micros: None,
            archive_dir: None,
        };
        apply_retention(&mut cat, &brutal, &reg).expect("brutal");
        assert_eq!(cat.ids(), &[SegmentId::base(3)], "newest survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_by_age_uses_footer_time_ranges() {
        let dir = tmpdir("age");
        // 4 segments × 50 records × 1000 µs: segment s spans
        // [s·50_000, s·50_000 + 49_000].
        let mut cat = seed_catalog(&dir, 4, 50, false);
        let reg = Registry::new();
        let policy = RetentionPolicy {
            max_total_bytes: None,
            // Newest record is at 199_000 µs; a 110_000 µs horizon
            // retires segments whose newest record predates 89_000 µs
            // — segment 0 (max 49_000) only.
            max_age_micros: Some(110_000),
            archive_dir: None,
        };
        let retired = apply_retention(&mut cat, &policy, &reg).expect("retain");
        assert_eq!(
            retired.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![SegmentId::base(0)]
        );
        assert_eq!(
            cat.ids(),
            &[SegmentId::base(1), SegmentId::base(2), SegmentId::base(3)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
