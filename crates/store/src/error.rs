//! Store error type.

use std::fmt;

/// Everything that can go wrong writing or reading a trace store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed store file (bad magic, truncated chunk, bad varint).
    Format(String),
    /// A record pushed out of time order — the chunk codec
    /// delta-encodes timestamps and the footer's per-chunk time ranges
    /// must be disjoint, so writers require nondecreasing `micros`.
    OutOfOrder {
        /// Timestamp of the previously accepted record.
        prev: u64,
        /// The offending earlier timestamp.
        next: u64,
    },
    /// A sealed segment's arrival-sequence sidecar is missing,
    /// truncated, corrupt, or inconsistent with its segment — the
    /// precise diagnosis a sharded reopen needs to recover
    /// deterministically (a *missing* sidecar means the directory was
    /// written without tracking, or a mid-rename crash was swept; a
    /// *corrupt* one means the bytes rotted).
    Sidecar {
        /// The segment the sidecar belongs to.
        segment: std::path::PathBuf,
        /// What exactly is wrong with it.
        problem: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(msg) => write!(f, "malformed store: {msg}"),
            StoreError::OutOfOrder { prev, next } => write!(
                f,
                "record pushed out of time order: {next} after {prev} (sort the stream first)"
            ),
            StoreError::Sidecar { segment, problem } => {
                write!(f, "sequence sidecar for {}: {problem}", segment.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
