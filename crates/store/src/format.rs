//! On-disk layout constants and the per-chunk footer entry.
//!
//! ```text
//! +----------+---------+---------+ ... +--------+----------------+
//! | "NFSTRC1\0" | chunk 0 | chunk 1 |     | footer | trailer        |
//! +----------+---------+---------+ ... +--------+----------------+
//!
//! chunk   := name_table  (varint count, then varint-len escaped names)
//!            record_count (varint)
//!            first_micros (varint)
//!            record*      (see `codec`)
//! footer  := per chunk: offset, len, records, min_micros, max_micros
//!            (5 × u64 LE) — then chunk_count u64, total_records u64
//! trailer := footer_offset u64 LE, "NFSTRCE\0"
//! ```
//!
//! The reader seeks to the trailer (last 16 bytes), validates the end
//! magic, jumps to the footer, and from then on reads chunks by
//! absolute offset — so opening a store costs one footer read no matter
//! how many records it holds, and any chunk can be decoded in isolation
//! (each chunk carries its own name table and timestamp base).

/// Leading file magic.
pub const MAGIC: &[u8; 8] = b"NFSTRC1\0";

/// Trailing file magic.
pub const END_MAGIC: &[u8; 8] = b"NFSTRCE\0";

/// One chunk's footer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Absolute byte offset of the chunk.
    pub offset: u64,
    /// Encoded byte length.
    pub len: u64,
    /// Records in the chunk.
    pub records: u64,
    /// First record's capture time.
    pub min_micros: u64,
    /// Last record's capture time.
    pub max_micros: u64,
}

impl ChunkMeta {
    /// Whether this chunk could contain records in `[start, end)`.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.records > 0 && self.min_micros < end && self.max_micros >= start
    }
}
