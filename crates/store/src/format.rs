//! On-disk layout constants, the per-chunk footer entry, and the v2
//! chunk filters.
//!
//! Two format revisions exist. **v2** is what [`crate::StoreWriter`]
//! emits by default; **v1** (the PR 3 layout) is still fully readable —
//! [`crate::StoreReader`] sniffs the leading magic and parses either.
//!
//! ```text
//! +-------------+---------+---------+ ... +--------+----------------+
//! | magic (8 B) | chunk 0 | chunk 1 |     | footer | trailer        |
//! +-------------+---------+---------+ ... +--------+----------------+
//!
//! magic    := "NFSTRC1\0" (v1) | "NFSTRC2\0" (v2)
//!
//! payload  := name_table  (varint count, then varint-len escaped names)
//!             record_count (varint)
//!             first_micros (varint)
//!             record*      (see `codec`)
//!
//! chunk v1 := payload
//! chunk v2 := flags (1 B)                  — bit 0: LZ-compressed;
//!                                            other bits must be zero
//!             if compressed: raw_len (varint), LZ stream (see
//!                            `compress`), else: payload verbatim
//!
//! entry v1 := offset, len, records, min_micros, max_micros
//!             (5 × u64 LE = 40 B)
//! entry v2 := offset, len, records, min_micros, max_micros,
//!             min_fh, max_fh, checksum  (8 × u64 LE)
//!             bloom (BLOOM_BYTES)        — 128 B total
//!
//! footer v1 := entry* ++ chunk_count u64 ++ total_records u64
//! footer v2 := entry* ++ chunk_count u64 ++ total_records u64
//!              ++ footer_checksum u64    — FNV-1a of all prior footer
//!                                          bytes
//! trailer   := footer_offset u64 LE, "NFSTRCE\0"
//! ```
//!
//! The reader seeks to the trailer (last 16 bytes), validates the end
//! magic, jumps to the footer, and from then on reads chunks by
//! absolute offset — so opening a store costs one footer read no matter
//! how many records it holds, and any chunk can be decoded in isolation
//! (each chunk carries its own name table and timestamp base).
//!
//! v2 adds three things on top of the v1 layout:
//!
//! - **Per-chunk compression**, negotiated by the chunk's flags byte: a
//!   chunk whose LZ encoding (module [`crate::compress`]) does not beat
//!   the raw payload is stored raw, so compression never grows a chunk
//!   body by more than the one flags byte.
//! - **Corruption detection.** `checksum` is the FNV-1a 64 hash of the
//!   chunk's stored bytes exactly as they sit on disk (flags byte
//!   included), verified before any decode; the footer carries its own
//!   trailing checksum. A flipped bit anywhere surfaces as
//!   [`crate::StoreError::Format`], never as a silently wrong record.
//! - **Per-chunk [`FileIdFilter`]s** (min/max plus a small Bloom
//!   filter over each record's *primary* file handle), letting
//!   per-file queries skip chunks that cannot contain the file without
//!   decoding them.

use nfstrace_core::record::FileId;

/// Leading file magic, v1 layout.
pub const MAGIC_V1: &[u8; 8] = b"NFSTRC1\0";

/// Leading file magic, v2 layout.
pub const MAGIC_V2: &[u8; 8] = b"NFSTRC2\0";

/// Trailing file magic (both versions).
pub const END_MAGIC: &[u8; 8] = b"NFSTRCE\0";

/// Footer entry sizes per version.
pub const V1_ENTRY_BYTES: usize = 5 * 8;
/// See [`V1_ENTRY_BYTES`].
pub const V2_ENTRY_BYTES: usize = 8 * 8 + BLOOM_BYTES;

/// v2 chunk flags bit: the body is LZ-compressed.
pub const FLAG_COMPRESSED: u8 = 1 << 0;
/// Every currently defined flags bit; anything else is a format error.
pub const FLAG_MASK: u8 = FLAG_COMPRESSED;

/// Hard upper bound on a decoded chunk payload. Writers flush chunks at
/// a few MiB; a (hand-crafted) compressed chunk claiming more raw bytes
/// than this is rejected before any allocation.
pub const MAX_CHUNK_PAYLOAD: u64 = 1 << 30;

/// The on-disk format revisions this crate reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreVersion {
    /// The PR 3 layout: raw chunks, 40-byte footer entries, no
    /// checksums or filters. Still written on request for
    /// compatibility, always readable.
    V1,
    /// Compressed, checksummed, filter-carrying layout (default).
    #[default]
    V2,
}

/// FNV-1a 64-bit hash — the store's checksum. Not cryptographic; it
/// exists to catch disk/transport corruption deterministically.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bytes in each per-chunk Bloom filter (512 bits).
pub const BLOOM_BYTES: usize = 64;
/// Bits set per inserted file id.
const BLOOM_HASHES: u32 = 3;

/// SplitMix64 — the Bloom filter's hash mixer.
fn mix64(mut v: u64) -> u64 {
    v = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    v = (v ^ (v >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v = (v ^ (v >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    v ^ (v >> 31)
}

/// A conservative per-chunk membership test over each record's primary
/// file handle (`TraceRecord::fh`): min/max range plus a
/// [`BLOOM_BYTES`]-byte Bloom filter.
///
/// `may_contain` can report false positives (a chunk is decoded and
/// yields nothing) but never false negatives, so chunk-skipping
/// per-file queries always return exactly the full-scan answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileIdFilter {
    /// Smallest primary file handle in the chunk.
    pub min_fh: u64,
    /// Largest primary file handle in the chunk.
    pub max_fh: u64,
    /// Bloom bits over the chunk's primary file handles.
    pub bloom: [u8; BLOOM_BYTES],
}

impl Default for FileIdFilter {
    fn default() -> Self {
        Self::empty()
    }
}

impl FileIdFilter {
    /// A filter that matches nothing (the state before any insert).
    pub fn empty() -> Self {
        FileIdFilter {
            min_fh: u64::MAX,
            max_fh: 0,
            bloom: [0; BLOOM_BYTES],
        }
    }

    /// Adds one file handle.
    pub fn insert(&mut self, fh: FileId) {
        self.min_fh = self.min_fh.min(fh.0);
        self.max_fh = self.max_fh.max(fh.0);
        let mut h = mix64(fh.0);
        for _ in 0..BLOOM_HASHES {
            let bit = (h as usize) % (BLOOM_BYTES * 8);
            self.bloom[bit / 8] |= 1 << (bit % 8);
            h = mix64(h);
        }
    }

    /// Whether the chunk behind this filter could contain `fh`.
    pub fn may_contain(&self, fh: FileId) -> bool {
        if fh.0 < self.min_fh || fh.0 > self.max_fh {
            return false;
        }
        let mut h = mix64(fh.0);
        for _ in 0..BLOOM_HASHES {
            let bit = (h as usize) % (BLOOM_BYTES * 8);
            if self.bloom[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = mix64(h);
        }
        true
    }
}

/// One chunk's footer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Absolute byte offset of the chunk.
    pub offset: u64,
    /// Encoded (stored) byte length.
    pub len: u64,
    /// Records in the chunk.
    pub records: u64,
    /// First record's capture time.
    pub min_micros: u64,
    /// Last record's capture time.
    pub max_micros: u64,
    /// FNV-1a 64 of the stored chunk bytes. `None` for v1 stores,
    /// which carry no checksums.
    pub checksum: Option<u64>,
    /// Primary-file-handle filter. `None` for v1 stores, where every
    /// per-file query must decode every chunk.
    pub filter: Option<FileIdFilter>,
}

impl ChunkMeta {
    /// Whether this chunk could contain records in `[start, end)`.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.records > 0 && self.min_micros < end && self.max_micros >= start
    }

    /// Whether this chunk could contain a record whose primary handle is
    /// `fh`. Conservative: `true` whenever no filter is present (v1).
    pub fn may_contain_file(&self, fh: FileId) -> bool {
        self.filter.is_none_or(|f| f.may_contain(fh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_has_no_false_negatives() {
        let mut f = FileIdFilter::empty();
        let members: Vec<u64> = (0..200).map(|i| i * 977 + 13).collect();
        for &m in &members {
            f.insert(FileId(m));
        }
        for &m in &members {
            assert!(f.may_contain(FileId(m)), "member {m} filtered out");
        }
    }

    #[test]
    fn filter_rejects_out_of_range_and_most_nonmembers() {
        let mut f = FileIdFilter::empty();
        for i in 1000..1040u64 {
            f.insert(FileId(i));
        }
        assert!(!f.may_contain(FileId(0)));
        assert!(!f.may_contain(FileId(999)));
        assert!(!f.may_contain(FileId(1041)));
        assert!(!f.may_contain(FileId(u64::MAX)));
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let f = FileIdFilter::empty();
        for probe in [0u64, 1, 42, u64::MAX] {
            assert!(!f.may_contain(FileId(probe)));
        }
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"inbox"), fnv1a64(b"inbox.lock"));
        let mut flipped = b"some chunk body".to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(fnv1a64(b"some chunk body"), fnv1a64(&flipped));
    }
}
