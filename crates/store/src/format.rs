//! On-disk layout constants, the per-chunk footer entry, and the chunk
//! filters.
//!
//! Three format revisions exist. **v3** is what [`crate::StoreWriter`]
//! emits by default; **v1** (the PR 3 layout) and **v2** (the PR 4
//! layout) are still fully readable — [`crate::StoreReader`] sniffs the
//! leading magic and parses any of them — and still writable on request
//! via [`crate::StoreConfig`].
//!
//! ```text
//! +-------------+---------+---------+ ... +--------+----------------+
//! | magic (8 B) | chunk 0 | chunk 1 |     | footer | trailer        |
//! +-------------+---------+---------+ ... +--------+----------------+
//!
//! magic    := "NFSTRC1\0" (v1) | "NFSTRC2\0" (v2) | "NFSTRC3\0" (v3)
//!
//! payload  := name_table  (varint count, then varint-len escaped names)
//!             record_count (varint)
//!             first_micros (varint)
//!             record*      (see `codec`)
//!
//! chunk v1 := payload
//! chunk v2 := flags (1 B)                  — bit 0: LZ-compressed;
//!                                            other bits must be zero
//!             if compressed: raw_len (varint), LZ stream (see
//!                            `compress`), else: payload verbatim
//! chunk v3 := identical to chunk v2
//!
//! entry v1 := offset, len, records, min_micros, max_micros
//!             (5 × u64 LE = 40 B)
//! entry v2 := offset, len, records, min_micros, max_micros,
//!             min_fh, max_fh, checksum  (8 × u64 LE)
//!             bloom (BLOOM_BYTES)        — 128 B total
//! entry v3 := offset, len, records, min_micros, max_micros,
//!             min_fh, max_fh, checksum  (8 × u64 LE)
//!             filter_kind u8:
//!               1 (exact): count u32 LE, count × u64 LE sorted handles
//!               2 (bloom): hashes u8, nbytes u32 LE, nbytes filter
//!                          bytes — variable length, sized from the
//!                          chunk's distinct-handle count
//!
//! footer v1 := entry* ++ chunk_count u64 ++ total_records u64
//! footer v2 := entry* ++ chunk_count u64 ++ total_records u64
//!              ++ footer_checksum u64    — FNV-1a of all prior footer
//!                                          bytes
//! footer v3 := chunk_count u64 ++ total_records u64 ++ entry*
//!              ++ footer_checksum u64    — counts lead because the
//!                                          entries are variable-length
//! trailer   := footer_offset u64 LE, "NFSTRCE\0"
//! ```
//!
//! The reader seeks to the trailer (last 16 bytes), validates the end
//! magic, jumps to the footer, and from then on reads chunks by
//! absolute offset — so opening a store costs one footer read no matter
//! how many records it holds, and any chunk can be decoded in isolation
//! (each chunk carries its own name table and timestamp base).
//!
//! v2 added per-chunk compression (negotiated by the flags byte, raw
//! fallback), FNV-1a corruption detection on every chunk and the
//! footer, and fixed-size per-chunk [`FileIdFilter`]s. **v3 keeps all
//! of that and makes the filter adaptive**: the v2 Bloom filter is 512
//! bits with 3 hashes no matter what, so a chunk holding thousands of
//! distinct file handles saturates it — every bit set, every probe a
//! false positive, every per-file query decoding every chunk. Under v3
//! the writer counts the chunk's distinct primary handles and emits
//! either the *exact* sorted handle set (at or below
//! [`EXACT_FILTER_MAX`] distinct handles — zero false positives) or a
//! Bloom filter sized to ≈[`ADAPTIVE_BITS_PER_HANDLE`] bits per
//! distinct handle, keeping the false-positive rate — and so the
//! chunk-skip rate of per-file queries — roughly constant at any
//! fan-in.
//!
//! # Segment file naming: ordinals and generations
//!
//! A segment *directory* (the live daemons' durable form, readable by
//! [`crate::StoreIndex::open_dir`]) names each store file by the
//! ordinal range it covers and the compaction generation that produced
//! it (parsed by [`crate::segments`]):
//!
//! ```text
//! base seal  := seg-{lo:06}.nfseg             — generation 0, one
//!                                               rotation (lo == hi)
//! compacted  := seg-{lo:06}-{hi:06}.g{generation:02}.nfseg
//!                                             — generation ≥ 1, the
//!                                               merge of ordinals
//!                                               lo..=hi inclusive
//! sidecar    := same stem, .nfseq             — arrival sequences
//! in-flight  := either form + .tmp            — never part of a
//!                                               catalog; swept on
//!                                               owning reopen
//! ```
//!
//! The widths are cosmetic (parsing accepts any digit count;
//! lexicographic order is a convenience, not a correctness
//! dependency); generation 0 never uses the ranged form, and a ranged
//! name with `lo > hi` or `.g00` is rejected as malformed rather than
//! ignored. Catalog resolution is by **supersession**: a segment
//! whose generation is higher and whose ordinal range covers another's
//! replaces it — which is what makes the compaction rename the commit
//! point of a crash-safe swap (see [`crate::compact`]).

use nfstrace_core::record::FileId;
use std::collections::BTreeSet;

/// Leading file magic, v1 layout.
pub const MAGIC_V1: &[u8; 8] = b"NFSTRC1\0";

/// Leading file magic, v2 layout.
pub const MAGIC_V2: &[u8; 8] = b"NFSTRC2\0";

/// Leading file magic, v3 layout.
pub const MAGIC_V3: &[u8; 8] = b"NFSTRC3\0";

/// Trailing file magic (all versions).
pub const END_MAGIC: &[u8; 8] = b"NFSTRCE\0";

/// Footer entry sizes for the fixed-stride versions.
pub const V1_ENTRY_BYTES: usize = 5 * 8;
/// See [`V1_ENTRY_BYTES`].
pub const V2_ENTRY_BYTES: usize = 8 * 8 + BLOOM_BYTES;

/// v2/v3 chunk flags bit: the body is LZ-compressed.
pub const FLAG_COMPRESSED: u8 = 1 << 0;
/// Every currently defined flags bit; anything else is a format error.
pub const FLAG_MASK: u8 = FLAG_COMPRESSED;

/// Hard upper bound on a decoded chunk payload. Writers flush chunks at
/// a few MiB; a (hand-crafted) compressed chunk claiming more raw bytes
/// than this is rejected before any allocation.
pub const MAX_CHUNK_PAYLOAD: u64 = 1 << 30;

/// v3 filter kind tag: exact sorted handle set.
pub const FILTER_KIND_EXACT: u8 = 1;
/// v3 filter kind tag: adaptively sized Bloom filter.
pub const FILTER_KIND_BLOOM: u8 = 2;

/// Largest distinct-handle count stored as an exact sorted set under
/// v3; above this the filter switches to an adaptively sized Bloom.
pub const EXACT_FILTER_MAX: usize = 64;

/// Target Bloom bits per distinct handle for v3 filters (≈1% false
/// positives at [`ADAPTIVE_HASHES`] hashes).
pub const ADAPTIVE_BITS_PER_HANDLE: usize = 10;

/// Hash probes per handle for v3 Bloom filters (≈0.69 × bits/handle).
pub const ADAPTIVE_HASHES: u32 = 7;

/// Hard upper bound on a single v3 filter's byte size, enforced at
/// parse time before any allocation.
pub const MAX_FILTER_BYTES: usize = 1 << 22;

/// The on-disk format revisions this crate reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreVersion {
    /// The PR 3 layout: raw chunks, 40-byte footer entries, no
    /// checksums or filters. Still written on request for
    /// compatibility, always readable.
    V1,
    /// The PR 4 layout: compression, checksums, fixed 512-bit Bloom
    /// filters. Still written on request, always readable.
    V2,
    /// Compressed, checksummed layout with adaptively sized per-chunk
    /// file filters (default).
    #[default]
    V3,
}

/// FNV-1a 64-bit hash — the store's checksum. Not cryptographic; it
/// exists to catch disk/transport corruption deterministically.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bytes in each v2 (legacy fixed-size) per-chunk Bloom filter
/// (512 bits); also the v3 Bloom floor.
pub const BLOOM_BYTES: usize = 64;
/// Bits set per inserted file id under the legacy v2 layout.
const BLOOM_HASHES: u32 = 3;

/// SplitMix64 — the Bloom filters' hash mixer (all versions).
fn mix64(mut v: u64) -> u64 {
    v = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    v = (v ^ (v >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v = (v ^ (v >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    v ^ (v >> 31)
}

/// Sets `hashes` Bloom bits for `fh` in `bits`.
fn bloom_set(bits: &mut [u8], hashes: u32, fh: u64) {
    let nbits = bits.len() * 8;
    let mut h = mix64(fh);
    for _ in 0..hashes {
        let bit = (h as usize) % nbits;
        bits[bit / 8] |= 1 << (bit % 8);
        h = mix64(h);
    }
}

/// Tests `hashes` Bloom bits for `fh` in `bits`.
fn bloom_test(bits: &[u8], hashes: u32, fh: u64) -> bool {
    let nbits = bits.len() * 8;
    if nbits == 0 {
        return false;
    }
    let mut h = mix64(fh);
    for _ in 0..hashes {
        let bit = (h as usize) % nbits;
        if bits[bit / 8] & (1 << (bit % 8)) == 0 {
            return false;
        }
        h = mix64(h);
    }
    true
}

/// The membership structure inside a [`FileIdFilter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterKind {
    /// The chunk's exact distinct primary handles, sorted ascending.
    /// Zero false positives; v3 uses it for low-fan-in chunks.
    Exact(Vec<u64>),
    /// A Bloom filter over the handles: `hashes` bits probed per
    /// handle across `bits.len() * 8` bits. v2 filters are always
    /// `hashes = 3` over 512 bits; v3 sizes `bits` from the chunk's
    /// distinct-handle count.
    Bloom {
        /// Bits probed per handle.
        hashes: u32,
        /// The filter bit array.
        bits: Vec<u8>,
    },
}

/// A conservative per-chunk membership test over each record's primary
/// file handle (`TraceRecord::fh`): a min/max range plus a
/// [`FilterKind`].
///
/// `may_contain` can report false positives (a chunk is decoded and
/// yields nothing) but never false negatives, so chunk-skipping
/// per-file queries always return exactly the full-scan answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileIdFilter {
    /// Smallest primary file handle in the chunk.
    pub min_fh: u64,
    /// Largest primary file handle in the chunk.
    pub max_fh: u64,
    /// The membership structure.
    pub kind: FilterKind,
}

impl FileIdFilter {
    /// A filter that matches nothing (an empty chunk's state).
    pub fn empty() -> Self {
        FileIdFilter {
            min_fh: u64::MAX,
            max_fh: 0,
            kind: FilterKind::Exact(Vec::new()),
        }
    }

    /// Whether the chunk behind this filter could contain `fh`.
    pub fn may_contain(&self, fh: FileId) -> bool {
        if fh.0 < self.min_fh || fh.0 > self.max_fh {
            return false;
        }
        match &self.kind {
            FilterKind::Exact(handles) => handles.binary_search(&fh.0).is_ok(),
            FilterKind::Bloom { hashes, bits } => bloom_test(bits, *hashes, fh.0),
        }
    }
}

/// Accumulates one chunk's distinct primary handles while the chunk is
/// being written, then finishes into the footer filter the configured
/// format version wants. Memory is bounded by the chunk's distinct
/// handles, which the chunk size bounds.
#[derive(Debug, Clone, Default)]
pub struct FilterBuilder {
    distinct: BTreeSet<u64>,
}

impl FilterBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FilterBuilder::default()
    }

    /// Notes one record's primary handle.
    pub fn insert(&mut self, fh: FileId) {
        self.distinct.insert(fh.0);
    }

    /// Distinct handles noted so far.
    pub fn len(&self) -> usize {
        self.distinct.len()
    }

    /// Whether nothing was noted.
    pub fn is_empty(&self) -> bool {
        self.distinct.is_empty()
    }

    fn min_max(&self) -> (u64, u64) {
        match (self.distinct.first(), self.distinct.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (u64::MAX, 0),
        }
    }

    /// The fixed 512-bit, 3-hash filter of the v2 layout — bit-for-bit
    /// what the v2 writer always emitted (Bloom insertion is
    /// commutative and idempotent, so inserting the distinct set equals
    /// inserting per record).
    pub fn finish_legacy(&self) -> FileIdFilter {
        let (min_fh, max_fh) = self.min_max();
        let mut bits = vec![0u8; BLOOM_BYTES];
        for &fh in &self.distinct {
            bloom_set(&mut bits, BLOOM_HASHES, fh);
        }
        FileIdFilter {
            min_fh,
            max_fh,
            kind: FilterKind::Bloom {
                hashes: BLOOM_HASHES,
                bits,
            },
        }
    }

    /// The v3 filter, sized from the distinct-handle count: exact at or
    /// below [`EXACT_FILTER_MAX`] handles, otherwise a Bloom filter of
    /// ≈[`ADAPTIVE_BITS_PER_HANDLE`] bits per handle (rounded up to a
    /// power-of-two byte count, never below the v2 floor) — so the
    /// false-positive rate stays roughly flat as chunk fan-in grows,
    /// instead of saturating like the fixed v2 filter.
    pub fn finish_adaptive(&self) -> FileIdFilter {
        let (min_fh, max_fh) = self.min_max();
        if self.distinct.len() <= EXACT_FILTER_MAX {
            return FileIdFilter {
                min_fh,
                max_fh,
                kind: FilterKind::Exact(self.distinct.iter().copied().collect()),
            };
        }
        let want = self
            .distinct
            .len()
            .saturating_mul(ADAPTIVE_BITS_PER_HANDLE)
            .div_ceil(8);
        let nbytes = want
            .next_power_of_two()
            .clamp(BLOOM_BYTES, MAX_FILTER_BYTES);
        let mut bits = vec![0u8; nbytes];
        for &fh in &self.distinct {
            bloom_set(&mut bits, ADAPTIVE_HASHES, fh);
        }
        FileIdFilter {
            min_fh,
            max_fh,
            kind: FilterKind::Bloom {
                hashes: ADAPTIVE_HASHES,
                bits,
            },
        }
    }

    /// Forgets everything (next chunk).
    pub fn clear(&mut self) {
        self.distinct.clear();
    }
}

/// One chunk's footer entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Absolute byte offset of the chunk.
    pub offset: u64,
    /// Encoded (stored) byte length.
    pub len: u64,
    /// Records in the chunk.
    pub records: u64,
    /// First record's capture time.
    pub min_micros: u64,
    /// Last record's capture time.
    pub max_micros: u64,
    /// FNV-1a 64 of the stored chunk bytes. `None` for v1 stores,
    /// which carry no checksums.
    pub checksum: Option<u64>,
    /// Primary-file-handle filter. `None` for v1 stores, where every
    /// per-file query must decode every chunk.
    pub filter: Option<FileIdFilter>,
}

impl ChunkMeta {
    /// Whether this chunk could contain records in `[start, end)`.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.records > 0 && self.min_micros < end && self.max_micros >= start
    }

    /// Whether this chunk could contain a record whose primary handle is
    /// `fh`. Conservative: `true` whenever no filter is present (v1).
    pub fn may_contain_file(&self, fh: FileId) -> bool {
        self.filter.as_ref().is_none_or(|f| f.may_contain(fh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(handles: impl IntoIterator<Item = u64>) -> FilterBuilder {
        let mut b = FilterBuilder::new();
        for h in handles {
            b.insert(FileId(h));
        }
        b
    }

    #[test]
    fn filters_have_no_false_negatives() {
        let members: Vec<u64> = (0..200).map(|i| i * 977 + 13).collect();
        let b = build(members.iter().copied());
        for f in [b.finish_legacy(), b.finish_adaptive()] {
            for &m in &members {
                assert!(f.may_contain(FileId(m)), "member {m} filtered out");
            }
        }
    }

    #[test]
    fn filters_reject_out_of_range_and_most_nonmembers() {
        let b = build(1000..1040);
        for f in [b.finish_legacy(), b.finish_adaptive()] {
            assert!(!f.may_contain(FileId(0)));
            assert!(!f.may_contain(FileId(999)));
            assert!(!f.may_contain(FileId(1041)));
            assert!(!f.may_contain(FileId(u64::MAX)));
        }
    }

    #[test]
    fn empty_filter_matches_nothing() {
        for f in [
            FileIdFilter::empty(),
            build([]).finish_legacy(),
            build([]).finish_adaptive(),
        ] {
            for probe in [0u64, 1, 42, u64::MAX] {
                assert!(!f.may_contain(FileId(probe)));
            }
        }
    }

    #[test]
    fn small_sets_are_stored_exactly() {
        let b = build((0..=EXACT_FILTER_MAX as u64 - 1).map(|i| i * 3));
        let f = b.finish_adaptive();
        assert!(matches!(&f.kind, FilterKind::Exact(v) if v.len() == EXACT_FILTER_MAX));
        // Exact means exact: in-range nonmembers are rejected too.
        assert!(f.may_contain(FileId(3)));
        assert!(!f.may_contain(FileId(4)));
    }

    /// The saturation regression the adaptive filter exists for: at
    /// high fan-in the fixed v2 Bloom approaches a 100% false-positive
    /// rate while the adaptive one stays selective.
    #[test]
    fn adaptive_filter_survives_fan_in_that_saturates_legacy() {
        // ~20k distinct handles in one chunk — a production-fan-in
        // chunk. 512 bits / 3 hashes cannot represent that.
        let members: Vec<u64> = (0..20_000u64).map(|i| i * 2 + 1).collect();
        let b = build(members.iter().copied());
        let legacy = b.finish_legacy();
        let adaptive = b.finish_adaptive();

        // Probe in-range nonmembers (even values inside [min, max]) so
        // the min/max guard cannot help either filter.
        let probes: Vec<u64> = (0..10_000u64).map(|i| i * 4 + 2).collect();
        let fp = |f: &FileIdFilter| {
            probes.iter().filter(|&&p| f.may_contain(FileId(p))).count() as f64
                / probes.len() as f64
        };
        let legacy_fp = fp(&legacy);
        let adaptive_fp = fp(&adaptive);
        assert!(
            legacy_fp > 0.99,
            "the fixed filter should be saturated here, fp = {legacy_fp}"
        );
        assert!(
            adaptive_fp < 0.05,
            "the adaptive filter must stay selective, fp = {adaptive_fp}"
        );
        // And still no false negatives.
        assert!(members.iter().all(|&m| adaptive.may_contain(FileId(m))));
    }

    #[test]
    fn adaptive_bloom_size_scales_with_distinct_count() {
        let sized = |n: u64| -> usize {
            match build((0..n).map(|i| i * 7)).finish_adaptive().kind {
                FilterKind::Bloom { bits, .. } => bits.len(),
                FilterKind::Exact(_) => 0,
            }
        };
        let small = sized(200);
        let big = sized(20_000);
        assert!(small >= BLOOM_BYTES);
        assert!(big > small, "bigger fan-in must get a bigger filter");
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"inbox"), fnv1a64(b"inbox.lock"));
        let mut flipped = b"some chunk body".to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(fnv1a64(b"some chunk body"), fnv1a64(&flipped));
    }
}
