//! Segment naming, generations, and the reopen-and-append catalog.
//!
//! A *segment* is an ordinary store file (any format version this
//! crate writes) that holds one contiguous, time-ordered span of a
//! trace. A live ingest rotates through segments — sealing the hot one
//! and starting the next — so a directory of segments **is** the trace:
//! `seg-000000.nfseg`, `seg-000001.nfseg`, … in ordinal (= time) order.
//!
//! # Generations
//!
//! Background compaction ([`crate::compact`]) merges runs of adjacent
//! segments into one larger segment tagged with a **generation**. A
//! [`SegmentId`] names the result: generation 0 is a freshly sealed
//! base segment covering exactly one ordinal (`seg-000042.nfseg`);
//! generation *g* ≥ 1 covers an inclusive base-ordinal range and is
//! named `seg-<lo>-<hi>.g<gen>.nfseg` (`seg-000000-000003.g01.nfseg`).
//! The old single-ordinal names *are* the generation-0 encoding, so
//! every catalog written before compaction existed keeps opening
//! unchanged.
//!
//! A compacted segment **supersedes** the segments it merged: any
//! segment of a higher generation whose ordinal range contains
//! another's. Opening a catalog resolves supersession — if a crash
//! left both a compaction's sources and its output on disk, the output
//! wins and the sources are ignored (and deleted by the sweeping
//! open), so reopen is deterministic: the catalog is always either the
//! pre-compaction or the post-compaction state, never a mix.
//!
//! [`SegmentCatalog`] is the directory view: it scans for segment
//! files, resolves generations, orders survivors by ordinal range, and
//! hands out the next base ordinal to write — which is what makes a
//! stopped ingest *restartable*: reopen the catalog, and appending
//! continues exactly where the last sealed segment left off.
//! [`crate::StoreIndex::open_dir`] builds the merged analysis view
//! over a catalog. [`SegmentCatalog::open`] never touches the
//! directory's files (it may race a live writer's hot `.tmp`);
//! [`SegmentCatalog::open_and_sweep`] — the write path's entry point —
//! additionally deletes stale temps, superseded sources, and orphaned
//! sequence sidecars.

use crate::error::{Result, StoreError};
use crate::seqfile;
use std::path::{Path, PathBuf};

/// File suffix every segment carries.
pub const SEGMENT_SUFFIX: &str = ".nfseg";

/// The identity of one segment file: its compaction generation and the
/// inclusive range `[lo, hi]` of base ordinals it covers. A freshly
/// sealed segment is generation 0 with `lo == hi`; each compaction
/// pass merges a contiguous run and bumps the generation past its
/// sources' maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId {
    /// First base ordinal covered.
    pub lo: u64,
    /// Last base ordinal covered (inclusive; `== lo` for a base
    /// segment).
    pub hi: u64,
    /// Compaction generation (0 = sealed directly by an ingest).
    pub generation: u32,
}

impl SegmentId {
    /// The generation-0 id of freshly sealed base segment `ordinal`.
    pub fn base(ordinal: u64) -> Self {
        SegmentId {
            lo: ordinal,
            hi: ordinal,
            generation: 0,
        }
    }

    /// This segment's file name (`seg-000042.nfseg` for a base
    /// segment, `seg-000000-000003.g01.nfseg` for a compacted one).
    pub fn file_name(&self) -> String {
        if self.generation == 0 && self.lo == self.hi {
            segment_file_name(self.lo)
        } else {
            format!(
                "seg-{:06}-{:06}.g{:02}{SEGMENT_SUFFIX}",
                self.lo, self.hi, self.generation
            )
        }
    }

    /// Whether this segment's ordinal range contains all of `other`'s.
    pub fn contains(&self, other: &SegmentId) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether this segment replaces `other` in a catalog: a strictly
    /// higher generation covering `other`'s whole ordinal range.
    pub fn supersedes(&self, other: &SegmentId) -> bool {
        self.generation > other.generation && self.contains(other)
    }
}

/// The file name of base segment `ordinal` (`seg-000042.nfseg`).
pub fn segment_file_name(ordinal: u64) -> String {
    format!("seg-{ordinal:06}{SEGMENT_SUFFIX}")
}

/// Parses a segment file name back to its [`SegmentId`]; `None` for
/// anything that is not a segment name (including `.tmp` temps and
/// sequence sidecars).
pub fn parse_segment_name(name: &str) -> Option<SegmentId> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(SEGMENT_SUFFIX)?;
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if digits(rest) {
        return rest.parse().ok().map(SegmentId::base);
    }
    let (range, generation) = rest.split_once(".g")?;
    let (lo, hi) = range.split_once('-')?;
    if !digits(lo) || !digits(hi) || !digits(generation) {
        return None;
    }
    let id = SegmentId {
        lo: lo.parse().ok()?,
        hi: hi.parse().ok()?,
        generation: generation.parse().ok()?,
    };
    (id.generation >= 1 && id.lo <= id.hi).then_some(id)
}

/// Splits scanned segment ids into the surviving catalog (supersession
/// resolved, sorted by ordinal range) and the superseded sources a
/// crashed compaction left behind.
///
/// # Errors
///
/// If two survivors' ordinal ranges overlap — a directory no crash of
/// this crate's protocols can produce, so it is reported rather than
/// silently resolved.
fn resolve(mut ids: Vec<SegmentId>) -> Result<(Vec<SegmentId>, Vec<SegmentId>)> {
    ids.sort_unstable();
    let superseded: Vec<SegmentId> = ids
        .iter()
        .filter(|a| ids.iter().any(|b| b.supersedes(a)))
        .copied()
        .collect();
    let mut live: Vec<SegmentId> = ids
        .into_iter()
        .filter(|a| !superseded.contains(a))
        .collect();
    live.sort_unstable();
    for w in live.windows(2) {
        if w[1].lo <= w[0].hi {
            return Err(StoreError::Format(format!(
                "segments {} and {} overlap without superseding each other",
                w[0].file_name(),
                w[1].file_name()
            )));
        }
    }
    Ok((live, superseded))
}

/// The ordered set of sealed segments in one directory, generations
/// resolved (see the module docs).
///
/// # Examples
///
/// ```
/// use nfstrace_store::segments::SegmentCatalog;
///
/// let dir = std::env::temp_dir().join("nfstrace-catalog-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let mut cat = SegmentCatalog::open(&dir).unwrap();
/// let first = cat.next_ordinal();
/// let path = cat.path_for(first);
/// // ... write a store file at `path`, then:
/// // cat.note_sealed(first);
/// ```
#[derive(Debug)]
pub struct SegmentCatalog {
    dir: PathBuf,
    /// Surviving segment ids, ascending by ordinal range.
    ids: Vec<SegmentId>,
}

impl SegmentCatalog {
    /// Opens (creating if needed) a segment directory, scans it, and
    /// resolves supersession. Read-only: stale `.tmp` files, orphan
    /// sidecars, and superseded sources are *ignored*, never deleted —
    /// this may run against a directory another process is actively
    /// writing. Writers reopen with
    /// [`SegmentCatalog::open_and_sweep`] instead.
    ///
    /// # Errors
    ///
    /// On directory create/read failure, or a directory whose
    /// surviving segments overlap.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(StoreError::Io)? {
            let entry = entry.map_err(StoreError::Io)?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_name) {
                ids.push(id);
            }
        }
        let (live, _) = resolve(ids)?;
        Ok(SegmentCatalog { dir, ids: live })
    }

    /// [`SegmentCatalog::open`] for the write path: additionally
    /// deletes everything a crash can leave behind — half-written
    /// `*.nfseg.tmp` / `*.nfseq.tmp` temps, the source segments (and
    /// their sidecars) of a compaction whose output already landed,
    /// and sequence sidecars whose segment never got renamed. After
    /// the sweep the directory holds exactly the surviving catalog:
    /// reopen is deterministic, always the old state or the new one,
    /// never a mix.
    ///
    /// # Errors
    ///
    /// See [`SegmentCatalog::open`], plus file removal failure.
    pub fn open_and_sweep<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;
        let mut ids = Vec::new();
        let mut sidecars = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(StoreError::Io)? {
            let entry = entry.map_err(StoreError::Io)?;
            let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
                continue;
            };
            if name.ends_with(".nfseg.tmp") || name.ends_with(".nfseq.tmp") {
                std::fs::remove_file(entry.path())?;
            } else if let Some(id) = parse_segment_name(&name) {
                ids.push(id);
            } else if name.ends_with(seqfile::SEQ_SUFFIX) {
                sidecars.push(entry.path());
            }
        }
        let (live, superseded) = resolve(ids)?;
        for id in &superseded {
            let path = dir.join(id.file_name());
            std::fs::remove_file(&path)?;
            let sidecar = seqfile::sidecar_path(&path);
            if sidecar.exists() {
                std::fs::remove_file(sidecar)?;
            }
        }
        // Only now — with superseded segments gone — does "my segment
        // file exists" decide which sidecars are orphans. (A superseded
        // segment's sidecar was already removed above.)
        for sidecar in sidecars {
            if sidecar.exists() && !sidecar.with_extension("nfseg").exists() {
                std::fs::remove_file(sidecar)?;
            }
        }
        Ok(SegmentCatalog { dir, ids: live })
    }

    /// The directory this catalog describes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Surviving segment ids, ascending by ordinal range.
    pub fn ids(&self) -> &[SegmentId] {
        &self.ids
    }

    /// Number of surviving segments.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no segment has been sealed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Surviving segment paths, in ordinal (= time) order.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.ids.iter().map(|id| self.path_of(id)).collect()
    }

    /// The path base segment `ordinal` lives (or will live) at.
    pub fn path_for(&self, ordinal: u64) -> PathBuf {
        self.path_of(&SegmentId::base(ordinal))
    }

    /// The path segment `id` lives (or will live) at.
    pub fn path_of(&self, id: &SegmentId) -> PathBuf {
        self.dir.join(id.file_name())
    }

    /// The base ordinal the next sealed segment should take — one past
    /// the highest ordinal any surviving segment covers, so a reopened
    /// ingest appends after everything already on disk (compacted or
    /// not).
    pub fn next_ordinal(&self) -> u64 {
        self.ids.last().map_or(0, |id| id.hi + 1)
    }

    /// Records that base segment `ordinal` was sealed (its file fully
    /// written and renamed).
    pub fn note_sealed(&mut self, ordinal: u64) {
        debug_assert!(self.ids.last().is_none_or(|id| id.hi < ordinal));
        self.ids.push(SegmentId::base(ordinal));
    }

    /// Removes `id` from the in-memory catalog — retention retired its
    /// file (deleted or moved to the archive tier).
    pub fn forget(&mut self, id: &SegmentId) {
        self.ids.retain(|x| x != id);
    }

    /// Records that a compaction's `output` segment replaced the
    /// contiguous run of catalog entries its ordinal range covers, and
    /// returns that run's position as `(first index, length)` — the
    /// in-memory swap mirroring the on-disk supersession, so a live
    /// ingest can splice its parallel reader/sidecar vectors.
    ///
    /// # Panics
    ///
    /// If `output` does not cover a non-empty contiguous run of whole
    /// existing entries — compaction plans are built from this catalog,
    /// so anything else is a caller bug.
    pub fn apply_compaction(&mut self, output: SegmentId) -> (usize, usize) {
        let first = self
            .ids
            .iter()
            .position(|id| output.contains(id))
            .expect("compaction output must cover existing segments");
        let count = self.ids[first..]
            .iter()
            .take_while(|id| output.contains(id))
            .count();
        let covered = &self.ids[first..first + count];
        assert!(
            covered.first().is_some_and(|id| id.lo == output.lo)
                && covered.last().is_some_and(|id| id.hi == output.hi),
            "compaction output {} must cover whole catalog entries",
            output.file_name()
        );
        self.ids.splice(first..first + count, [output]);
        (first, count)
    }
}

/// Directory-name prefix of one shard of a sharded live ingest.
pub const SHARD_PREFIX: &str = "shard-";

/// The subdirectory name shard `index` of a sharded ingest lives in
/// (`shard-000`).
pub fn shard_dir_name(index: usize) -> String {
    format!("{SHARD_PREFIX}{index:03}")
}

/// Parses a shard directory name back to its index; `None` for
/// anything that is not a shard directory name.
pub fn parse_shard_dir_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix(SHARD_PREFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Opens (creating as needed) the `count` per-shard segment catalogs
/// under `root`: `root/shard-000` … — the on-disk layout of a sharded
/// live ingest, each shard rotating its own independent segment chain.
///
/// # Errors
///
/// If `root` already holds shard directories at indices `>= count`
/// (the directory was written at a higher shard count and reopening it
/// narrower would silently drop records), or on I/O failure.
pub fn open_shard_catalogs<P: AsRef<Path>>(root: P, count: usize) -> Result<Vec<SegmentCatalog>> {
    let root = root.as_ref();
    std::fs::create_dir_all(root).map_err(StoreError::Io)?;
    for entry in std::fs::read_dir(root).map_err(StoreError::Io)? {
        let entry = entry.map_err(StoreError::Io)?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_shard_dir_name) {
            if idx >= count {
                return Err(StoreError::Format(format!(
                    "shard directory {} exceeds the configured shard count {count}",
                    entry.path().display()
                )));
            }
        }
    }
    (0..count)
        .map(|i| SegmentCatalog::open(root.join(shard_dir_name(i))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_names_roundtrip() {
        for ord in [0u64, 1, 42, 999_999, 1_000_000] {
            assert_eq!(
                parse_segment_name(&segment_file_name(ord)),
                Some(SegmentId::base(ord))
            );
            assert_eq!(SegmentId::base(ord).file_name(), segment_file_name(ord));
        }
        for bad in [
            "seg-.nfseg",
            "seg-12.nfstore",
            "other-000001.nfseg",
            "seg-12a.nfseg",
            "seg-000001.nfseg.tmp",
            "seg-000001.nfseq",
        ] {
            assert_eq!(parse_segment_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn compacted_names_roundtrip() {
        for (lo, hi, generation) in [(0u64, 3u64, 1u32), (4, 4, 2), (100, 1_000_000, 17)] {
            let id = SegmentId { lo, hi, generation };
            assert_eq!(parse_segment_name(&id.file_name()), Some(id), "{id:?}");
        }
        assert_eq!(
            SegmentId {
                lo: 0,
                hi: 3,
                generation: 1
            }
            .file_name(),
            "seg-000000-000003.g01.nfseg"
        );
        for bad in [
            "seg-000000-000003.nfseg",     // range without a generation
            "seg-000000-000003.g00.nfseg", // generation 0 is the base form
            "seg-000003-000000.g01.nfseg", // inverted range
            "seg-000000-00000x.g01.nfseg", // non-digit
            "seg-000000-000003.g01.nfseq", // sidecar suffix
            "seg-000000-000003.g01.nfseg.tmp",
        ] {
            assert_eq!(parse_segment_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn supersession_prefers_higher_generations() {
        let g0: Vec<SegmentId> = (0..4).map(SegmentId::base).collect();
        let g1 = SegmentId {
            lo: 0,
            hi: 3,
            generation: 1,
        };
        assert!(g1.supersedes(&g0[0]) && g1.supersedes(&g0[3]));
        assert!(!g0[0].supersedes(&g1));
        // A crash can leave sources and output side by side: the output
        // wins deterministically.
        let mut all = g0.clone();
        all.push(g1);
        let (live, superseded) = resolve(all).expect("resolve");
        assert_eq!(live, vec![g1]);
        assert_eq!(superseded, g0);
        // Overlap without containment is corruption, not supersession.
        let skew = SegmentId {
            lo: 2,
            hi: 5,
            generation: 1,
        };
        assert!(resolve(vec![g1, skew]).is_err());
    }

    #[test]
    fn shard_names_roundtrip() {
        for idx in [0usize, 1, 7, 999, 1000] {
            assert_eq!(parse_shard_dir_name(&shard_dir_name(idx)), Some(idx));
        }
        for bad in ["shard-", "shard-3a", "seg-000", "shard000", "shard-000.tmp"] {
            assert_eq!(parse_shard_dir_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn shard_catalogs_create_and_reject_narrowing() {
        let root = std::env::temp_dir().join(format!("nfstrace-shards-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let cats = open_shard_catalogs(&root, 3).expect("create");
        assert_eq!(cats.len(), 3);
        for (i, cat) in cats.iter().enumerate() {
            assert!(cat.dir().ends_with(shard_dir_name(i)));
            assert!(cat.is_empty());
        }
        // Reopening at the same or wider count is fine; narrower would
        // silently orphan shard-002's records and must fail.
        assert!(open_shard_catalogs(&root, 3).is_ok());
        assert!(open_shard_catalogs(&root, 4).is_ok());
        let err = open_shard_catalogs(&root, 2).expect_err("narrowing");
        assert!(err.to_string().contains("shard count"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn catalog_scans_orders_and_appends() {
        let dir = std::env::temp_dir().join(format!("nfstrace-catalog-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cat = SegmentCatalog::open(&dir).expect("open empty");
        assert!(cat.is_empty());
        assert_eq!(cat.next_ordinal(), 0);
        for ord in [0u64, 1, 2] {
            std::fs::write(cat.path_for(ord), b"x").expect("touch");
            cat.note_sealed(ord);
        }
        // Unrelated files are ignored on rescan.
        std::fs::write(dir.join("notes.txt"), b"x").expect("touch");
        let reopened = SegmentCatalog::open(&dir).expect("reopen");
        assert_eq!(
            reopened.ids(),
            &[SegmentId::base(0), SegmentId::base(1), SegmentId::base(2)]
        );
        assert_eq!(reopened.next_ordinal(), 3);
        assert_eq!(reopened.paths().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn next_ordinal_appends_past_compacted_ranges() {
        let dir = std::env::temp_dir().join(format!("nfstrace-catalog-gen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let g1 = SegmentId {
            lo: 0,
            hi: 3,
            generation: 1,
        };
        std::fs::write(dir.join(g1.file_name()), b"x").expect("touch");
        std::fs::write(dir.join(segment_file_name(4)), b"x").expect("touch");
        let cat = SegmentCatalog::open(&dir).expect("open");
        assert_eq!(cat.ids(), &[g1, SegmentId::base(4)]);
        assert_eq!(cat.next_ordinal(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: a crash during sealing used to leave `*.tmp`
    /// segments and orphan sidecars that a plain reopen tripped over
    /// (or silently mis-enumerated). The read-only open must ignore
    /// them; the sweeping open must delete them; both must enumerate
    /// the same surviving catalog.
    #[test]
    fn stale_tmps_and_orphans_are_ignored_then_swept() {
        let dir =
            std::env::temp_dir().join(format!("nfstrace-catalog-stale-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        for ord in [0u64, 1] {
            std::fs::write(dir.join(segment_file_name(ord)), b"x").expect("touch");
        }
        // A crash mid-seal: half-written segment temp, half-written
        // sidecar temp, and a sidecar whose segment never got renamed.
        std::fs::write(dir.join("seg-000002.nfseg.tmp"), b"partial").expect("touch");
        std::fs::write(dir.join("seg-000002.nfseq.tmp"), b"partial").expect("touch");
        std::fs::write(dir.join("seg-000002.nfseq"), b"orphan").expect("touch");

        let read_only = SegmentCatalog::open(&dir).expect("read-only open");
        assert_eq!(read_only.ids(), &[SegmentId::base(0), SegmentId::base(1)]);
        assert_eq!(read_only.next_ordinal(), 2);
        assert!(
            dir.join("seg-000002.nfseg.tmp").exists(),
            "read-only open must not delete"
        );

        let swept = SegmentCatalog::open_and_sweep(&dir).expect("sweeping open");
        assert_eq!(swept.ids(), read_only.ids());
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp") || n.ends_with(".nfseq"))
            .collect();
        assert!(leftovers.is_empty(), "not swept: {leftovers:?}");
        // Sweeping again is a no-op; reopen stays deterministic.
        let again = SegmentCatalog::open_and_sweep(&dir).expect("idempotent");
        assert_eq!(again.ids(), swept.ids());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_removes_superseded_sources_and_keeps_live_sidecars() {
        let dir = std::env::temp_dir().join(format!("nfstrace-catalog-sup-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A compaction crashed after renaming its output but before
        // deleting its sources: both live on disk, sources with
        // sidecars.
        for ord in [0u64, 1] {
            std::fs::write(dir.join(segment_file_name(ord)), b"src").expect("touch");
            std::fs::write(dir.join(format!("seg-{ord:06}.nfseq")), b"side").expect("touch");
        }
        let out = SegmentId {
            lo: 0,
            hi: 1,
            generation: 1,
        };
        std::fs::write(dir.join(out.file_name()), b"out").expect("touch");
        std::fs::write(dir.join("seg-000000-000001.g01.nfseq"), b"side").expect("touch");
        std::fs::write(dir.join(segment_file_name(2)), b"tail").expect("touch");

        let swept = SegmentCatalog::open_and_sweep(&dir).expect("sweep");
        assert_eq!(swept.ids(), &[out, SegmentId::base(2)]);
        assert!(!dir.join(segment_file_name(0)).exists());
        assert!(!dir.join("seg-000000.nfseq").exists());
        assert!(
            dir.join("seg-000000-000001.g01.nfseq").exists(),
            "the output's own sidecar survives"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_compaction_splices_the_covered_run() {
        let dir =
            std::env::temp_dir().join(format!("nfstrace-catalog-apply-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cat = SegmentCatalog::open(&dir).expect("open");
        for ord in 0..5 {
            cat.note_sealed(ord);
        }
        let out = SegmentId {
            lo: 1,
            hi: 3,
            generation: 1,
        };
        assert_eq!(cat.apply_compaction(out), (1, 3));
        assert_eq!(cat.ids(), &[SegmentId::base(0), out, SegmentId::base(4)]);
        assert_eq!(cat.next_ordinal(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
