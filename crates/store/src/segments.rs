//! Segment naming and the reopen-and-append catalog.
//!
//! A *segment* is an ordinary store file (any format version this
//! crate writes) that holds one contiguous, time-ordered span of a
//! trace. A live ingest rotates through segments — sealing the hot one
//! and starting the next — so a directory of segments **is** the trace:
//! `seg-000000.nfseg`, `seg-000001.nfseg`, … in ordinal (= time) order.
//!
//! [`SegmentCatalog`] is the directory view: it scans for segment
//! files, orders them by ordinal, and hands out the next ordinal to
//! write — which is what makes a stopped ingest *restartable*: reopen
//! the catalog, and appending continues exactly where the last sealed
//! segment left off. [`crate::StoreIndex::open_dir`] builds the
//! merged analysis view over a catalog.

use crate::error::{Result, StoreError};
use std::path::{Path, PathBuf};

/// File suffix every segment carries.
pub const SEGMENT_SUFFIX: &str = ".nfseg";

/// The file name of segment `ordinal` (`seg-000042.nfseg`).
pub fn segment_file_name(ordinal: u64) -> String {
    format!("seg-{ordinal:06}{SEGMENT_SUFFIX}")
}

/// Parses a segment file name back to its ordinal; `None` for anything
/// that is not a segment name.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(SEGMENT_SUFFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The ordered set of sealed segments in one directory.
///
/// # Examples
///
/// ```
/// use nfstrace_store::segments::SegmentCatalog;
///
/// let dir = std::env::temp_dir().join("nfstrace-catalog-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let mut cat = SegmentCatalog::open(&dir).unwrap();
/// let first = cat.next_ordinal();
/// let path = cat.path_for(first);
/// // ... write a store file at `path`, then:
/// // cat.note_sealed(first);
/// ```
#[derive(Debug)]
pub struct SegmentCatalog {
    dir: PathBuf,
    /// Sealed segment ordinals, ascending.
    ordinals: Vec<u64>,
}

impl SegmentCatalog {
    /// Opens (creating if needed) a segment directory and scans it.
    ///
    /// # Errors
    ///
    /// On directory create/read failure.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;
        let mut ordinals = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(StoreError::Io)? {
            let entry = entry.map_err(StoreError::Io)?;
            if let Some(ord) = entry.file_name().to_str().and_then(parse_segment_name) {
                ordinals.push(ord);
            }
        }
        ordinals.sort_unstable();
        Ok(SegmentCatalog { dir, ordinals })
    }

    /// The directory this catalog describes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sealed segment ordinals, ascending.
    pub fn ordinals(&self) -> &[u64] {
        &self.ordinals
    }

    /// Number of sealed segments.
    pub fn len(&self) -> usize {
        self.ordinals.len()
    }

    /// Whether no segment has been sealed.
    pub fn is_empty(&self) -> bool {
        self.ordinals.is_empty()
    }

    /// Sealed segment paths, in ordinal (= time) order.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.ordinals.iter().map(|&o| self.path_for(o)).collect()
    }

    /// The path segment `ordinal` lives (or will live) at.
    pub fn path_for(&self, ordinal: u64) -> PathBuf {
        self.dir.join(segment_file_name(ordinal))
    }

    /// The ordinal the next sealed segment should take — one past the
    /// highest existing, so a reopened ingest appends after everything
    /// already on disk.
    pub fn next_ordinal(&self) -> u64 {
        self.ordinals.last().map_or(0, |o| o + 1)
    }

    /// Records that `ordinal` was sealed (its file fully written and
    /// finished).
    pub fn note_sealed(&mut self, ordinal: u64) {
        debug_assert!(self.ordinals.last().is_none_or(|&o| o < ordinal));
        self.ordinals.push(ordinal);
    }
}

/// Directory-name prefix of one shard of a sharded live ingest.
pub const SHARD_PREFIX: &str = "shard-";

/// The subdirectory name shard `index` of a sharded ingest lives in
/// (`shard-000`).
pub fn shard_dir_name(index: usize) -> String {
    format!("{SHARD_PREFIX}{index:03}")
}

/// Parses a shard directory name back to its index; `None` for
/// anything that is not a shard directory name.
pub fn parse_shard_dir_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix(SHARD_PREFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Opens (creating as needed) the `count` per-shard segment catalogs
/// under `root`: `root/shard-000` … — the on-disk layout of a sharded
/// live ingest, each shard rotating its own independent segment chain.
///
/// # Errors
///
/// If `root` already holds shard directories at indices `>= count`
/// (the directory was written at a higher shard count and reopening it
/// narrower would silently drop records), or on I/O failure.
pub fn open_shard_catalogs<P: AsRef<Path>>(root: P, count: usize) -> Result<Vec<SegmentCatalog>> {
    let root = root.as_ref();
    std::fs::create_dir_all(root).map_err(StoreError::Io)?;
    for entry in std::fs::read_dir(root).map_err(StoreError::Io)? {
        let entry = entry.map_err(StoreError::Io)?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_shard_dir_name) {
            if idx >= count {
                return Err(StoreError::Format(format!(
                    "shard directory {} exceeds the configured shard count {count}",
                    entry.path().display()
                )));
            }
        }
    }
    (0..count)
        .map(|i| SegmentCatalog::open(root.join(shard_dir_name(i))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for ord in [0u64, 1, 42, 999_999, 1_000_000] {
            assert_eq!(parse_segment_name(&segment_file_name(ord)), Some(ord));
        }
        for bad in [
            "seg-.nfseg",
            "seg-12.nfstore",
            "other-000001.nfseg",
            "seg-12a.nfseg",
            "seg-000001.nfseg.tmp",
        ] {
            assert_eq!(parse_segment_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn shard_names_roundtrip() {
        for idx in [0usize, 1, 7, 999, 1000] {
            assert_eq!(parse_shard_dir_name(&shard_dir_name(idx)), Some(idx));
        }
        for bad in ["shard-", "shard-3a", "seg-000", "shard000", "shard-000.tmp"] {
            assert_eq!(parse_shard_dir_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn shard_catalogs_create_and_reject_narrowing() {
        let root = std::env::temp_dir().join(format!("nfstrace-shards-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let cats = open_shard_catalogs(&root, 3).expect("create");
        assert_eq!(cats.len(), 3);
        for (i, cat) in cats.iter().enumerate() {
            assert!(cat.dir().ends_with(shard_dir_name(i)));
            assert!(cat.is_empty());
        }
        // Reopening at the same or wider count is fine; narrower would
        // silently orphan shard-002's records and must fail.
        assert!(open_shard_catalogs(&root, 3).is_ok());
        assert!(open_shard_catalogs(&root, 4).is_ok());
        let err = open_shard_catalogs(&root, 2).expect_err("narrowing");
        assert!(err.to_string().contains("shard count"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn catalog_scans_orders_and_appends() {
        let dir = std::env::temp_dir().join(format!("nfstrace-catalog-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cat = SegmentCatalog::open(&dir).expect("open empty");
        assert!(cat.is_empty());
        assert_eq!(cat.next_ordinal(), 0);
        for ord in [0u64, 1, 2] {
            std::fs::write(cat.path_for(ord), b"x").expect("touch");
            cat.note_sealed(ord);
        }
        // Unrelated files are ignored on rescan.
        std::fs::write(dir.join("notes.txt"), b"x").expect("touch");
        let reopened = SegmentCatalog::open(&dir).expect("reopen");
        assert_eq!(reopened.ordinals(), &[0, 1, 2]);
        assert_eq!(reopened.next_ordinal(), 3);
        assert_eq!(reopened.paths().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
