//! The compact per-record binary codec.
//!
//! Records are encoded little-endian with three space levers:
//!
//! - **Delta-encoded timestamps.** Within a chunk, `micros` is stored as
//!   a varint delta from the previous record (records are time-sorted,
//!   so deltas are small), and `reply_micros` as a zigzag varint delta
//!   from the record's own `micros` (replies trail calls by a few
//!   hundred microseconds; a lost reply — `reply_micros == 0` — is a
//!   large negative delta, encoded exactly via wrapping arithmetic).
//! - **Varints everywhere.** Identities, offsets, counts, and status
//!   are LEB128 varints: the common small values take one byte, the
//!   rare `u32::MAX` "no reply" status takes five.
//! - **Escaped-name interning.** Name arguments are percent-escaped
//!   exactly as the text trace format escapes them
//!   ([`nfstrace_core::text::escape_name`]) and interned into a
//!   per-chunk string table; records reference names by varint index,
//!   so the ~dozen hot names of a mail workload (`inbox`, `inbox.lock`,
//!   …) are stored once per chunk.
//!
//! A presence bitmap leads each record so the nine optional fields cost
//! nothing when absent.

use crate::error::{Result, StoreError};
use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_core::text::{escape_name, unescape_name};
use std::collections::HashMap;

/// Presence-bitmap bits (flag varint).
const F_FH2: u32 = 1 << 0;
const F_NAME: u32 = 1 << 1;
const F_NAME2: u32 = 1 << 2;
const F_PRE_SIZE: u32 = 1 << 3;
const F_POST_SIZE: u32 = 1 << 4;
const F_TRUNCATE: u32 = 1 << 5;
const F_NEW_FH: u32 = 1 << 6;
const F_FTYPE: u32 = 1 << 7;
const F_EOF: u32 = 1 << 8;

/// Appends a LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`.
///
/// # Errors
///
/// On truncated input or a varint longer than 10 bytes.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| StoreError::Format("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Format("varint overflows u64".into()));
        }
        // The 10th byte holds only bit 63: a larger payload (or any
        // continuation past it) would shift data off the top — corrupt
        // input must be an error, never a silently wrong value.
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(StoreError::Format("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encodes a signed delta.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Reverses [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The per-chunk escaped-name intern table, encode side.
#[derive(Debug, Default)]
pub struct NameTable {
    index: HashMap<String, u64>,
    /// Escaped names in intern order.
    names: Vec<String>,
    /// Running encoded-size estimate, maintained by `intern` so the
    /// writer's per-record chunk-size check is O(1), not O(names).
    encoded_bytes: usize,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> Self {
        NameTable::default()
    }

    /// Interns `name` (escaping it first) and returns its index.
    pub fn intern(&mut self, name: &str) -> u64 {
        let escaped = escape_name(name);
        if let Some(&i) = self.index.get(&escaped) {
            return i;
        }
        let i = self.names.len() as u64;
        self.encoded_bytes += escaped.len() + 2;
        self.index.insert(escaped.clone(), i);
        self.names.push(escaped);
        i
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Approximate encoded size in bytes (for chunk-size accounting).
    pub fn encoded_len(&self) -> usize {
        self.encoded_bytes + 4
    }

    /// Serializes the table: count, then varint-length-prefixed escaped
    /// names in intern order.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.names.len() as u64);
        for n in &self.names {
            write_varint(buf, n.len() as u64);
            buf.extend_from_slice(n.as_bytes());
        }
    }

    /// Parses a table into the decode-side name list (unescaped).
    ///
    /// # Errors
    ///
    /// On truncation, invalid UTF-8, or a bad percent escape.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Vec<String>> {
        let n = read_varint(bytes, pos)?;
        let mut names = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            let len = read_varint(bytes, pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| StoreError::Format("truncated name table".into()))?;
            let escaped = std::str::from_utf8(&bytes[*pos..end])
                .map_err(|_| StoreError::Format("name table is not UTF-8".into()))?;
            names.push(
                unescape_name(escaped)
                    .ok_or_else(|| StoreError::Format("bad name escape".into()))?,
            );
            *pos = end;
        }
        Ok(names)
    }
}

/// Encodes one record. `prev_micros` is the previous record's capture
/// time within the chunk (0 for the first record); names are interned
/// into `names`.
pub fn encode_record(buf: &mut Vec<u8>, r: &TraceRecord, prev_micros: u64, names: &mut NameTable) {
    write_varint(buf, r.micros - prev_micros);
    write_varint(
        buf,
        zigzag((r.reply_micros as i64).wrapping_sub(r.micros as i64)),
    );

    let mut flags = 0u32;
    if r.fh2.is_some() {
        flags |= F_FH2;
    }
    if r.name.is_some() {
        flags |= F_NAME;
    }
    if r.name2.is_some() {
        flags |= F_NAME2;
    }
    if r.pre_size.is_some() {
        flags |= F_PRE_SIZE;
    }
    if r.post_size.is_some() {
        flags |= F_POST_SIZE;
    }
    if r.truncate_to.is_some() {
        flags |= F_TRUNCATE;
    }
    if r.new_fh.is_some() {
        flags |= F_NEW_FH;
    }
    if r.ftype.is_some() {
        flags |= F_FTYPE;
    }
    if r.eof {
        flags |= F_EOF;
    }
    write_varint(buf, u64::from(flags));

    let op_idx = Op::ALL
        .iter()
        .position(|&o| o == r.op)
        .expect("op is a member of Op::ALL") as u8;
    buf.push(op_idx);
    buf.push(r.vers);
    for v in [r.client, r.server, r.uid, r.gid, r.xid] {
        write_varint(buf, u64::from(v));
    }
    write_varint(buf, r.fh.0);
    write_varint(buf, r.offset);
    write_varint(buf, u64::from(r.count));
    write_varint(buf, u64::from(r.ret_count));
    write_varint(buf, u64::from(r.status));

    if let Some(fh2) = r.fh2 {
        write_varint(buf, fh2.0);
    }
    if let Some(name) = &r.name {
        write_varint(buf, names.intern(name));
    }
    if let Some(name2) = &r.name2 {
        write_varint(buf, names.intern(name2));
    }
    if let Some(v) = r.pre_size {
        write_varint(buf, v);
    }
    if let Some(v) = r.post_size {
        write_varint(buf, v);
    }
    if let Some(v) = r.truncate_to {
        write_varint(buf, v);
    }
    if let Some(fh) = r.new_fh {
        write_varint(buf, fh.0);
    }
    if let Some(t) = r.ftype {
        buf.push(t);
    }
}

/// Decodes one record. `prev_micros` mirrors the encode side; `names`
/// is the chunk's decoded name table.
///
/// # Errors
///
/// On truncation, an unknown op byte, or a name index out of range.
pub fn decode_record(
    bytes: &[u8],
    pos: &mut usize,
    prev_micros: u64,
    names: &[String],
) -> Result<TraceRecord> {
    let micros = prev_micros
        .checked_add(read_varint(bytes, pos)?)
        .ok_or_else(|| StoreError::Format("timestamp delta overflows".into()))?;
    let reply_delta = unzigzag(read_varint(bytes, pos)?);
    let flags = read_varint(bytes, pos)? as u32;

    let take_byte = |pos: &mut usize| -> Result<u8> {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| StoreError::Format("truncated record".into()))?;
        *pos += 1;
        Ok(b)
    };
    let op_idx = take_byte(pos)?;
    let op = *Op::ALL
        .get(usize::from(op_idx))
        .ok_or_else(|| StoreError::Format(format!("unknown op byte {op_idx}")))?;
    let vers = take_byte(pos)?;

    let u32_field = |pos: &mut usize| -> Result<u32> {
        let v = read_varint(bytes, pos)?;
        u32::try_from(v).map_err(|_| StoreError::Format("u32 field out of range".into()))
    };
    let client = u32_field(pos)?;
    let server = u32_field(pos)?;
    let uid = u32_field(pos)?;
    let gid = u32_field(pos)?;
    let xid = u32_field(pos)?;
    let fh = FileId(read_varint(bytes, pos)?);
    let offset = read_varint(bytes, pos)?;
    let count = u32_field(pos)?;
    let ret_count = u32_field(pos)?;
    let status = u32_field(pos)?;

    let name_at = |i: u64| -> Result<String> {
        names
            .get(i as usize)
            .cloned()
            .ok_or_else(|| StoreError::Format(format!("name index {i} out of range")))
    };
    let fh2 = (flags & F_FH2 != 0)
        .then(|| read_varint(bytes, pos).map(FileId))
        .transpose()?;
    let name = (flags & F_NAME != 0)
        .then(|| read_varint(bytes, pos).and_then(name_at))
        .transpose()?;
    let name2 = (flags & F_NAME2 != 0)
        .then(|| read_varint(bytes, pos).and_then(name_at))
        .transpose()?;
    let pre_size = (flags & F_PRE_SIZE != 0)
        .then(|| read_varint(bytes, pos))
        .transpose()?;
    let post_size = (flags & F_POST_SIZE != 0)
        .then(|| read_varint(bytes, pos))
        .transpose()?;
    let truncate_to = (flags & F_TRUNCATE != 0)
        .then(|| read_varint(bytes, pos))
        .transpose()?;
    let new_fh = (flags & F_NEW_FH != 0)
        .then(|| read_varint(bytes, pos).map(FileId))
        .transpose()?;
    let ftype = (flags & F_FTYPE != 0).then(|| take_byte(pos)).transpose()?;

    Ok(TraceRecord {
        micros,
        reply_micros: (micros as i64).wrapping_add(reply_delta) as u64,
        client,
        server,
        uid,
        gid,
        xid,
        vers,
        op,
        fh,
        fh2,
        name,
        name2,
        offset,
        count,
        ret_count,
        eof: flags & F_EOF != 0,
        status,
        pre_size,
        post_size,
        truncate_to,
        new_fh,
        ftype,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let probes = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &probes {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &probes {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 500, -500, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn record_roundtrip_all_fields() {
        let mut r = TraceRecord::new(1_000_000, Op::Rename, FileId(0xdead_beef))
            .with_name("inbox tmp%1")
            .with_range(1 << 40, 65_535)
            .with_post_size(123)
            .with_eof(true);
        r.reply_micros = 1_000_250;
        r.client = u32::MAX;
        r.uid = 501;
        r.gid = 20;
        r.xid = 0x1234_5678;
        r.vers = 2;
        r.fh2 = Some(FileId(7));
        r.name2 = Some("mbox".into());
        r.pre_size = Some(0);
        r.truncate_to = Some(u64::MAX);
        r.new_fh = Some(FileId(9));
        r.ftype = Some(2);
        r.status = u32::MAX;

        let mut names = NameTable::new();
        let mut buf = Vec::new();
        encode_record(&mut buf, &r, 999_000, &mut names);
        let mut table_buf = Vec::new();
        names.encode(&mut table_buf);
        let mut pos = 0;
        let decoded_names = NameTable::decode(&table_buf, &mut pos).unwrap();
        let mut pos = 0;
        let back = decode_record(&buf, &mut pos, 999_000, &decoded_names).unwrap();
        assert_eq!(back, r);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn lost_reply_encodes_exactly() {
        let mut r = TraceRecord::new(u64::MAX - 5, Op::Read, FileId(1));
        r.reply_micros = 0; // lost reply: a huge negative delta
        r.status = u32::MAX;
        let mut names = NameTable::new();
        let mut buf = Vec::new();
        encode_record(&mut buf, &r, u64::MAX - 5, &mut names);
        let mut pos = 0;
        let back = decode_record(&buf, &mut pos, u64::MAX - 5, &[]).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn interning_dedups_hot_names() {
        let mut names = NameTable::new();
        let mut buf = Vec::new();
        let mut prev = 0;
        for i in 0..100u64 {
            let r = TraceRecord::new(i, Op::Lookup, FileId(1)).with_name("inbox.lock");
            encode_record(&mut buf, &r, prev, &mut names);
            prev = i;
        }
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let r = TraceRecord::new(5, Op::Read, FileId(1)).with_range(0, 8192);
        let mut names = NameTable::new();
        let mut buf = Vec::new();
        encode_record(&mut buf, &r, 0, &mut names);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                decode_record(&buf[..cut], &mut pos, 0, &[]).is_err(),
                "cut={cut}"
            );
        }
    }
}
