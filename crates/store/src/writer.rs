//! Streaming store writer.

use crate::codec::{encode_record, write_varint, NameTable};
use crate::compress;
use crate::error::{Result, StoreError};
use crate::format::{
    fnv1a64, ChunkMeta, FilterBuilder, FilterKind, StoreVersion, END_MAGIC, FILTER_KIND_BLOOM,
    FILTER_KIND_EXACT, FLAG_COMPRESSED, MAGIC_V1, MAGIC_V2, MAGIC_V3,
};
use nfstrace_core::record::TraceRecord;
use nfstrace_core::sink::RecordSink;
use nfstrace_telemetry::{Counter, Gauge, Registry};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Per-chunk compression policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Store every chunk raw (still checksummed and filtered under v2).
    None,
    /// LZ-compress each chunk, keeping the raw form when it is smaller
    /// — the flags byte records which form each chunk took (default).
    #[default]
    Lz,
}

/// Store layout knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Soft cap on a chunk's encoded size: the writer flushes the
    /// pending chunk once its record bytes plus name table reach this.
    /// Smaller chunks mean finer-grained parallel indexing and lower
    /// peak memory; larger chunks amortize per-chunk overhead.
    pub target_chunk_bytes: usize,
    /// Per-chunk compression policy (v2/v3 only; v1 is always raw).
    pub compression: Compression,
    /// On-disk format revision to emit. v3 (default) sizes each
    /// chunk's file filter from its distinct-handle count; v2 and v1
    /// reproduce the earlier layouts byte for byte.
    pub version: StoreVersion,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            // ~4 MiB encoded ≈ a few hundred thousand records per
            // chunk: decoded, tens of MB — bounded regardless of how
            // many days the whole trace spans.
            target_chunk_bytes: 4 << 20,
            compression: Compression::default(),
            version: StoreVersion::default(),
        }
    }
}

/// Writes a time-ordered record stream into a chunked store file.
///
/// Records are encoded into an in-memory chunk buffer; when the buffer
/// reaches [`StoreConfig::target_chunk_bytes`] the chunk is flushed to
/// disk and its [`ChunkMeta`] (offset, length, record count, time
/// range — plus, under v2/v3, a checksum and a primary-file-handle
/// filter, adaptively sized under v3) queued for the footer. Under
/// v2/v3 each flushed chunk is LZ-compressed when that wins
/// ([`Compression::Lz`]), with the raw form kept otherwise; the choice
/// is recorded in the chunk's flags byte. [`StoreWriter::finish`]
/// flushes the trailing chunk and writes the footer — nothing but the
/// current chunk's encoding (and its distinct-handle set) is ever
/// resident.
///
/// # Examples
///
/// ```no_run
/// use nfstrace_core::record::{FileId, Op, TraceRecord};
/// use nfstrace_store::{StoreConfig, StoreWriter};
///
/// let mut w = StoreWriter::create("trace.nfstore", StoreConfig::default()).unwrap();
/// w.push(&TraceRecord::new(0, Op::Read, FileId(1)).with_range(0, 8192)).unwrap();
/// let summary = w.finish().unwrap();
/// assert_eq!(summary.total_records, 1);
/// ```
#[derive(Debug)]
pub struct StoreWriter {
    out: BufWriter<File>,
    config: StoreConfig,
    /// Encoded records of the pending chunk.
    chunk_buf: Vec<u8>,
    names: NameTable,
    chunk_records: u64,
    chunk_min: u64,
    /// Distinct primary handles of the pending chunk (v2/v3 footer
    /// filters are finished from this at flush time).
    filter: FilterBuilder,
    /// Previous record's `micros` (delta-encoding state + order check).
    prev_micros: u64,
    any_pushed: bool,
    /// Current file offset (next chunk lands here).
    offset: u64,
    chunks: Vec<ChunkMeta>,
    metrics: StoreWriteMetrics,
}

/// The write-side `store.*` slice of the pipeline-health export.
#[derive(Debug)]
struct StoreWriteMetrics {
    /// `store.records_written` — records accepted by [`StoreWriter::push`].
    records_written: Counter,
    /// `store.chunks_written` — chunks flushed to disk.
    chunks_written: Counter,
    /// `store.chunk_bytes_raw` — chunk payload bytes before compression.
    chunk_bytes_raw: Counter,
    /// `store.chunk_bytes_stored` — chunk bytes as stored on disk
    /// (compressed form when it won, raw fallback otherwise).
    chunk_bytes_stored: Counter,
    /// `store.compression_ratio` — stored/raw bytes across every chunk
    /// this registry has seen (1.0 = stored raw, smaller is better).
    compression_ratio: Gauge,
}

impl StoreWriteMetrics {
    fn register(registry: &Registry) -> Self {
        StoreWriteMetrics {
            records_written: registry.counter("store.records_written"),
            chunks_written: registry.counter("store.chunks_written"),
            chunk_bytes_raw: registry.counter("store.chunk_bytes_raw"),
            chunk_bytes_stored: registry.counter("store.chunk_bytes_stored"),
            compression_ratio: registry.gauge("store.compression_ratio"),
        }
    }

    /// Accounts one flushed chunk and refreshes the ratio gauge.
    fn record_chunk(&self, raw_len: usize, stored_len: usize) {
        self.chunks_written.inc();
        self.chunk_bytes_raw.add(raw_len as u64);
        self.chunk_bytes_stored.add(stored_len as u64);
        let raw = self.chunk_bytes_raw.value();
        if raw > 0 {
            self.compression_ratio
                .set(self.chunk_bytes_stored.value() as f64 / raw as f64);
        }
    }
}

/// What [`StoreWriter::finish`] reports.
#[derive(Debug, Clone)]
pub struct StoreSummary {
    /// Records written.
    pub total_records: u64,
    /// Chunks written.
    pub chunks: usize,
    /// Final file size in bytes.
    pub file_bytes: u64,
}

impl StoreWriter {
    /// Creates (truncating) a store file.
    ///
    /// # Errors
    ///
    /// On file creation or header-write failure.
    pub fn create<P: AsRef<Path>>(path: P, config: StoreConfig) -> Result<Self> {
        Self::create_with_registry(path, config, &Registry::new())
    }

    /// [`StoreWriter::create`] reporting the write-side `store.*`
    /// telemetry into `registry`.
    ///
    /// # Errors
    ///
    /// On file creation or header-write failure.
    pub fn create_with_registry<P: AsRef<Path>>(
        path: P,
        config: StoreConfig,
        registry: &Registry,
    ) -> Result<Self> {
        let magic = match config.version {
            StoreVersion::V1 => MAGIC_V1,
            StoreVersion::V2 => MAGIC_V2,
            StoreVersion::V3 => MAGIC_V3,
        };
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(magic)?;
        Ok(StoreWriter {
            out,
            config,
            chunk_buf: Vec::new(),
            names: NameTable::new(),
            chunk_records: 0,
            chunk_min: 0,
            filter: FilterBuilder::new(),
            prev_micros: 0,
            any_pushed: false,
            offset: magic.len() as u64,
            chunks: Vec::new(),
            metrics: StoreWriteMetrics::register(registry),
        })
    }

    /// Appends one record. Records must arrive in nondecreasing
    /// `micros` order.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfOrder`] on a time-travelling record, or I/O
    /// errors from a chunk flush.
    pub fn push(&mut self, r: &TraceRecord) -> Result<()> {
        if self.any_pushed && r.micros < self.prev_micros {
            return Err(StoreError::OutOfOrder {
                prev: self.prev_micros,
                next: r.micros,
            });
        }
        if self.chunk_records == 0 {
            self.chunk_min = r.micros;
            self.prev_micros = r.micros;
            // First delta in a chunk is from the chunk's own first
            // record, so every chunk decodes standalone.
            encode_record(&mut self.chunk_buf, r, r.micros, &mut self.names);
        } else {
            encode_record(&mut self.chunk_buf, r, self.prev_micros, &mut self.names);
        }
        self.filter.insert(r.fh);
        self.prev_micros = r.micros;
        self.any_pushed = true;
        self.chunk_records += 1;
        self.metrics.records_written.inc();
        if self.chunk_buf.len() + self.names.encoded_len() >= self.config.target_chunk_bytes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(self.names.encoded_len() + 16 + self.chunk_buf.len());
        self.names.encode(&mut payload);
        write_varint(&mut payload, self.chunk_records);
        write_varint(&mut payload, self.chunk_min);
        payload.extend_from_slice(&self.chunk_buf);
        let raw_len = payload.len();

        let stored = match self.config.version {
            StoreVersion::V1 => payload,
            StoreVersion::V2 | StoreVersion::V3 => {
                let mut body = Vec::with_capacity(payload.len() + 1);
                let compressed = match self.config.compression {
                    Compression::None => None,
                    Compression::Lz => {
                        let c = compress::compress(&payload);
                        let mut frame = Vec::new();
                        write_varint(&mut frame, payload.len() as u64);
                        // Raw fallback: only keep the compressed form
                        // when flags + frame + stream beat flags + raw.
                        (frame.len() + c.len() < payload.len()).then_some((frame, c))
                    }
                };
                match compressed {
                    Some((frame, c)) => {
                        body.push(FLAG_COMPRESSED);
                        body.extend_from_slice(&frame);
                        body.extend_from_slice(&c);
                    }
                    None => {
                        body.push(0);
                        body.extend_from_slice(&payload);
                    }
                }
                body
            }
        };
        self.out.write_all(&stored)?;
        self.metrics.record_chunk(raw_len, stored.len());
        let (checksum, filter) = match self.config.version {
            StoreVersion::V1 => (None, None),
            StoreVersion::V2 => (Some(fnv1a64(&stored)), Some(self.filter.finish_legacy())),
            StoreVersion::V3 => (Some(fnv1a64(&stored)), Some(self.filter.finish_adaptive())),
        };
        self.chunks.push(ChunkMeta {
            offset: self.offset,
            len: stored.len() as u64,
            records: self.chunk_records,
            min_micros: self.chunk_min,
            max_micros: self.prev_micros,
            checksum,
            filter,
        });
        self.offset += stored.len() as u64;
        self.chunk_buf.clear();
        self.names = NameTable::new();
        self.chunk_records = 0;
        self.filter.clear();
        Ok(())
    }

    /// Flushes the trailing chunk, writes the footer, and syncs.
    ///
    /// # Errors
    ///
    /// On I/O failure; the store is unreadable unless `finish` returned
    /// `Ok`.
    pub fn finish(mut self) -> Result<StoreSummary> {
        self.flush_chunk()?;
        let footer_offset = self.offset;
        let total: u64 = self.chunks.iter().map(|m| m.records).sum();
        let mut footer = Vec::with_capacity(self.chunks.len() * 136 + 40);
        // v3 entries are variable-length, so its counts lead the footer.
        if self.config.version == StoreVersion::V3 {
            footer.extend_from_slice(&(self.chunks.len() as u64).to_le_bytes());
            footer.extend_from_slice(&total.to_le_bytes());
        }
        for m in &self.chunks {
            for v in [m.offset, m.len, m.records, m.min_micros, m.max_micros] {
                footer.extend_from_slice(&v.to_le_bytes());
            }
            if self.config.version == StoreVersion::V1 {
                continue;
            }
            let f = m.filter.as_ref().expect("v2/v3 chunks carry filters");
            for v in [
                f.min_fh,
                f.max_fh,
                m.checksum.expect("v2/v3 chunks carry checksums"),
            ] {
                footer.extend_from_slice(&v.to_le_bytes());
            }
            match (self.config.version, &f.kind) {
                (StoreVersion::V2, FilterKind::Bloom { bits, .. }) => {
                    footer.extend_from_slice(bits);
                }
                (StoreVersion::V2, FilterKind::Exact(_)) => {
                    unreachable!("v2 flushes finish legacy Bloom filters")
                }
                (StoreVersion::V3, FilterKind::Exact(handles)) => {
                    footer.push(FILTER_KIND_EXACT);
                    footer.extend_from_slice(&(handles.len() as u32).to_le_bytes());
                    for h in handles {
                        footer.extend_from_slice(&h.to_le_bytes());
                    }
                }
                (StoreVersion::V3, FilterKind::Bloom { hashes, bits }) => {
                    footer.push(FILTER_KIND_BLOOM);
                    footer.push(u8::try_from(*hashes).expect("small hash count"));
                    footer.extend_from_slice(&(bits.len() as u32).to_le_bytes());
                    footer.extend_from_slice(bits);
                }
                (StoreVersion::V1, _) => unreachable!("handled above"),
            }
        }
        if self.config.version != StoreVersion::V3 {
            footer.extend_from_slice(&(self.chunks.len() as u64).to_le_bytes());
            footer.extend_from_slice(&total.to_le_bytes());
        }
        if self.config.version != StoreVersion::V1 {
            let sum = fnv1a64(&footer);
            footer.extend_from_slice(&sum.to_le_bytes());
        }
        footer.extend_from_slice(&footer_offset.to_le_bytes());
        footer.extend_from_slice(END_MAGIC);
        self.out.write_all(&footer)?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        Ok(StoreSummary {
            total_records: total,
            chunks: self.chunks.len(),
            file_bytes: footer_offset + footer.len() as u64,
        })
    }
}

impl RecordSink for StoreWriter {
    type Err = StoreError;

    fn push_record(&mut self, record: TraceRecord) -> Result<()> {
        self.push(&record)
    }
}
