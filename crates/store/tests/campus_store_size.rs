//! On-disk size guarantees on a realistic trace: for the scale-0.1
//! CAMPUS workload, the default (v3, compressed) store is no larger
//! than an uncompressed v2 store, and strictly smaller than the v1
//! (PR 3) layout — while all three decode to bit-identical records.

use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::DAY;
use nfstrace_store::{Compression, StoreConfig, StoreReader, StoreVersion, StoreWriter};
use nfstrace_workload::{CampusConfig, CampusWorkload};

/// One day of CAMPUS at scale 0.1 (the repro suite's scaling:
/// `max(4, 40 × 0.1)` users).
fn campus_scale_01() -> Vec<TraceRecord> {
    CampusWorkload::new(CampusConfig {
        users: 4,
        duration_micros: DAY,
        seed: 42,
        ..CampusConfig::default()
    })
    .generate()
}

fn write(path: &std::path::Path, records: &[TraceRecord], cfg: StoreConfig) -> u64 {
    let mut w = StoreWriter::create(path, cfg).expect("create");
    for r in records {
        w.push(r).expect("push");
    }
    w.finish().expect("finish").file_bytes
}

#[test]
fn compressed_store_is_smaller_on_campus_trace() {
    let records = campus_scale_01();
    assert!(records.len() > 1000, "workload generated a real trace");
    let dir = std::env::temp_dir().join("nfstrace-store-size");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let pid = std::process::id();
    let chunk = StoreConfig::default().target_chunk_bytes;

    let v1_path = dir.join(format!("campus-v1-{pid}"));
    let v1_bytes = write(
        &v1_path,
        &records,
        StoreConfig {
            target_chunk_bytes: chunk,
            compression: Compression::None,
            version: StoreVersion::V1,
        },
    );
    let raw_path = dir.join(format!("campus-v2raw-{pid}"));
    let v2_raw_bytes = write(
        &raw_path,
        &records,
        StoreConfig {
            target_chunk_bytes: chunk,
            compression: Compression::None,
            version: StoreVersion::V2,
        },
    );
    let lz_path = dir.join(format!("campus-v3lz-{pid}"));
    let v3_lz_bytes = write(&lz_path, &records, StoreConfig::default());

    assert!(
        v3_lz_bytes <= v2_raw_bytes,
        "compressed ({v3_lz_bytes} B) must not exceed raw ({v2_raw_bytes} B)"
    );
    assert!(
        v3_lz_bytes < v1_bytes,
        "the default layout ({v3_lz_bytes} B) must beat the v1 layout ({v1_bytes} B)"
    );

    // All three layouts decode to the same records.
    for path in [&v1_path, &raw_path, &lz_path] {
        let reader = StoreReader::open(path).expect("open");
        let mut back = Vec::with_capacity(records.len());
        reader.for_each(|r| back.push(r.clone())).expect("stream");
        assert_eq!(back, records, "layout at {} diverged", path.display());
        std::fs::remove_file(path).ok();
    }
}
