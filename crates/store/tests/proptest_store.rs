//! Property tests for the chunked store: codec round-trips are
//! bit-identical for any compression mode, chunk-parallel
//! partial-index merges equal the single-pass in-memory index for
//! arbitrary chunk sizes and thread counts, the fused single-pass
//! replay matches the per-analysis replay path byte for byte, and
//! corrupted files surface as [`nfstrace_store::StoreError::Format`]
//! rather than silently wrong records.

use nfstrace_core::index::{PartialIndex, ReplayRequest, TraceIndex, TraceView};
use nfstrace_core::lifetime::LifetimeConfig;
use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_core::runs::RunOptions;
use nfstrace_store::{Compression, StoreConfig, StoreError, StoreIndex, StoreReader, StoreWriter};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        (
            0u64..2_000_000_000,
            0usize..Op::ALL.len(),
            0u64..500,
            0u64..(1 << 34),
            0u32..70_000,
            any::<bool>(),
        ),
        (
            proptest::option::of("[a-zA-Z0-9._#~ %=-]{1,24}"),
            proptest::option::of("[a-zA-Z0-9._#~ %=-]{1,24}"),
            proptest::option::of(0u64..(1 << 33)),
            proptest::option::of(0u64..(1 << 33)),
            proptest::option::of(0u64..(1 << 33)),
            proptest::option::of(0u64..10_000),
            proptest::option::of(0u8..8),
            proptest::option::of(0u64..500),
        ),
    )
        .prop_map(
            |(
                (micros, op_idx, fh, offset, count, eof),
                (name, name2, pre, post, trunc, new_fh, ftype, fh2),
            )| {
                let mut r = TraceRecord::new(micros, Op::ALL[op_idx], FileId(fh));
                r.reply_micros = micros.wrapping_add(u64::from(count) % 1000);
                r.client = (fh % 251) as u32;
                r.server = 2;
                r.uid = (fh % 97) as u32;
                r.gid = (fh % 13) as u32;
                r.xid = fh as u32;
                r.vers = if fh % 2 == 0 { 3 } else { 2 };
                r.offset = offset;
                r.count = count;
                r.ret_count = count / 2;
                r.eof = eof;
                r.status = if fh % 17 == 0 {
                    u32::MAX
                } else {
                    (fh % 3) as u32
                };
                r.name = name;
                r.name2 = name2;
                r.pre_size = pre;
                r.post_size = post;
                r.truncate_to = trunc;
                r.new_fh = new_fh.map(FileId);
                r.ftype = ftype;
                r.fh2 = fh2.map(FileId);
                r
            },
        )
}

fn tmp(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nfstrace-store-proptests");
    std::fs::create_dir_all(&dir).expect("mkdir tempdir");
    dir.join(format!("{tag}-{}-{case}", std::process::id()))
}

proptest! {
    /// Write → read returns the exact input records for any chunk size.
    #[test]
    fn store_roundtrip_is_bit_identical(
        mut records in proptest::collection::vec(arb_record(), 0..300),
        chunk_bytes in 48usize..8192,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("roundtrip", case);
        let mut w = nfstrace_store::StoreWriter::create(
            &path,
            nfstrace_store::StoreConfig {
                target_chunk_bytes: chunk_bytes,
                ..nfstrace_store::StoreConfig::default()
            },
        ).expect("create");
        for r in &records {
            w.push(r).expect("push");
        }
        let summary = w.finish().expect("finish");
        prop_assert_eq!(summary.total_records, records.len() as u64);

        let reader = nfstrace_store::StoreReader::open(&path).expect("open");
        let mut back = Vec::with_capacity(records.len());
        reader.for_each(|r| back.push(r.clone())).expect("stream");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, records);
    }

    /// Chunk-parallel partial-index merge equals the one-pass in-memory
    /// index for arbitrary chunk sizes and worker counts.
    #[test]
    fn partial_merge_equals_trace_index(
        mut records in proptest::collection::vec(arb_record(), 0..250),
        chunk_records in 1usize..64,
        threads in 1usize..9,
    ) {
        records.sort_by_key(|r| r.micros);
        let whole = TraceIndex::new(records.clone());

        let chunks: Vec<&[TraceRecord]> = records.chunks(chunk_records).collect();
        let parts = nfstrace_core::parallel::run_sharded(chunks.len(), threads, |i| {
            PartialIndex::from_records(chunks[i])
        });
        let merged = PartialIndex::merge_ordered(parts);

        prop_assert_eq!(&merged.summary, whole.summary());
        prop_assert_eq!(&merged.hourly, whole.hourly());
        prop_assert_eq!(merged.raw.as_ref(), whole.accesses(0).as_ref());
        prop_assert_eq!(merged.len, whole.len());
    }

    /// The store-backed index serves the same analysis products as the
    /// in-memory index over the same records.
    #[test]
    fn store_index_equals_trace_index(
        mut records in proptest::collection::vec(arb_record(), 0..200),
        chunk_bytes in 64usize..4096,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("index", case);
        let mut w = nfstrace_store::StoreWriter::create(
            &path,
            nfstrace_store::StoreConfig {
                target_chunk_bytes: chunk_bytes,
                ..nfstrace_store::StoreConfig::default()
            },
        ).expect("create");
        for r in &records {
            w.push(r).expect("push");
        }
        w.finish().expect("finish");

        let disk = nfstrace_store::StoreIndex::open(&path).expect("open");
        let mem = TraceIndex::new(records);
        prop_assert_eq!(disk.summary(), mem.summary());
        prop_assert_eq!(disk.hourly(), mem.hourly());
        prop_assert_eq!(disk.accesses(7).as_ref(), mem.accesses(7).as_ref());
        prop_assert_eq!(
            disk.runs(7, RunOptions::default()).as_ref(),
            mem.runs(7, RunOptions::default()).as_ref()
        );
        prop_assert_eq!(disk.names(), mem.names());
        std::fs::remove_file(&path).ok();
    }
}

/// Writes `records` to `path` with the given chunk size, compression
/// policy, and format version.
fn write_with(
    path: &std::path::Path,
    records: &[TraceRecord],
    chunk_bytes: usize,
    compression: Compression,
    version: nfstrace_store::StoreVersion,
) {
    let mut w = StoreWriter::create(
        path,
        StoreConfig {
            target_chunk_bytes: chunk_bytes,
            compression,
            version,
        },
    )
    .expect("create");
    for r in records {
        w.push(r).expect("push");
    }
    w.finish().expect("finish");
}

/// Reads every record back, or the first error.
fn read_all(path: &std::path::Path) -> Result<Vec<TraceRecord>, StoreError> {
    let reader = StoreReader::open(path)?;
    let mut back = Vec::new();
    reader.for_each(|r| back.push(r.clone()))?;
    Ok(back)
}

proptest! {
    /// The compression codec round-trips bit-identically through the
    /// store for arbitrary record streams × chunk sizes × compression
    /// on/off — and "mixed" arises naturally, since each chunk
    /// negotiates its own raw fallback via the flags byte.
    #[test]
    fn compressed_roundtrip_is_bit_identical(
        mut records in proptest::collection::vec(arb_record(), 0..300),
        chunk_bytes in 48usize..8192,
        compress in any::<bool>(),
        v3 in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let compression = if compress { Compression::Lz } else { Compression::None };
        let version = if v3 {
            nfstrace_store::StoreVersion::V3
        } else {
            nfstrace_store::StoreVersion::V2
        };
        let path = tmp("lz-roundtrip", case);
        write_with(&path, &records, chunk_bytes, compression, version);
        let back = read_all(&path).expect("read");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, records);
    }

    /// v1 stores (the PR 3 layout) remain fully readable, and their
    /// analysis products match the v2 path over the same records.
    #[test]
    fn v1_stores_stay_readable(
        mut records in proptest::collection::vec(arb_record(), 0..200),
        chunk_bytes in 64usize..4096,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("v1-compat", case);
        write_with(&path, &records, chunk_bytes, Compression::None, nfstrace_store::StoreVersion::V1);
        let reader = StoreReader::open(&path).expect("open v1");
        prop_assert_eq!(reader.version(), nfstrace_store::StoreVersion::V1);
        let back = read_all(&path).expect("read v1");
        prop_assert_eq!(&back, &records);
        let disk = StoreIndex::open(&path).expect("index v1");
        let mem = TraceIndex::new(records);
        prop_assert_eq!(disk.summary(), mem.summary());
        prop_assert_eq!(disk.accesses(7).as_ref(), mem.accesses(7).as_ref());
        std::fs::remove_file(&path).ok();
    }

    /// The fused single-pass replay produces byte-identical reports vs
    /// the per-analysis replay path (each product requested on its own,
    /// the pre-fusion shape, kept as the oracle) for arbitrary thread
    /// counts — and costs exactly one decode pass.
    #[test]
    fn fused_replay_equals_per_analysis_replay(
        mut records in proptest::collection::vec(arb_record(), 0..200),
        chunk_bytes in 64usize..4096,
        threads in 1usize..9,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("fused", case);
        write_with(&path, &records, chunk_bytes, Compression::Lz, nfstrace_store::StoreVersion::V2);
        let cfg = LifetimeConfig {
            phase1_start: 0,
            phase1_len: 1_000_000_000,
            phase2_len: 1_000_000_000,
        };
        let bucket = 250_000_000u64;

        let fused = StoreIndex::from_reader_with_threads(
            Arc::new(StoreReader::open(&path).expect("open")),
            threads,
        )
        .expect("index");
        fused.prepare(&[
            ReplayRequest::Names,
            ReplayRequest::Coverage(bucket),
            ReplayRequest::Lifetime(cfg),
            ReplayRequest::WeekdayLifetime,
        ]);
        prop_assert_eq!(fused.decode_passes(), 1);

        // The oracle: a fresh index, every product requested
        // individually — each call replays on its own.
        let unfused = StoreIndex::from_reader_with_threads(
            Arc::new(StoreReader::open(&path).expect("open")),
            threads,
        )
        .expect("index");
        prop_assert_eq!(fused.names(), unfused.names());
        prop_assert_eq!(
            fused.hierarchy_coverage(bucket),
            unfused.hierarchy_coverage(bucket)
        );
        prop_assert_eq!(fused.lifetime(cfg).as_ref(), unfused.lifetime(cfg).as_ref());
        prop_assert_eq!(
            fused.weekday_lifetime().as_ref(),
            unfused.weekday_lifetime().as_ref()
        );
        prop_assert_eq!(unfused.decode_passes(), 4, "one pass per product");

        // ... and both equal the direct slice-based computations.
        prop_assert_eq!(
            fused.names(),
            &nfstrace_core::names::NamePredictionReport::from_records(records.iter())
        );
        prop_assert_eq!(
            fused.lifetime(cfg).as_ref(),
            &nfstrace_core::lifetime::analyze(records.iter(), cfg)
        );
        prop_assert_eq!(
            fused.hierarchy_coverage(bucket).as_ref(),
            &nfstrace_core::hierarchy::coverage_over_time(records.iter(), bucket)
        );
        std::fs::remove_file(&path).ok();
    }

    /// Any single flipped bit anywhere in a compressed store surfaces
    /// as an error (almost always `Format`: checksums cover chunks and
    /// footer, magic and geometry cover the rest) — never as a silently
    /// different record stream.
    #[test]
    fn bit_flips_never_yield_wrong_records(
        mut records in proptest::collection::vec(arb_record(), 1..150),
        chunk_bytes in 64usize..2048,
        flip_frac in 0u32..10_000,
        bit in 0u8..8,
        v3 in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let version = if v3 {
            nfstrace_store::StoreVersion::V3
        } else {
            nfstrace_store::StoreVersion::V2
        };
        let path = tmp("flip", case);
        write_with(&path, &records, chunk_bytes, Compression::Lz, version);
        let mut bytes = std::fs::read(&path).expect("read file");
        let idx = (u64::from(flip_frac) * (bytes.len() as u64 - 1) / 10_000) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("write corrupted");

        match read_all(&path) {
            Err(_) => {} // expected: corruption detected somewhere
            Ok(back) => prop_assert_eq!(
                back, records,
                "corruption at byte {} bit {} was silently absorbed into different records",
                idx, bit
            ),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncating a compressed store anywhere is an open or read error,
    /// never a short-but-plausible record stream.
    #[test]
    fn truncations_error(
        mut records in proptest::collection::vec(arb_record(), 1..150),
        cut_frac in 0u32..10_000,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("trunc2", case);
        write_with(&path, &records, 256, Compression::Lz, nfstrace_store::StoreVersion::V3);
        let bytes = std::fs::read(&path).expect("read file");
        let cut = (u64::from(cut_frac) * (bytes.len() as u64 - 1) / 10_000) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        prop_assert!(read_all(&path).is_err(), "cut at {} of {}", cut, bytes.len());
        std::fs::remove_file(&path).ok();
    }
}

/// A time-clustered multi-file trace: file ids advance with time, so
/// chunk min/max file filters are selective.
fn clustered_records(n: u64, per_file: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| {
            TraceRecord::new(i * 1000, Op::Read, FileId(i / per_file)).with_range(i * 8192, 8192)
        })
        .collect()
}

/// A per-file query over a multi-chunk store decodes only the chunks
/// that can match — observed via the reader's decode counter — and
/// returns exactly the full-scan answer.
#[test]
fn per_file_queries_skip_chunks() {
    let records = clustered_records(3000, 300);
    let path = tmp("skip", 0);
    write_with(
        &path,
        &records,
        2048,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );

    let reader = StoreReader::open(&path).expect("open");
    let chunks = reader.chunk_count() as u64;
    assert!(chunks >= 8, "need a multi-chunk store, got {chunks}");

    let probe = FileId(5);
    let skipping = reader.records_for_file(probe).expect("query");
    let decoded_by_query = reader.chunks_decoded();
    assert!(
        decoded_by_query < chunks,
        "query decoded {decoded_by_query} of {chunks} chunks — nothing was skipped"
    );

    // Full-scan oracle on a fresh reader.
    let full = StoreReader::open(&path).expect("open");
    let mut scanned = Vec::new();
    full.for_each(|r| {
        if r.fh == probe {
            scanned.push(r.clone());
        }
    })
    .expect("scan");
    assert_eq!(full.chunks_decoded(), chunks, "the oracle scans everything");
    assert_eq!(skipping, scanned);

    // A file id beyond every filter range decodes nothing at all.
    let before = reader.chunks_decoded();
    assert!(reader
        .records_for_file(FileId(1 << 40))
        .expect("query")
        .is_empty());
    assert_eq!(reader.chunks_decoded(), before, "absent file: zero decodes");
    std::fs::remove_file(&path).ok();
}

/// The saturation regression, end to end: on chunks with thousands of
/// distinct handles the fixed v2 Bloom filter saturates (per-file
/// queries for absent files decode nearly every chunk), while the v3
/// adaptive filter keeps the skip rate high — with identical query
/// results.
#[test]
fn adaptive_filters_keep_skipping_on_high_fan_in_chunks() {
    // Every record a distinct-ish handle, scattered so each chunk's
    // [min_fh, max_fh] range spans nearly the whole space: the range
    // guard cannot help, only the membership filter can.
    let records: Vec<TraceRecord> = (0..24_000u64)
        .map(|i| {
            let fh = ((i * 7919) % 20011) * 2 + 1; // odd members only
            TraceRecord::new(i * 500, Op::Read, FileId(fh)).with_range(0, 8192)
        })
        .collect();
    let probes: Vec<FileId> = (0..200u64).map(|i| FileId(i * 180 + 2)).collect(); // even: absent

    let mut decodes = [0u64; 2];
    for (slot, version) in [
        (0, nfstrace_store::StoreVersion::V2),
        (1, nfstrace_store::StoreVersion::V3),
    ] {
        let path = tmp("fanin", slot as u64);
        write_with(&path, &records, 96 << 10, Compression::Lz, version);
        let reader = StoreReader::open(&path).expect("open");
        assert!(reader.chunk_count() >= 4, "need several chunks");
        for p in &probes {
            assert!(
                reader.records_for_file(*p).expect("query").is_empty(),
                "even handles are absent by construction"
            );
        }
        decodes[slot] = reader.chunks_decoded();
        std::fs::remove_file(&path).ok();
    }
    assert!(
        decodes[0] > decodes[1] * 10,
        "v2 (saturated) decoded {} chunks, v3 (adaptive) {} — \
         the adaptive filter should be skipping at least 10x more",
        decodes[0],
        decodes[1]
    );
}

/// The windowed per-file analysis wrappers equal the full-index
/// products restricted to that file.
#[test]
fn file_accesses_and_runs_match_full_index() {
    let records = clustered_records(2000, 250);
    let path = tmp("filequery", 0);
    write_with(
        &path,
        &records,
        2048,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );
    let disk = StoreIndex::open(&path).expect("index");
    let probe = FileId(3);

    let accesses = disk.file_accesses(probe, 7).expect("accesses");
    let full_map = disk.accesses(7);
    assert_eq!(
        &accesses,
        full_map.get(&probe).expect("file present").as_ref()
    );

    let runs = disk
        .file_runs(probe, 7, RunOptions::default())
        .expect("runs");
    let full_runs = disk.runs(7, RunOptions::default());
    let full_for_file: Vec<_> = full_runs
        .iter()
        .filter(|r| r.file == probe)
        .cloned()
        .collect();
    assert_eq!(runs, full_for_file);
    std::fs::remove_file(&path).ok();
}

/// With mixed content, compressible chunks take the LZ form and
/// incompressible ones fall back to raw — per chunk, via the flags
/// byte — and the stream still round-trips bit-identically.
#[test]
fn mixed_compression_negotiates_per_chunk() {
    // First half: one hot name, maximally repetitive. Second half:
    // every field and a long name drawn from a PRNG — so close to
    // incompressible that the LZ form loses to its own framing.
    let mut records = Vec::new();
    for i in 0..400u64 {
        records.push(TraceRecord::new(i, Op::Lookup, FileId(1)).with_name("inbox.lock"));
    }
    let mut v = 0x9e3779b97f4a7c15u64;
    let mut rand = move || {
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        v
    };
    let mut micros = 400u64;
    for _ in 0..400u64 {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let name: String = (0..120)
            .map(|_| char::from(ALPHABET[(rand() % 62) as usize]))
            .collect();
        micros += rand() % 100_000;
        let mut r = TraceRecord::new(micros, Op::Lookup, FileId(rand())).with_name(name);
        r.reply_micros = micros.wrapping_add(rand());
        r.offset = rand();
        r.pre_size = Some(rand());
        r.post_size = Some(rand());
        r.truncate_to = Some(rand());
        r.new_fh = Some(FileId(rand()));
        r.fh2 = Some(FileId(rand()));
        r.xid = rand() as u32;
        r.client = rand() as u32;
        r.server = rand() as u32;
        r.uid = rand() as u32;
        r.gid = rand() as u32;
        records.push(r);
    }
    let path = tmp("mixed", 0);
    write_with(
        &path,
        &records,
        2000,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );
    let reader = StoreReader::open(&path).expect("open");
    let bytes = std::fs::read(&path).expect("read bytes");
    let mut saw = [false; 2];
    for m in reader.chunks() {
        let flags = bytes[m.offset as usize];
        saw[usize::from(flags & 1)] = true;
    }
    assert!(saw[1], "no chunk chose compression");
    assert!(saw[0], "no chunk fell back to raw");
    let back = read_all(&path).expect("read");
    assert_eq!(back, records);
    std::fs::remove_file(&path).ok();
}

/// Patches `file[at..at + 8]` with a little-endian word.
fn patch_word(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Recomputes the footer checksum after a footer patch so the tampered
/// field itself — not the checksum — is what the reader must catch.
fn refresh_footer_checksum(bytes: &mut [u8]) {
    let len = bytes.len();
    let footer_offset = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    let sum_at = len - 24;
    let sum = nfstrace_store::format::fnv1a64(&bytes[footer_offset..sum_at]);
    patch_word(bytes, sum_at, sum);
}

/// An unknown flags bit is rejected by flag validation even when every
/// checksum has been fixed up to match the tampered bytes.
#[test]
fn unknown_flags_byte_is_a_format_error() {
    let records = clustered_records(200, 50);
    let path = tmp("badflags", 0);
    write_with(
        &path,
        &records,
        1 << 20,
        Compression::None,
        nfstrace_store::StoreVersion::V2,
    );
    let reader = StoreReader::open(&path).expect("open");
    let meta = reader.chunks()[0].clone();
    drop(reader);

    let mut bytes = std::fs::read(&path).expect("read");
    bytes[meta.offset as usize] = 0x40; // undefined flag bit
    let new_sum = nfstrace_store::format::fnv1a64(
        &bytes[meta.offset as usize..(meta.offset + meta.len) as usize],
    );
    let len = bytes.len();
    let footer_offset = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    patch_word(&mut bytes, footer_offset + 7 * 8, new_sum); // entry 0 checksum
    refresh_footer_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("write");

    let reader = StoreReader::open(&path).expect("footer is consistent");
    let err = reader.read_chunk(0).expect_err("unknown flags must fail");
    assert!(
        matches!(&err, StoreError::Format(m) if m.contains("flags")),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// A footer whose file filter disagrees with itself (min > max) is
/// rejected at open, checksum notwithstanding.
#[test]
fn inverted_filter_range_is_a_format_error() {
    let records = clustered_records(200, 50);
    let path = tmp("badfilter", 0);
    write_with(
        &path,
        &records,
        1 << 20,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );
    let mut bytes = std::fs::read(&path).expect("read");
    let len = bytes.len();
    let footer_offset = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    patch_word(&mut bytes, footer_offset + 5 * 8, 100); // min_fh
    patch_word(&mut bytes, footer_offset + 6 * 8, 5); // max_fh < min_fh
    refresh_footer_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("write");

    let err = StoreReader::open(&path).expect_err("inverted range must fail");
    assert!(
        matches!(&err, StoreError::Format(m) if m.contains("filter")),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// A tampered chunk checksum word in the footer makes the chunk — not
/// the open — fail, with a checksum Format error.
#[test]
fn chunk_footer_checksum_mismatch_is_a_format_error() {
    let records = clustered_records(200, 50);
    let path = tmp("badsum", 0);
    write_with(
        &path,
        &records,
        1 << 20,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );
    let mut bytes = std::fs::read(&path).expect("read");
    let len = bytes.len();
    let footer_offset = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    let sum_at = footer_offset + 7 * 8;
    let old = u64::from_le_bytes(bytes[sum_at..sum_at + 8].try_into().unwrap());
    patch_word(&mut bytes, sum_at, old ^ 1);
    refresh_footer_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("write");

    let reader = StoreReader::open(&path).expect("footer parses");
    let err = reader.read_chunk(0).expect_err("checksum must mismatch");
    assert!(
        matches!(&err, StoreError::Format(m) if m.contains("checksum")),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// A footer whose time range disagrees with itself (min > max) on a
/// chunk that claims records is rejected at open, checksum
/// notwithstanding — the pruning planner trusts these words.
#[test]
fn inverted_time_range_is_a_format_error() {
    let records = clustered_records(200, 50);
    let path = tmp("badtime", 0);
    write_with(
        &path,
        &records,
        1 << 20,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );
    let mut bytes = std::fs::read(&path).expect("read");
    let len = bytes.len();
    let footer_offset = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    patch_word(&mut bytes, footer_offset + 3 * 8, 100); // min_micros
    patch_word(&mut bytes, footer_offset + 4 * 8, 5); // max_micros < min_micros
    refresh_footer_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("write");

    let err = StoreReader::open(&path).expect_err("inverted time range must fail");
    assert!(
        matches!(&err, StoreError::Format(m) if m.contains("time range is inverted")),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// A zero-record chunk may carry whatever min/max words its writer
/// left — even min > max. Open must normalize (not reject) them to
/// the canonical empty range, so the segment folds to no time range
/// at all and the planner dismisses it from every window.
#[test]
fn zero_record_degenerate_time_range_is_normalized() {
    let records = clustered_records(200, 50);
    let path = tmp("emptyrange", 0);
    write_with(
        &path,
        &records,
        1 << 20,
        Compression::Lz,
        nfstrace_store::StoreVersion::V2,
    );
    let mut bytes = std::fs::read(&path).expect("read");
    let len = bytes.len();
    let footer_offset = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    patch_word(&mut bytes, footer_offset + 2 * 8, 0); // entry 0 records = 0
    patch_word(&mut bytes, footer_offset + 3 * 8, 100); // min_micros
    patch_word(&mut bytes, footer_offset + 4 * 8, 5); // max_micros < min_micros
    patch_word(&mut bytes, len - 32, 0); // footer total_records
    refresh_footer_checksum(&mut bytes);
    std::fs::write(&path, &bytes).expect("write");

    let reader = StoreReader::open(&path).expect("degenerate empty range must open");
    let meta = &reader.chunks()[0];
    assert_eq!(
        (meta.min_micros, meta.max_micros),
        (u64::MAX, 0),
        "zero-record chunk pinned to the canonical empty range"
    );
    assert!(
        !meta.overlaps(0, u64::MAX),
        "an empty chunk overlaps nothing"
    );
    assert_eq!(reader.time_range(), None, "the segment folds to no range");
    assert!(
        reader.prune_window(0, u64::MAX),
        "the planner dismisses the empty segment from every window"
    );
    std::fs::remove_file(&path).ok();
}
