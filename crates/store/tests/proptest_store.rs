//! Property tests for the chunked store: codec round-trips are
//! bit-identical, and chunk-parallel partial-index merges equal the
//! single-pass in-memory index for arbitrary chunk sizes and thread
//! counts.

use nfstrace_core::index::{PartialIndex, TraceIndex, TraceView};
use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_core::runs::RunOptions;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        (
            0u64..2_000_000_000,
            0usize..Op::ALL.len(),
            0u64..500,
            0u64..(1 << 34),
            0u32..70_000,
            any::<bool>(),
        ),
        (
            proptest::option::of("[a-zA-Z0-9._#~ %=-]{1,24}"),
            proptest::option::of("[a-zA-Z0-9._#~ %=-]{1,24}"),
            proptest::option::of(0u64..(1 << 33)),
            proptest::option::of(0u64..(1 << 33)),
            proptest::option::of(0u64..(1 << 33)),
            proptest::option::of(0u64..10_000),
            proptest::option::of(0u8..8),
            proptest::option::of(0u64..500),
        ),
    )
        .prop_map(
            |(
                (micros, op_idx, fh, offset, count, eof),
                (name, name2, pre, post, trunc, new_fh, ftype, fh2),
            )| {
                let mut r = TraceRecord::new(micros, Op::ALL[op_idx], FileId(fh));
                r.reply_micros = micros.wrapping_add(u64::from(count) % 1000);
                r.client = (fh % 251) as u32;
                r.server = 2;
                r.uid = (fh % 97) as u32;
                r.gid = (fh % 13) as u32;
                r.xid = fh as u32;
                r.vers = if fh % 2 == 0 { 3 } else { 2 };
                r.offset = offset;
                r.count = count;
                r.ret_count = count / 2;
                r.eof = eof;
                r.status = if fh % 17 == 0 {
                    u32::MAX
                } else {
                    (fh % 3) as u32
                };
                r.name = name;
                r.name2 = name2;
                r.pre_size = pre;
                r.post_size = post;
                r.truncate_to = trunc;
                r.new_fh = new_fh.map(FileId);
                r.ftype = ftype;
                r.fh2 = fh2.map(FileId);
                r
            },
        )
}

fn tmp(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nfstrace-store-proptests");
    std::fs::create_dir_all(&dir).expect("mkdir tempdir");
    dir.join(format!("{tag}-{}-{case}", std::process::id()))
}

proptest! {
    /// Write → read returns the exact input records for any chunk size.
    #[test]
    fn store_roundtrip_is_bit_identical(
        mut records in proptest::collection::vec(arb_record(), 0..300),
        chunk_bytes in 48usize..8192,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("roundtrip", case);
        let mut w = nfstrace_store::StoreWriter::create(
            &path,
            nfstrace_store::StoreConfig { target_chunk_bytes: chunk_bytes },
        ).expect("create");
        for r in &records {
            w.push(r).expect("push");
        }
        let summary = w.finish().expect("finish");
        prop_assert_eq!(summary.total_records, records.len() as u64);

        let reader = nfstrace_store::StoreReader::open(&path).expect("open");
        let mut back = Vec::with_capacity(records.len());
        reader.for_each(|r| back.push(r.clone())).expect("stream");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, records);
    }

    /// Chunk-parallel partial-index merge equals the one-pass in-memory
    /// index for arbitrary chunk sizes and worker counts.
    #[test]
    fn partial_merge_equals_trace_index(
        mut records in proptest::collection::vec(arb_record(), 0..250),
        chunk_records in 1usize..64,
        threads in 1usize..9,
    ) {
        records.sort_by_key(|r| r.micros);
        let whole = TraceIndex::new(records.clone());

        let chunks: Vec<&[TraceRecord]> = records.chunks(chunk_records).collect();
        let parts = nfstrace_core::parallel::run_sharded(chunks.len(), threads, |i| {
            PartialIndex::from_records(chunks[i])
        });
        let merged = PartialIndex::merge_ordered(parts);

        prop_assert_eq!(&merged.summary, whole.summary());
        prop_assert_eq!(&merged.hourly, whole.hourly());
        prop_assert_eq!(merged.raw.as_ref(), whole.accesses(0).as_ref());
        prop_assert_eq!(merged.len, whole.len());
    }

    /// The store-backed index serves the same analysis products as the
    /// in-memory index over the same records.
    #[test]
    fn store_index_equals_trace_index(
        mut records in proptest::collection::vec(arb_record(), 0..200),
        chunk_bytes in 64usize..4096,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);
        let path = tmp("index", case);
        let mut w = nfstrace_store::StoreWriter::create(
            &path,
            nfstrace_store::StoreConfig { target_chunk_bytes: chunk_bytes },
        ).expect("create");
        for r in &records {
            w.push(r).expect("push");
        }
        w.finish().expect("finish");

        let disk = nfstrace_store::StoreIndex::open(&path).expect("open");
        let mem = TraceIndex::new(records);
        prop_assert_eq!(disk.summary(), mem.summary());
        prop_assert_eq!(disk.hourly(), mem.hourly());
        prop_assert_eq!(disk.accesses(7).as_ref(), mem.accesses(7).as_ref());
        prop_assert_eq!(
            disk.runs(7, RunOptions::default()).as_ref(),
            mem.runs(7, RunOptions::default()).as_ref()
        );
        prop_assert_eq!(disk.names(), mem.names());
        std::fs::remove_file(&path).ok();
    }
}
