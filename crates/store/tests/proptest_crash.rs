//! Crash-recovery property tests for the segment lifecycle protocols.
//!
//! Every filesystem step of seal → sidecar → compact runs under a
//! [`FaultInjector`] budget of *n* steps, for **every** possible *n*:
//! each induced crash is followed by a sweeping reopen
//! ([`SegmentCatalog::open_and_sweep`]), which must always resolve the
//! directory to exactly the old or the new catalog state — never a
//! mix — with the full record stream and every arrival-sequence
//! sidecar intact either way.

use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_store::compact::{seal_segment, tmp_path, Compactor, FaultInjector};
use nfstrace_store::{
    seqfile, stream_records, CompactionPolicy, SegmentCatalog, SegmentId, StoreConfig, StoreError,
    StoreReader, StoreWriter,
};
use nfstrace_telemetry::Registry;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("nfstrace-crash-proptests")
        .join(format!("{tag}-{}-{case}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn record(i: u64) -> TraceRecord {
    let mut r = TraceRecord::new(
        i * 997,
        Op::ALL[(i % Op::ALL.len() as u64) as usize],
        FileId(i % 7),
    );
    r.offset = i * 4096;
    r.count = 4096;
    r
}

/// Seals `seg_count` base segments of `per_seg` records each into
/// `dir`, sidecars included when `track`.
fn seed(dir: &Path, seg_count: u64, per_seg: u64, track: bool) -> SegmentCatalog {
    let mut cat = SegmentCatalog::open(dir).expect("open");
    for s in 0..seg_count {
        let ordinal = cat.next_ordinal();
        let dest = cat.path_for(ordinal);
        let tmp = tmp_path(&dest);
        let mut w = StoreWriter::create(
            &tmp,
            StoreConfig {
                target_chunk_bytes: 256,
                ..StoreConfig::default()
            },
        )
        .expect("create");
        let base = s * per_seg;
        for i in base..base + per_seg {
            w.push(&record(i)).expect("push");
        }
        w.finish().expect("finish");
        let seqs: Vec<u64> = (base..base + per_seg).collect();
        seal_segment(
            &tmp,
            &dest,
            track.then_some(seqs.as_slice()),
            &mut FaultInjector::none(),
        )
        .expect("seal");
        cat.note_sealed(ordinal);
    }
    cat
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
    }
}

fn catalog_records(cat: &SegmentCatalog) -> Vec<TraceRecord> {
    let readers: Vec<Arc<StoreReader>> = cat
        .paths()
        .iter()
        .map(|p| Arc::new(StoreReader::open(p).expect("open segment")))
        .collect();
    let mut out = Vec::new();
    stream_records(&readers, 0, u64::MAX, &mut |r| out.push(r.clone()));
    out
}

/// Every surviving segment must have a valid sidecar (when tracking)
/// and their concatenation must be the unbroken global sequence.
fn assert_sidecars_consistent(cat: &SegmentCatalog, track: bool, total: u64) {
    let mut all = Vec::new();
    for path in cat.paths() {
        if track {
            all.extend(seqfile::read_sidecar(&path).expect("sealed segment has its sidecar"));
        } else {
            assert!(
                !seqfile::sidecar_path(&path).exists(),
                "untracked catalogs have no sidecars"
            );
        }
    }
    if track {
        let expect: Vec<u64> = (0..total).collect();
        assert_eq!(all, expect, "sidecars concatenate to the global sequence");
    }
}

/// No crash leftovers survive a sweep.
fn assert_no_leftovers(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let name = entry
            .expect("entry")
            .file_name()
            .to_string_lossy()
            .into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "sweep must remove temp files, found {name}"
        );
    }
}

fn is_simulated_crash(e: &StoreError) -> bool {
    matches!(e, StoreError::Format(msg) if msg.contains("simulated crash"))
}

proptest! {
    /// Sealing a new segment killed between every filesystem step:
    /// reopen yields the catalog without the segment (crash anywhere
    /// before the final rename) or with it (completion) — never a
    /// half-sealed state — and sweeps all debris.
    #[test]
    fn seal_crashes_resolve_to_old_or_new(
        seg_count in 1u64..4,
        per_seg in 1u64..12,
        track in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        let pristine = tmpdir("seal-pristine", case);
        seed(&pristine, seg_count, per_seg, track);
        let old_ids: Vec<SegmentId> = (0..seg_count).map(SegmentId::base).collect();
        let old_total = seg_count * per_seg;

        let mut completed = false;
        let mut crashes = 0u64;
        for budget in 0u64.. {
            let work = tmpdir("seal-work", case);
            copy_dir(&pristine, &work);
            let mut cat = SegmentCatalog::open_and_sweep(&work).expect("open work");
            prop_assert_eq!(cat.ids(), old_ids.as_slice());

            // Stage the next segment exactly as a rotation would.
            let ordinal = cat.next_ordinal();
            let dest = cat.path_for(ordinal);
            let tmp = tmp_path(&dest);
            let mut w = StoreWriter::create(&tmp, StoreConfig::default()).expect("create");
            let base = old_total;
            for i in base..base + per_seg {
                w.push(&record(i)).expect("push");
            }
            w.finish().expect("finish");
            let seqs: Vec<u64> = (base..base + per_seg).collect();

            let mut fault = FaultInjector::after(budget);
            match seal_segment(&tmp, &dest, track.then_some(seqs.as_slice()), &mut fault) {
                Ok(()) => {
                    cat.note_sealed(ordinal);
                    let swept = SegmentCatalog::open_and_sweep(&work).expect("reopen");
                    let mut new_ids = old_ids.clone();
                    new_ids.push(SegmentId::base(ordinal));
                    prop_assert_eq!(swept.ids(), new_ids.as_slice());
                    prop_assert_eq!(
                        catalog_records(&swept).len() as u64,
                        old_total + per_seg
                    );
                    assert_sidecars_consistent(&swept, track, old_total + per_seg);
                    assert_no_leftovers(&work);
                    completed = true;
                }
                Err(e) => {
                    prop_assert!(is_simulated_crash(&e), "{e}");
                    crashes += 1;
                    let swept = SegmentCatalog::open_and_sweep(&work).expect("reopen after crash");
                    // The seal never published: exactly the old state.
                    prop_assert_eq!(swept.ids(), old_ids.as_slice());
                    prop_assert_eq!(catalog_records(&swept).len() as u64, old_total);
                    assert_sidecars_consistent(&swept, track, old_total);
                    assert_no_leftovers(&work);
                }
            }
            std::fs::remove_dir_all(&work).ok();
            if completed {
                break;
            }
        }
        // Every step had its kill: tracked seals have 3, untracked 1.
        prop_assert_eq!(crashes, if track { 3 } else { 1 });
        std::fs::remove_dir_all(&pristine).ok();
    }

    /// Compaction killed between every filesystem step: reopen yields
    /// exactly the pre-compaction catalog (kill before the output
    /// rename) or the post-compaction one (kill after — roll-forward
    /// via supersession), never a mix; the record stream and the
    /// sidecar chain survive every outcome.
    #[test]
    fn compact_crashes_resolve_to_old_or_new(
        fan_in in 2u64..5,
        tail_segs in 0u64..2,
        per_seg in 1u64..10,
        track in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        let seg_count = fan_in + tail_segs;
        let pristine = tmpdir("compact-pristine", case);
        seed(&pristine, seg_count, per_seg, track);
        let old_ids: Vec<SegmentId> = (0..seg_count).map(SegmentId::base).collect();
        let output = SegmentId { lo: 0, hi: fan_in - 1, generation: 1 };
        let mut new_ids = vec![output];
        new_ids.extend((fan_in..seg_count).map(SegmentId::base));
        let total = seg_count * per_seg;

        let mut rollbacks = 0u64;
        let mut rollforwards = 0u64;
        let mut completed = false;
        for budget in 0u64.. {
            let work = tmpdir("compact-work", case);
            copy_dir(&pristine, &work);
            let mut cat = SegmentCatalog::open_and_sweep(&work).expect("open work");
            let registry = Registry::new();
            let compactor = Compactor::new(
                CompactionPolicy { fan_in: fan_in as usize },
                StoreConfig { target_chunk_bytes: 256, ..StoreConfig::default() },
                &registry,
            );
            let planned = compactor.policy().plan(cat.ids()).expect("run is ripe");
            prop_assert_eq!(planned, output);

            let mut fault = FaultInjector::after(budget);
            let result = compactor.compact(&mut cat, planned, &mut fault);
            let swept = SegmentCatalog::open_and_sweep(&work).expect("reopen");
            match result {
                Ok(outcome) => {
                    prop_assert_eq!(outcome.output, output);
                    prop_assert_eq!(swept.ids(), new_ids.as_slice());
                    completed = true;
                }
                Err(e) => {
                    prop_assert!(is_simulated_crash(&e), "{e}");
                    // Old or new — and nothing else.
                    if swept.ids() == old_ids.as_slice() {
                        rollbacks += 1;
                    } else if swept.ids() == new_ids.as_slice() {
                        rollforwards += 1;
                    } else {
                        prop_assert!(
                            false,
                            "mixed state after crash at budget {budget}: {:?}",
                            swept.ids()
                        );
                    }
                }
            }
            // Whatever state won, it is the complete trace.
            let back = catalog_records(&swept);
            prop_assert_eq!(back.len() as u64, total);
            let expect: Vec<TraceRecord> = (0..total).map(record).collect();
            prop_assert_eq!(back, expect);
            assert_sidecars_consistent(&swept, track, total);
            assert_no_leftovers(&work);
            std::fs::remove_dir_all(&work).ok();
            if completed {
                break;
            }
        }
        // The kill-point sweep saw the directory roll back before the
        // commit point and roll forward after it.
        prop_assert!(rollbacks > 0, "no crash before the commit point");
        prop_assert!(rollforwards > 0, "no crash after the commit point");
        std::fs::remove_dir_all(&pristine).ok();
    }
}
