//! Per-segment arrival-sequence sidecars (`seg-NNNNNN.nfseq`).
//!
//! A sharded ingest splits one globally ordered record stream across
//! shards, so a single shard's segments no longer carry enough
//! information to reconstruct the original interleave: records with
//! equal timestamps tie-break on *arrival order*, which the store
//! format does not (and should not) record. When
//! [`crate::LiveConfig::track_seqs`] is on, each sealed segment gets a
//! sidecar file holding the **global arrival sequence number** of every
//! record in it, in record order — the merge-on-read view k-way merges
//! shards by these sequences and replays the exact original stream.
//!
//! The sidecar is deliberately *not* part of the store format: a plain
//! segment directory stays byte-identical with or without tracking,
//! and every store reader keeps working unchanged. Durability follows
//! the segment protocol: the sidecar is written (tmp + rename) **before**
//! its segment is renamed to its sealed name, so a sealed segment always
//! has its sidecar; a crash in between leaves an orphan sidecar that the
//! next open sweeps.
//!
//! Layout (all little-endian): magic `NFSQ`, `u8` version, `u64`
//! count, `count × u64` sequences, `u64` FNV-1a checksum over the
//! sequence bytes.

use nfstrace_store::{Result, StoreError};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"NFSQ";
const VERSION: u8 = 1;

/// File suffix every sequence sidecar carries.
pub const SEQ_SUFFIX: &str = ".nfseq";

/// The sidecar path for a sealed segment path
/// (`seg-000042.nfseg` → `seg-000042.nfseq`).
pub fn sidecar_path(segment: &Path) -> PathBuf {
    segment.with_extension("nfseq")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn seq_bytes(seqs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(seqs.len() * 8);
    for &s in seqs {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Writes the sidecar for `segment` (tmp + rename, so a reader never
/// sees a torn sidecar).
///
/// # Errors
///
/// On I/O failure.
pub fn write_sidecar(segment: &Path, seqs: &[u64]) -> Result<()> {
    let path = sidecar_path(segment);
    let tmp = path.with_extension("nfseq.tmp");
    let body = seq_bytes(seqs);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&[VERSION])?;
        file.write_all(&(seqs.len() as u64).to_le_bytes())?;
        file.write_all(&body)?;
        file.write_all(&fnv1a(&body).to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(tmp, path)?;
    Ok(())
}

/// Reads the sidecar for `segment` and validates magic, version,
/// length, and checksum.
///
/// # Errors
///
/// [`StoreError::Format`] on a missing, truncated, or corrupt sidecar.
pub fn read_sidecar(segment: &Path) -> Result<Vec<u64>> {
    let path = sidecar_path(segment);
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::Format(format!("sequence sidecar {}: {e}", path.display())))?;
    let fail =
        |what: &str| StoreError::Format(format!("sequence sidecar {}: {what}", path.display()));
    if bytes.len() < 13 || &bytes[..4] != MAGIC {
        return Err(fail("bad magic"));
    }
    if bytes[4] != VERSION {
        return Err(fail("unsupported version"));
    }
    let count = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")) as usize;
    let body_end = 13 + count * 8;
    if bytes.len() != body_end + 8 {
        return Err(fail("truncated"));
    }
    let body = &bytes[13..body_end];
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(fail("checksum mismatch"));
    }
    Ok(body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_segment(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nfstrace-seqfile-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("seg-000000.nfseg")
    }

    #[test]
    fn roundtrip() {
        let seg = temp_segment("roundtrip");
        let seqs: Vec<u64> = vec![0, 1, 5, 7, u64::MAX];
        write_sidecar(&seg, &seqs).expect("write");
        assert_eq!(read_sidecar(&seg).expect("read"), seqs);
        write_sidecar(&seg, &[]).expect("rewrite empty");
        assert_eq!(read_sidecar(&seg).expect("read empty"), Vec::<u64>::new());
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let seg = temp_segment("corrupt");
        write_sidecar(&seg, &[1, 2, 3]).expect("write");
        let path = sidecar_path(&seg);
        let mut bytes = std::fs::read(&path).expect("read raw");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(read_sidecar(&seg).is_err());
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        assert!(read_sidecar(&seg).is_err());
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }

    #[test]
    fn missing_sidecar_errors() {
        let seg = temp_segment("missing");
        assert!(read_sidecar(&seg).is_err());
        std::fs::remove_dir_all(seg.parent().unwrap()).ok();
    }
}
