//! The bounded-memory ingest loop: hot segment, rotation, sealing.

use crate::source::RecordSource;
use crate::view::LiveView;
use nfstrace_core::index::PartialIndex;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::sink::RecordSink;
use nfstrace_store::{Result, SegmentCatalog, StoreConfig, StoreError, StoreReader, StoreWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Ingest knobs: where segments land and when the hot segment seals.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The segment directory (created if needed).
    pub dir: PathBuf,
    /// Store layout for each sealed segment (chunking, compression,
    /// format version).
    pub store: StoreConfig,
    /// Seal the hot segment once it holds this many records. Also the
    /// hot tail's memory bound.
    pub rotate_records: u64,
    /// … or once it spans this much trace time, in microseconds.
    pub rotate_micros: u64,
}

impl LiveConfig {
    /// Sensible defaults for `dir`: 250k-record / one-simulated-day
    /// rotation with the default store layout.
    pub fn new<P: AsRef<Path>>(dir: P) -> Self {
        LiveConfig {
            dir: dir.as_ref().to_path_buf(),
            store: StoreConfig::default(),
            rotate_records: 250_000,
            rotate_micros: nfstrace_core::time::DAY,
        }
    }
}

/// What [`LiveIngest::finish`] reports.
#[derive(Debug, Clone)]
pub struct LiveSummary {
    /// Sealed segments on disk.
    pub segments: usize,
    /// Records ingested over the daemon's whole life (including any
    /// sealed segments found at reopen).
    pub total_records: u64,
    /// Largest hot tail ever resident, in records — the ingest-side
    /// memory observable, bounded by the rotation thresholds.
    pub peak_hot_records: usize,
    /// Largest single source batch consumed by [`LiveIngest::run`].
    pub peak_batch_records: usize,
}

/// The live ingest daemon: consumes time-ordered records incrementally
/// from any [`RecordSource`], accumulates them in an in-memory **hot
/// segment** (a pending [`StoreWriter`] chunk stream plus a running
/// [`PartialIndex`]), and **seals** the hot segment to an on-disk
/// store segment whenever it crosses the configured record-count or
/// time-span threshold. At any instant, [`LiveIngest::view`] snapshots
/// a [`LiveView`] answering the full analysis suite over *sealed +
/// hot* — queries run mid-ingest, against exactly the records ingested
/// so far.
///
/// # The bounded-memory contract
///
/// Nothing here ever holds the whole trace:
///
/// - the **hot tail** (records pushed since the last seal) is bounded
///   by [`LiveConfig::rotate_records`] / [`LiveConfig::rotate_micros`];
/// - the pending [`StoreWriter`] chunk is bounded by the store's
///   chunk size;
/// - sealed records live on disk and are re-decoded chunk-at-a-time
///   when a view replays them.
///
/// The running [`PartialIndex`] keeps aggregate products (counters,
/// hourly buckets, per-file access lists) — the same state any index
/// over the same records holds — but never raw records. Peak observed
/// numbers are reported via [`LiveIngest::peak_hot_records`] and
/// [`LiveSummary`], and the `live` bench records them in
/// `BENCH_pipeline.json`.
///
/// # Restartability
///
/// Segments are named by ordinal ([`SegmentCatalog`]); a stopped
/// ingest reopened with [`LiveIngest::open`] scans the directory,
/// rebuilds its running partial from the sealed segments (one decode
/// pass), and appends from the next ordinal — the durable trace is the
/// segment directory itself. The hot segment grows under a `.tmp`
/// name and is renamed only after its footer lands, so a crash
/// mid-segment never leaves an unreadable `seg-*.nfseg`: reopening
/// sweeps the stale temp and resumes from the last seal (records past
/// it were never durable and are the rollback unit).
///
/// # Determinism
///
/// Rotation decisions are made per record, so the segment files (and
/// every byte in them) are a pure function of the record stream and
/// the configuration — independent of source batch sizes, slice
/// lengths, or worker counts. The live-vs-batch property tests pin
/// exactly that.
#[derive(Debug)]
pub struct LiveIngest {
    config: LiveConfig,
    catalog: SegmentCatalog,
    sealed: Vec<Arc<StoreReader>>,
    /// Running construction products over every sealed record.
    sealed_partial: PartialIndex,
    /// The hot segment's writer (created with its first record).
    hot_writer: Option<StoreWriter>,
    hot_ordinal: u64,
    hot_records: Vec<TraceRecord>,
    hot_partial: PartialIndex,
    hot_first_micros: u64,
    last_micros: u64,
    any_ingested: bool,
    total_records: u64,
    peak_hot_records: usize,
    peak_batch_records: usize,
}

impl LiveIngest {
    /// Starts a fresh ingest in `config.dir`.
    ///
    /// # Errors
    ///
    /// If the directory already holds sealed segments (reopen those
    /// with [`LiveIngest::open`]) or cannot be created.
    pub fn create(config: LiveConfig) -> Result<Self> {
        let catalog = SegmentCatalog::open(&config.dir)?;
        if !catalog.is_empty() {
            return Err(StoreError::Format(format!(
                "segment directory {} is not empty; use LiveIngest::open to resume",
                config.dir.display()
            )));
        }
        Self::sweep_stale_temps(catalog.dir())?;
        Ok(Self::with_catalog(config, catalog, Vec::new()))
    }

    /// Reopens an existing segment directory and resumes appending
    /// after the last sealed segment. The running construction
    /// products are rebuilt from the sealed segments in one streaming
    /// decode pass.
    ///
    /// # Errors
    ///
    /// On directory or segment open/decode failure.
    pub fn open(config: LiveConfig) -> Result<Self> {
        let catalog = SegmentCatalog::open(&config.dir)?;
        Self::sweep_stale_temps(catalog.dir())?;
        let mut sealed = Vec::with_capacity(catalog.len());
        for path in catalog.paths() {
            sealed.push(Arc::new(StoreReader::open(path)?));
        }
        let mut ingest = Self::with_catalog(config, catalog, sealed);
        let mut partial = PartialIndex::new();
        for reader in &ingest.sealed {
            reader.for_each(|r| partial.observe(r))?;
            ingest.total_records += reader.total_records();
            if let Some(m) = reader.chunks().iter().rfind(|m| m.records > 0) {
                ingest.last_micros = ingest.last_micros.max(m.max_micros);
                ingest.any_ingested = true;
            }
        }
        ingest.sealed_partial = partial;
        Ok(ingest)
    }

    /// The in-progress name the hot segment grows under.
    fn tmp_path(sealed_path: &Path) -> PathBuf {
        let mut name = sealed_path
            .file_name()
            .expect("segment paths have names")
            .to_os_string();
        name.push(".tmp");
        sealed_path.with_file_name(name)
    }

    /// Removes unsealed leftovers of a crashed ingest (hot segments
    /// that never got their footer). Their records were never
    /// acknowledged as sealed, so deleting them is the rollback.
    fn sweep_stale_temps(dir: &Path) -> Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".nfseg.tmp"))
            {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn with_catalog(
        config: LiveConfig,
        catalog: SegmentCatalog,
        sealed: Vec<Arc<StoreReader>>,
    ) -> Self {
        LiveIngest {
            config,
            catalog,
            sealed,
            sealed_partial: PartialIndex::new(),
            hot_writer: None,
            hot_ordinal: 0,
            hot_records: Vec::new(),
            hot_partial: PartialIndex::new(),
            hot_first_micros: 0,
            last_micros: 0,
            any_ingested: false,
            total_records: 0,
            peak_hot_records: 0,
            peak_batch_records: 0,
        }
    }

    /// Ingests one record: into the hot segment's writer, records, and
    /// partial — then seals if a rotation threshold was crossed.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfOrder`] on a time-travelling record (the
    /// stream contract spans segment boundaries), or I/O errors from
    /// the segment writer.
    pub fn ingest(&mut self, r: &TraceRecord) -> Result<()> {
        if self.any_ingested && r.micros < self.last_micros {
            return Err(StoreError::OutOfOrder {
                prev: self.last_micros,
                next: r.micros,
            });
        }
        if self.hot_writer.is_none() {
            self.hot_ordinal = self.catalog.next_ordinal();
            // The hot segment grows under a .tmp name and is renamed to
            // its sealed name only after its footer is written: a crash
            // mid-segment leaves a stale temp file (cleaned at the next
            // create/open), never a footerless seg-*.nfseg that would
            // poison the whole directory.
            self.hot_writer = Some(StoreWriter::create(
                Self::tmp_path(&self.catalog.path_for(self.hot_ordinal)),
                self.config.store,
            )?);
            self.hot_first_micros = r.micros;
        }
        self.hot_writer
            .as_mut()
            .expect("just ensured a writer")
            .push(r)?;
        self.hot_records.push(r.clone());
        self.hot_partial.observe(r);
        self.last_micros = r.micros;
        self.any_ingested = true;
        self.total_records += 1;
        self.peak_hot_records = self.peak_hot_records.max(self.hot_records.len());
        if self.hot_records.len() as u64 >= self.config.rotate_records
            || r.micros.saturating_sub(self.hot_first_micros) >= self.config.rotate_micros
        {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the hot segment now (no-op when it is empty): finishes the
    /// segment file, opens it for reading, folds the hot partial into
    /// the sealed one, and drops the hot tail.
    ///
    /// # Errors
    ///
    /// On finish/open I/O failure.
    pub fn rotate(&mut self) -> Result<()> {
        let Some(writer) = self.hot_writer.take() else {
            return Ok(());
        };
        writer.finish()?;
        let path = self.catalog.path_for(self.hot_ordinal);
        std::fs::rename(Self::tmp_path(&path), &path)?;
        self.sealed.push(Arc::new(StoreReader::open(path)?));
        self.catalog.note_sealed(self.hot_ordinal);
        self.sealed_partial
            .absorb(std::mem::take(&mut self.hot_partial));
        self.hot_records = Vec::new();
        Ok(())
    }

    /// Pumps `source` to exhaustion through [`LiveIngest::ingest`].
    ///
    /// # Errors
    ///
    /// Propagates the first ingest error.
    pub fn run<S: RecordSource + ?Sized>(&mut self, source: &mut S) -> Result<()> {
        let mut batch = Vec::new();
        loop {
            batch.clear();
            if !source.next_batch(&mut batch) {
                return Ok(());
            }
            self.peak_batch_records = self.peak_batch_records.max(batch.len());
            for r in &batch {
                self.ingest(r)?;
            }
        }
    }

    /// Snapshots a stable [`LiveView`] over everything ingested so far
    /// — sealed segments plus the hot tail, queryable mid-ingest.
    pub fn view(&self) -> LiveView {
        let mut merged = self.sealed_partial.clone();
        merged.absorb(self.hot_partial.clone());
        LiveView::assemble(
            self.sealed.clone(),
            Arc::new(self.hot_records.clone()),
            0,
            u64::MAX,
            merged.finish(),
        )
    }

    /// Seals the trailing hot segment and reports totals. The segment
    /// directory is the durable product; reopen it any time with
    /// [`LiveIngest::open`] or index it with
    /// [`nfstrace_store::StoreIndex::open_dir`].
    ///
    /// # Errors
    ///
    /// On the final seal's I/O failure.
    pub fn finish(mut self) -> Result<LiveSummary> {
        self.rotate()?;
        Ok(LiveSummary {
            segments: self.catalog.len(),
            total_records: self.total_records,
            peak_hot_records: self.peak_hot_records,
            peak_batch_records: self.peak_batch_records,
        })
    }

    /// Sealed segments so far.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Records in the hot (unsealed) tail right now.
    pub fn hot_len(&self) -> usize {
        self.hot_records.len()
    }

    /// Records ingested so far (sealed + hot).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Largest hot tail ever resident, in records.
    pub fn peak_hot_records(&self) -> usize {
        self.peak_hot_records
    }

    /// Largest single source batch consumed by [`LiveIngest::run`].
    pub fn peak_batch_records(&self) -> usize {
        self.peak_batch_records
    }

    /// The ingest configuration.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }
}

impl RecordSink for LiveIngest {
    type Err = StoreError;

    fn push_record(&mut self, record: TraceRecord) -> Result<()> {
        self.ingest(&record)
    }
}
