//! The bounded-memory ingest loop: hot segment, rotation, sealing.

use crate::source::RecordSource;
use crate::view::{LiveView, ShardChain};
use nfstrace_core::index::{IndexBase, PartialIndex};
use nfstrace_core::record::TraceRecord;
use nfstrace_core::sink::RecordSink;
use nfstrace_store::compact::{self, FaultInjector};
use nfstrace_store::seqfile;
use nfstrace_store::{
    CompactionPolicy, Compactor, Result, SegmentCatalog, StoreConfig, StoreError, StoreReader,
    StoreWriter,
};
use nfstrace_telemetry::{span, Counter, Gauge, Histogram, Registry};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Ingest knobs: where segments land and when the hot segment seals.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The segment directory (created if needed).
    pub dir: PathBuf,
    /// Store layout for each sealed segment (chunking, compression,
    /// format version).
    pub store: StoreConfig,
    /// Seal the hot segment once it holds this many records. Also the
    /// hot tail's memory bound.
    pub rotate_records: u64,
    /// … or once it spans this much trace time, in microseconds.
    pub rotate_micros: u64,
    /// Stamp every record with a global **arrival sequence number** and
    /// persist a [`crate::seqfile`] sidecar next to each sealed
    /// segment. Off by default: a plain single-writer ingest needs no
    /// sequences and its segment directory stays byte-identical to
    /// earlier versions. [`crate::ShardedLiveIngest`] turns this on for
    /// every shard so the merged view can replay the exact original
    /// interleave, equal timestamps included.
    pub track_seqs: bool,
    /// Run LSM-style background compaction behind the ingest: after
    /// each seal, contiguous runs of `fan_in` same-generation segments
    /// merge into one generation-bumped segment
    /// ([`nfstrace_store::compact`]), keeping an archive-scale catalog
    /// from growing into thousands of tiny files. The hot tail, the
    /// running products, and every byte a view or the suite produces
    /// are untouched — compaction only re-houses sealed records.
    /// `None` (the default) never compacts. Shards of a
    /// [`crate::ShardedLiveIngest`] inherit the policy, each
    /// compacting its own chain.
    pub compaction: Option<CompactionPolicy>,
    /// Where the ingest's `live.*` / `store.*` / `query.*` telemetry
    /// lands. Defaults to a private registry (no shared export); hand
    /// in one shared [`Registry`] to get a single pipeline-health
    /// export across the daemon, its segment writers/readers, and
    /// every view it snapshots. Shards of a
    /// [`crate::ShardedLiveIngest`] inherit it, so shard histograms
    /// merge into one distribution.
    pub registry: Registry,
}

impl LiveConfig {
    /// Sensible defaults for `dir`: 250k-record / one-simulated-day
    /// rotation with the default store layout.
    pub fn new<P: AsRef<Path>>(dir: P) -> Self {
        LiveConfig {
            dir: dir.as_ref().to_path_buf(),
            store: StoreConfig::default(),
            rotate_records: 250_000,
            rotate_micros: nfstrace_core::time::DAY,
            track_seqs: false,
            compaction: None,
            registry: Registry::new(),
        }
    }

    /// Points this configuration's telemetry at `registry`.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.registry = registry.clone();
        self
    }
}

/// The `live.*` slice of the pipeline-health export.
#[derive(Debug)]
pub(crate) struct LiveMetrics {
    /// `live.records_emitted` — records accepted into the hot segment.
    records_emitted: Counter,
    /// `live.segments_sealed` — hot segments rotated to disk.
    segments_sealed: Counter,
    /// `live.hot_records` — records currently resident in the hot tail.
    hot_records: Gauge,
    /// `live.batch_micros` — wall time of each source batch ingested
    /// (per shard under a sharded ingest; shards share the registry, so
    /// the per-shard samples merge into one distribution).
    pub(crate) batch_micros: Histogram,
    /// `live.snapshot_micros` — wall time of each view snapshot.
    pub(crate) snapshot_micros: Histogram,
}

impl LiveMetrics {
    fn register(registry: &Registry) -> Self {
        LiveMetrics {
            records_emitted: registry.counter("live.records_emitted"),
            segments_sealed: registry.counter("live.segments_sealed"),
            hot_records: registry.gauge("live.hot_records"),
            batch_micros: registry.histogram("live.batch_micros"),
            snapshot_micros: registry.histogram("live.snapshot_micros"),
        }
    }
}

/// What [`LiveIngest::finish`] reports.
#[derive(Debug, Clone)]
pub struct LiveSummary {
    /// Sealed segments on disk.
    pub segments: usize,
    /// Records ingested over the daemon's whole life (including any
    /// sealed segments found at reopen).
    pub total_records: u64,
    /// Largest hot tail ever resident, in records — the ingest-side
    /// memory observable, bounded by the rotation thresholds.
    pub peak_hot_records: usize,
    /// Largest single source batch consumed by [`LiveIngest::run`].
    pub peak_batch_records: usize,
}

/// The live ingest daemon: consumes time-ordered records incrementally
/// from any [`RecordSource`], accumulates them in an in-memory **hot
/// segment** (a pending [`StoreWriter`] chunk stream plus a running
/// [`PartialIndex`]), and **seals** the hot segment to an on-disk
/// store segment whenever it crosses the configured record-count or
/// time-span threshold. At any instant, [`LiveIngest::view`] snapshots
/// a [`LiveView`] answering the full analysis suite over *sealed +
/// hot* — queries run mid-ingest, against exactly the records ingested
/// so far.
///
/// # The bounded-memory contract
///
/// Nothing here ever holds the whole trace:
///
/// - the **hot tail** (records pushed since the last seal) is bounded
///   by [`LiveConfig::rotate_records`] / [`LiveConfig::rotate_micros`];
/// - the pending [`StoreWriter`] chunk is bounded by the store's
///   chunk size;
/// - sealed records live on disk and are re-decoded chunk-at-a-time
///   when a view replays them.
///
/// The running [`PartialIndex`] keeps aggregate products (counters,
/// hourly buckets, per-file access lists) — the same state any index
/// over the same records holds — but never raw records. Peak observed
/// numbers are reported via [`LiveIngest::peak_hot_records`] and
/// [`LiveSummary`], and the `live` bench records them in
/// `BENCH_pipeline.json`.
///
/// # Snapshot cost
///
/// The running partial's products sit behind copy-on-write [`Arc`]s,
/// so [`LiveIngest::view`] is a handle clone plus a summary/hourly
/// copy — O(counters + hourly buckets), **not** O(distinct files) or
/// O(accesses) — and the finished [`IndexBase`] is cached per ingest
/// *generation*: repeated views between mutations are pure clones.
/// Ingest pays for the sharing lazily, copying only the per-file lists
/// it touches after a snapshot.
///
/// # Restartability
///
/// Segments are named by ordinal ([`SegmentCatalog`]); a stopped
/// ingest reopened with [`LiveIngest::open`] scans the directory,
/// rebuilds its running partial from the sealed segments (one decode
/// pass), and appends from the next ordinal — the durable trace is the
/// segment directory itself. The hot segment grows under a `.tmp`
/// name and is renamed only after its footer lands, so a crash
/// mid-segment never leaves an unreadable `seg-*.nfseg`: reopening
/// sweeps the stale temp and resumes from the last seal (records past
/// it were never durable and are the rollback unit). With
/// [`LiveConfig::track_seqs`], each segment's sequence sidecar is
/// written and renamed *before* the segment itself, so a sealed
/// segment always has its sidecar; orphan sidecars from a crash in
/// between are swept alongside the temps.
///
/// # Determinism
///
/// Rotation decisions are made per record, so the segment files (and
/// every byte in them) are a pure function of the record stream and
/// the configuration — independent of source batch sizes, slice
/// lengths, or worker counts. The live-vs-batch property tests pin
/// exactly that.
#[derive(Debug)]
pub struct LiveIngest {
    config: LiveConfig,
    catalog: SegmentCatalog,
    sealed: Vec<Arc<StoreReader>>,
    /// Arrival sequences per sealed segment, parallel to `sealed`
    /// (empty unless [`LiveConfig::track_seqs`]).
    sealed_seqs: Vec<Arc<Vec<u64>>>,
    /// Running construction products over every ingested record,
    /// sealed and hot alike.
    running: PartialIndex,
    /// The hot segment's writer (created with its first record).
    hot_writer: Option<StoreWriter>,
    hot_ordinal: u64,
    hot_records: Arc<Vec<TraceRecord>>,
    /// Arrival sequences of the hot tail, parallel to `hot_records`
    /// (empty unless tracking).
    hot_seqs: Arc<Vec<u64>>,
    hot_first_micros: u64,
    last_micros: u64,
    /// The next arrival sequence a plain [`LiveIngest::ingest`] call
    /// self-stamps, and the floor [`LiveIngest::ingest_with_seq`]
    /// enforces (tracking only).
    next_seq: u64,
    any_ingested: bool,
    total_records: u64,
    peak_hot_records: usize,
    peak_batch_records: usize,
    /// Bumped on every mutation; keys the snapshot cache.
    generation: u64,
    /// The last finished [`IndexBase`] and the generation it was built
    /// at — repeated [`LiveIngest::view`] calls between mutations
    /// reuse it.
    base_cache: Mutex<Option<(u64, IndexBase)>>,
    /// The background merge engine (present iff
    /// [`LiveConfig::compaction`]).
    compactor: Option<Compactor>,
    /// Registry-backed `live.*` instruments (see [`LiveConfig::registry`]).
    pub(crate) metrics: LiveMetrics,
}

impl LiveIngest {
    /// Starts a fresh ingest in `config.dir`.
    ///
    /// # Errors
    ///
    /// If the directory already holds sealed segments (reopen those
    /// with [`LiveIngest::open`]) or cannot be created.
    pub fn create(config: LiveConfig) -> Result<Self> {
        let catalog = SegmentCatalog::open_and_sweep(&config.dir)?;
        if !catalog.is_empty() {
            return Err(StoreError::Format(format!(
                "segment directory {} is not empty; use LiveIngest::open to resume",
                config.dir.display()
            )));
        }
        Ok(Self::with_catalog(config, catalog, Vec::new()))
    }

    /// Reopens an existing segment directory and resumes appending
    /// after the last sealed segment. The running construction
    /// products are rebuilt from the sealed segments in one streaming
    /// decode pass; with [`LiveConfig::track_seqs`], each segment's
    /// sequence sidecar is loaded alongside it and self-stamping
    /// resumes past the highest sealed sequence.
    ///
    /// # Errors
    ///
    /// On directory or segment open/decode failure, or — when tracking
    /// — a precise [`StoreError::Sidecar`] for a missing, corrupt, or
    /// count-mismatched sequence sidecar (the directory was written
    /// without tracking, or a sidecar rotted, and cannot seed a
    /// sharded merge).
    pub fn open(config: LiveConfig) -> Result<Self> {
        let catalog = SegmentCatalog::open_and_sweep(&config.dir)?;
        let mut sealed = Vec::with_capacity(catalog.len());
        for path in catalog.paths() {
            sealed.push(Arc::new(StoreReader::open_with_registry(
                path,
                &config.registry,
            )?));
        }
        let track = config.track_seqs;
        let mut ingest = Self::with_catalog(config, catalog, sealed);
        let mut partial = if track {
            PartialIndex::with_seq_tracking()
        } else {
            PartialIndex::new()
        };
        for reader in &ingest.sealed {
            if track {
                let seqs = seqfile::read_sidecar(reader.path())?;
                if seqs.len() as u64 != reader.total_records() {
                    return Err(StoreError::Sidecar {
                        segment: reader.path().to_path_buf(),
                        problem: format!(
                            "holds {} entries for {} records",
                            seqs.len(),
                            reader.total_records()
                        ),
                    });
                }
                let mut at = 0usize;
                reader.for_each(|r| {
                    partial.observe_seq(r, seqs[at]);
                    at += 1;
                })?;
                if let Some(&last) = seqs.last() {
                    ingest.next_seq = ingest.next_seq.max(last + 1);
                }
                ingest.sealed_seqs.push(Arc::new(seqs));
            } else {
                reader.for_each(|r| partial.observe(r))?;
            }
            ingest.total_records += reader.total_records();
            if let Some(m) = reader.chunks().iter().rfind(|m| m.records > 0) {
                ingest.last_micros = ingest.last_micros.max(m.max_micros);
                ingest.any_ingested = true;
            }
        }
        ingest.running = partial;
        Ok(ingest)
    }

    fn with_catalog(
        config: LiveConfig,
        catalog: SegmentCatalog,
        sealed: Vec<Arc<StoreReader>>,
    ) -> Self {
        let running = if config.track_seqs {
            PartialIndex::with_seq_tracking()
        } else {
            PartialIndex::new()
        };
        let metrics = LiveMetrics::register(&config.registry);
        let compactor = config
            .compaction
            .map(|policy| Compactor::new(policy, config.store, &config.registry));
        LiveIngest {
            config,
            catalog,
            sealed,
            sealed_seqs: Vec::new(),
            running,
            hot_writer: None,
            hot_ordinal: 0,
            hot_records: Arc::new(Vec::new()),
            hot_seqs: Arc::new(Vec::new()),
            hot_first_micros: 0,
            last_micros: 0,
            next_seq: 0,
            any_ingested: false,
            total_records: 0,
            peak_hot_records: 0,
            peak_batch_records: 0,
            generation: 0,
            base_cache: Mutex::new(None),
            compactor,
            metrics,
        }
    }

    /// Ingests one record: into the hot segment's writer, records, and
    /// partial — then seals if a rotation threshold was crossed. With
    /// [`LiveConfig::track_seqs`], the record self-stamps the next
    /// arrival sequence; a sharded router passes explicit global
    /// sequences via [`LiveIngest::ingest_with_seq`] instead.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfOrder`] on a time-travelling record (the
    /// stream contract spans segment boundaries), or I/O errors from
    /// the segment writer.
    pub fn ingest(&mut self, r: &TraceRecord) -> Result<()> {
        let seq = self.next_seq;
        self.ingest_inner(r, seq)
    }

    /// Ingests one record stamped with an explicit global arrival
    /// sequence — the sharded router's entry point.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when sequence tracking is off or `seq`
    /// is not strictly increasing, plus everything
    /// [`LiveIngest::ingest`] can return.
    pub fn ingest_with_seq(&mut self, r: &TraceRecord, seq: u64) -> Result<()> {
        if !self.config.track_seqs {
            return Err(StoreError::Format(
                "ingest_with_seq requires LiveConfig::track_seqs".into(),
            ));
        }
        if seq < self.next_seq {
            return Err(StoreError::Format(format!(
                "arrival sequence {seq} is not increasing (next expected ≥ {})",
                self.next_seq
            )));
        }
        self.ingest_inner(r, seq)
    }

    fn ingest_inner(&mut self, r: &TraceRecord, seq: u64) -> Result<()> {
        if self.any_ingested && r.micros < self.last_micros {
            return Err(StoreError::OutOfOrder {
                prev: self.last_micros,
                next: r.micros,
            });
        }
        if self.hot_writer.is_none() {
            self.hot_ordinal = self.catalog.next_ordinal();
            // The hot segment grows under a .tmp name and is renamed to
            // its sealed name only after its footer is written: a crash
            // mid-segment leaves a stale temp file (cleaned at the next
            // create/open), never a footerless seg-*.nfseg that would
            // poison the whole directory.
            self.hot_writer = Some(StoreWriter::create_with_registry(
                compact::tmp_path(&self.catalog.path_for(self.hot_ordinal)),
                self.config.store,
                &self.config.registry,
            )?);
            self.hot_first_micros = r.micros;
        }
        self.hot_writer
            .as_mut()
            .expect("just ensured a writer")
            .push(r)?;
        Arc::make_mut(&mut self.hot_records).push(r.clone());
        if self.config.track_seqs {
            Arc::make_mut(&mut self.hot_seqs).push(seq);
            self.running.observe_seq(r, seq);
            self.next_seq = seq + 1;
        } else {
            self.running.observe(r);
        }
        self.last_micros = r.micros;
        self.any_ingested = true;
        self.total_records += 1;
        self.generation += 1;
        self.peak_hot_records = self.peak_hot_records.max(self.hot_records.len());
        self.metrics.records_emitted.inc();
        self.metrics.hot_records.set(self.hot_records.len() as f64);
        if self.hot_records.len() as u64 >= self.config.rotate_records
            || r.micros.saturating_sub(self.hot_first_micros) >= self.config.rotate_micros
        {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the hot segment now (no-op when it is empty): finishes the
    /// segment file, publishes it via the shared crash-safe seal
    /// protocol ([`nfstrace_store::compact::seal_segment`] — sidecar
    /// first when tracking), opens it for reading, drops the hot tail,
    /// and runs any [`LiveConfig::compaction`] passes the new segment
    /// made ripe. The running partial already covers these records and
    /// is untouched; with compaction on, a [`LiveView`] snapshotted
    /// *before* this call may reference source segments the merge
    /// deletes — snapshot views after mutations, not across them.
    ///
    /// # Errors
    ///
    /// On finish/open/compaction I/O failure.
    pub fn rotate(&mut self) -> Result<()> {
        let Some(writer) = self.hot_writer.take() else {
            return Ok(());
        };
        writer.finish()?;
        let path = self.catalog.path_for(self.hot_ordinal);
        let seqs = self
            .config
            .track_seqs
            .then(|| std::mem::replace(&mut self.hot_seqs, Arc::new(Vec::new())));
        compact::seal_segment(
            &compact::tmp_path(&path),
            &path,
            seqs.as_ref().map(|s| s.as_slice()),
            &mut FaultInjector::none(),
        )?;
        if let Some(seqs) = seqs {
            self.sealed_seqs.push(seqs);
        }
        self.sealed.push(Arc::new(StoreReader::open_with_registry(
            path,
            &self.config.registry,
        )?));
        self.catalog.note_sealed(self.hot_ordinal);
        self.hot_records = Arc::new(Vec::new());
        self.metrics.segments_sealed.inc();
        self.metrics.hot_records.set(0.0);
        self.maybe_compact()
    }

    /// Runs compaction passes until the policy finds nothing ripe,
    /// mirroring each on-disk swap in the in-memory reader chain: the
    /// merged readers (and their sequence sidecars) are spliced out
    /// for the output's, so views keep seeing the identical record
    /// stream. No-op without a policy.
    fn maybe_compact(&mut self) -> Result<()> {
        let Some(compactor) = &self.compactor else {
            return Ok(());
        };
        while let Some(output) = compactor.policy().plan(self.catalog.ids()) {
            let outcome =
                compactor.compact(&mut self.catalog, output, &mut FaultInjector::none())?;
            let (first, count) = outcome.replaced;
            let reader = Arc::new(StoreReader::open_with_registry(
                self.catalog.path_of(&outcome.output),
                &self.config.registry,
            )?);
            self.sealed.splice(first..first + count, [reader]);
            if self.config.track_seqs {
                let merged = outcome
                    .seqs
                    .expect("tracked segments compact with sidecars");
                self.sealed_seqs
                    .splice(first..first + count, [Arc::new(merged)]);
            }
        }
        Ok(())
    }

    /// Pumps `source` to exhaustion through [`LiveIngest::ingest`].
    ///
    /// # Errors
    ///
    /// Propagates the first ingest error.
    pub fn run<S: RecordSource + ?Sized>(&mut self, source: &mut S) -> Result<()> {
        let mut batch = Vec::new();
        loop {
            batch.clear();
            if !source.next_batch(&mut batch) {
                return Ok(());
            }
            self.peak_batch_records = self.peak_batch_records.max(batch.len());
            let _span = span!(self.metrics.batch_micros);
            for r in &batch {
                self.ingest(r)?;
            }
        }
    }

    /// The finished construction products over everything ingested so
    /// far — a copy-on-write snapshot of the running partial, cached
    /// per generation: O(counters + hourly buckets) the first time
    /// after a mutation, a pure clone after that.
    pub fn snapshot_base(&self) -> IndexBase {
        let mut cache = self.base_cache.lock().expect("snapshot cache poisoned");
        if let Some((generation, base)) = cache.as_ref() {
            if *generation == self.generation {
                return base.clone();
            }
        }
        let base = self.running.clone().finish();
        *cache = Some((self.generation, base.clone()));
        base
    }

    /// A copy-on-write clone of the running partial — what
    /// [`crate::ShardedLiveIngest`] merges across shards.
    pub(crate) fn snapshot_partial(&self) -> PartialIndex {
        self.running.clone()
    }

    /// This ingest's segment chain (sealed readers + sequences + hot
    /// tail), the per-shard ingredient of a merged view.
    pub(crate) fn chain(&self) -> ShardChain {
        ShardChain::new(
            self.sealed.clone(),
            self.sealed_seqs.clone(),
            Arc::clone(&self.hot_records),
            Arc::clone(&self.hot_seqs),
        )
    }

    /// Snapshots a stable [`LiveView`] over everything ingested so far
    /// — sealed segments plus the hot tail, queryable mid-ingest.
    pub fn view(&self) -> LiveView {
        let _span = span!(self.metrics.snapshot_micros);
        LiveView::assemble(
            self.chain(),
            0,
            u64::MAX,
            self.snapshot_base(),
            &self.config.registry,
        )
    }

    /// Seals the trailing hot segment and reports totals. The segment
    /// directory is the durable product; reopen it any time with
    /// [`LiveIngest::open`] or index it with
    /// [`nfstrace_store::StoreIndex::open_dir`].
    ///
    /// # Errors
    ///
    /// On the final seal's I/O failure.
    pub fn finish(mut self) -> Result<LiveSummary> {
        self.rotate()?;
        Ok(LiveSummary {
            segments: self.catalog.len(),
            total_records: self.total_records,
            peak_hot_records: self.peak_hot_records,
            peak_batch_records: self.peak_batch_records,
        })
    }

    /// Sealed segments so far.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Records in the hot (unsealed) tail right now.
    pub fn hot_len(&self) -> usize {
        self.hot_records.len()
    }

    /// Records ingested so far (sealed + hot).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Largest hot tail ever resident, in records.
    pub fn peak_hot_records(&self) -> usize {
        self.peak_hot_records
    }

    /// Largest single source batch consumed by [`LiveIngest::run`].
    pub fn peak_batch_records(&self) -> usize {
        self.peak_batch_records
    }

    /// The next arrival sequence this ingest would self-stamp — past
    /// every sequence it has seen, sealed or hot (tracking only).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The last ingested timestamp (0 before any record).
    pub fn last_micros(&self) -> u64 {
        self.last_micros
    }

    /// Whether any record was ever ingested (including sealed ones
    /// found at reopen).
    pub fn any_ingested(&self) -> bool {
        self.any_ingested
    }

    /// The ingest configuration.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }
}

impl RecordSink for LiveIngest {
    type Err = StoreError;

    fn push_record(&mut self, record: TraceRecord) -> Result<()> {
        self.ingest(&record)
    }
}
