//! The queryable snapshot of a live ingest: sealed segments + hot tail.

use nfstrace_core::hierarchy::CoveragePoint;
use nfstrace_core::hourly::HourlySeries;
use nfstrace_core::index::{
    AccessMap, IndexBase, PartialIndex, ProductCaches, RecordStream, ReplayRequest, TraceView,
};
use nfstrace_core::lifetime::{LifetimeConfig, LifetimeReport};
use nfstrace_core::names::NamePredictionReport;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::reorder::SwapPoint;
use nfstrace_core::runs::{Run, RunOptions};
use nfstrace_core::summary::SummaryStats;
use nfstrace_store::{stream_records, StoreReader};
use std::sync::Arc;

/// A [`TraceView`] over everything a [`crate::LiveIngest`] has
/// ingested at one instant: the sealed on-disk segments plus a
/// snapshot of the hot (not yet sealed) records.
///
/// A `LiveView` is **stable**: the sealed segment files are immutable,
/// the hot tail is cloned at snapshot time (bounded by the rotation
/// thresholds), and the construction-pass products come from a clone
/// of the ingest's running [`PartialIndex`] — so queries answered
/// mid-ingest keep answering identically while records continue to
/// flow in behind them. It answers the full table/figure suite: the
/// analysis layer is generic over [`TraceView`], and this view's
/// contract is the usual bit-identity with an in-memory
/// [`nfstrace_core::index::TraceIndex`] over the same records.
///
/// Record replays stream the sealed chunks out-of-core (pipelined on
/// multi-worker runs, see [`stream_records`]) and then the hot tail —
/// hot records always follow every sealed record in time.
#[derive(Debug)]
pub struct LiveView {
    sealed: Vec<Arc<StoreReader>>,
    hot: Arc<Vec<TraceRecord>>,
    /// This view's half-open time range.
    start: u64,
    end: u64,
    base: IndexBase,
    caches: ProductCaches,
}

impl LiveView {
    /// Assembles a snapshot view. `base` must be the finished
    /// construction products over exactly (sealed ++ hot) restricted to
    /// `[start, end)` — [`crate::LiveIngest::view`] maintains that
    /// running partial and hands in its snapshot, so building a view is
    /// O(clone), not a decode pass.
    pub(crate) fn assemble(
        sealed: Vec<Arc<StoreReader>>,
        hot: Arc<Vec<TraceRecord>>,
        start: u64,
        end: u64,
        base: IndexBase,
    ) -> Self {
        LiveView {
            sealed,
            hot,
            start,
            end,
            base,
            caches: ProductCaches::new(),
        }
    }

    /// The sealed segment readers behind this snapshot.
    pub fn sealed(&self) -> &[Arc<StoreReader>] {
        &self.sealed
    }

    /// The hot (unsealed) records in this snapshot's range — windowed
    /// views yield only the hot records inside their window, consistent
    /// with [`LiveView::record_count`] and the replay stream.
    pub fn hot_records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.hot
            .iter()
            .filter(|r| r.micros >= self.start && r.micros < self.end)
    }

    /// Records in this view (sealed + hot, inside the range).
    pub fn record_count(&self) -> usize {
        self.base.len
    }
}

impl RecordStream for LiveView {
    /// Sealed chunks (skipping those outside the window, pipelined
    /// decode on multi-worker runs), then the hot tail.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure — a sealed segment corrupted (or
    /// deleted) mid-analysis.
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord)) {
        stream_records(&self.sealed, self.start, self.end, f);
        for r in self.hot.iter() {
            if r.micros >= self.start && r.micros < self.end {
                f(r);
            }
        }
    }
}

impl TraceView for LiveView {
    fn len(&self) -> usize {
        self.base.len
    }

    fn summary(&self) -> &SummaryStats {
        &self.base.summary
    }

    fn hourly(&self) -> &HourlySeries {
        &self.base.hourly
    }

    fn names(&self) -> &NamePredictionReport {
        self.caches.names(self)
    }

    fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        self.caches.accesses(&self.base.raw, window_ms)
    }

    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        self.caches.runs(&self.base.raw, window_ms, opts)
    }

    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        self.caches.lifetime(self, cfg)
    }

    fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        self.caches.weekday_lifetime(self)
    }

    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        nfstrace_core::reorder::swap_fraction_sweep(&self.base.raw, windows_ms)
    }

    /// A narrower snapshot sharing the sealed readers and the hot
    /// clone; its construction pass streams the window's chunks once.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure (see
    /// [`RecordStream::for_each_record`] on this type).
    fn time_window(&self, start_micros: u64, end_micros: u64) -> LiveView {
        let start = start_micros.max(self.start);
        let end = end_micros.min(self.end).max(start);
        let mut partial = PartialIndex::new();
        stream_records(&self.sealed, start, end, &mut |r| partial.observe(r));
        for r in self.hot.iter() {
            if r.micros >= start && r.micros < end {
                partial.observe(r);
            }
        }
        LiveView::assemble(
            self.sealed.clone(),
            Arc::clone(&self.hot),
            start,
            end,
            partial.finish(),
        )
    }

    fn sort_passes(&self) -> u64 {
        self.caches.sort_passes()
    }

    fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>> {
        self.caches.coverage(self, bucket_micros)
    }

    fn prepare(&self, requests: &[ReplayRequest]) {
        self.caches.prepare(self, requests);
    }

    fn decode_passes(&self) -> u64 {
        self.caches.decode_passes()
    }
}
