//! The queryable snapshot of a live ingest: sealed segments + hot tail,
//! one chain per shard, merged on read.

use nfstrace_core::hierarchy::CoveragePoint;
use nfstrace_core::hourly::HourlySeries;
use nfstrace_core::index::{
    AccessMap, IndexBase, PartialIndex, ProductCaches, RecordStream, ReplayRequest, TraceView,
};
use nfstrace_core::lifetime::{LifetimeConfig, LifetimeReport};
use nfstrace_core::names::NamePredictionReport;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::reorder::SwapPoint;
use nfstrace_core::runs::{Run, RunOptions};
use nfstrace_core::summary::SummaryStats;
use nfstrace_store::{stream_records, StoreReader};
use nfstrace_telemetry::Registry;
use std::sync::Arc;

/// One shard's contribution to a [`LiveView`]: its sealed segment
/// chain, the arrival sequences of every sealed record (sidecars,
/// loaded per segment), and a snapshot of its hot tail with the
/// sequences of those records.
///
/// A single-writer ingest produces one chain with empty sequence
/// vectors — sequences are only consulted when two or more chains must
/// be interleaved.
#[derive(Debug, Clone)]
pub struct ShardChain {
    sealed: Vec<Arc<StoreReader>>,
    /// Arrival sequences per sealed segment, parallel to `sealed`
    /// (empty when the ingest does not track sequences).
    sealed_seqs: Vec<Arc<Vec<u64>>>,
    hot: Arc<Vec<TraceRecord>>,
    /// Arrival sequences of the hot tail, parallel to `hot` (empty
    /// when not tracking).
    hot_seqs: Arc<Vec<u64>>,
}

impl ShardChain {
    pub(crate) fn new(
        sealed: Vec<Arc<StoreReader>>,
        sealed_seqs: Vec<Arc<Vec<u64>>>,
        hot: Arc<Vec<TraceRecord>>,
        hot_seqs: Arc<Vec<u64>>,
    ) -> Self {
        ShardChain {
            sealed,
            sealed_seqs,
            hot,
            hot_seqs,
        }
    }

    /// The sealed segment readers of this chain.
    pub fn sealed(&self) -> &[Arc<StoreReader>] {
        &self.sealed
    }

    /// The hot (unsealed) records of this chain's snapshot.
    pub fn hot(&self) -> &[TraceRecord] {
        &self.hot
    }
}

/// A streaming cursor over one chain restricted to `[start, end)`:
/// sealed chunks decoded lazily one at a time (skipping chunks whose
/// time range misses the window, while still advancing the sequence
/// index past their records), then the hot tail. Within a chain,
/// arrival sequences are strictly increasing, so [`ChainCursor::peek`]
/// exposes exactly the next sequence the chain would emit — the k-way
/// merge pops the chain with the smallest one.
struct ChainCursor<'a> {
    chain: &'a ShardChain,
    start: u64,
    end: u64,
    /// Index into `chain.sealed`; `== chain.sealed.len()` → hot phase.
    seg: usize,
    /// Next chunk ordinal to consider within the current segment.
    chunk: usize,
    /// Records of the current segment consumed or skipped before
    /// `buf` — the sequence-sidecar index of `buf[0]`.
    seq_off: usize,
    buf: Vec<TraceRecord>,
    buf_pos: usize,
    hot_pos: usize,
}

impl<'a> ChainCursor<'a> {
    fn new(chain: &'a ShardChain, start: u64, end: u64) -> Self {
        ChainCursor {
            chain,
            start,
            end,
            seg: 0,
            chunk: 0,
            seq_off: 0,
            buf: Vec::new(),
            buf_pos: 0,
            hot_pos: 0,
        }
    }

    fn in_window(&self, r: &TraceRecord) -> bool {
        r.micros >= self.start && r.micros < self.end
    }

    /// Positions the cursor at its next in-window record and returns
    /// that record's arrival sequence; `None` once the chain is
    /// exhausted. O(1) when already positioned.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure — a sealed segment corrupted (or
    /// deleted) mid-analysis.
    fn peek(&mut self) -> Option<u64> {
        loop {
            if self.seg == self.chain.sealed.len() {
                while self.hot_pos < self.chain.hot.len() {
                    if self.in_window(&self.chain.hot[self.hot_pos]) {
                        return Some(self.chain.hot_seqs[self.hot_pos]);
                    }
                    self.hot_pos += 1;
                }
                return None;
            }
            while self.buf_pos < self.buf.len() {
                if self.in_window(&self.buf[self.buf_pos]) {
                    return Some(self.chain.sealed_seqs[self.seg][self.seq_off + self.buf_pos]);
                }
                self.buf_pos += 1;
            }
            self.seq_off += self.buf.len();
            self.buf = Vec::new();
            self.buf_pos = 0;
            let reader = &self.chain.sealed[self.seg];
            loop {
                if self.chunk == reader.chunk_count() {
                    self.seg += 1;
                    self.chunk = 0;
                    self.seq_off = 0;
                    break;
                }
                let meta = &reader.chunks()[self.chunk];
                if meta.records == 0 || !meta.overlaps(self.start, self.end) {
                    // Skipped chunks still consume their slice of the
                    // sequence sidecar.
                    self.seq_off += meta.records as usize;
                    self.chunk += 1;
                    continue;
                }
                self.buf = reader
                    .read_chunk(self.chunk)
                    .expect("sealed chunk must stay readable under a live view");
                self.chunk += 1;
                break;
            }
        }
    }

    /// Emits the record [`ChainCursor::peek`] just positioned at and
    /// steps past it. Must follow a `Some` peek.
    fn pop(&mut self, f: &mut dyn FnMut(&TraceRecord)) {
        if self.seg == self.chain.sealed.len() {
            f(&self.chain.hot[self.hot_pos]);
            self.hot_pos += 1;
        } else {
            f(&self.buf[self.buf_pos]);
            self.buf_pos += 1;
        }
    }
}

/// Replays every in-window record of `chains` in global arrival order.
/// One chain streams directly (the single-writer fast path: pipelined
/// chunk decode, no sequences consulted); two or more are k-way merged
/// by arrival sequence with a linear min-scan — chain counts are small.
fn for_each_merged(chains: &[ShardChain], start: u64, end: u64, f: &mut dyn FnMut(&TraceRecord)) {
    if let [chain] = chains {
        stream_records(&chain.sealed, start, end, f);
        for r in chain.hot.iter() {
            if r.micros >= start && r.micros < end {
                f(r);
            }
        }
        return;
    }
    let mut cursors: Vec<ChainCursor> = chains
        .iter()
        .map(|c| ChainCursor::new(c, start, end))
        .collect();
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if let Some(seq) = cursor.peek() {
                if best.is_none_or(|(s, _)| seq < s) {
                    best = Some((seq, i));
                }
            }
        }
        let Some((_, i)) = best else {
            return;
        };
        cursors[i].pop(f);
    }
}

/// A [`TraceView`] over everything a [`crate::LiveIngest`] (or a
/// [`crate::ShardedLiveIngest`]) has ingested at one instant: per
/// shard, the sealed on-disk segments plus a snapshot of the hot (not
/// yet sealed) records.
///
/// A `LiveView` is **stable**: the sealed segment files are immutable,
/// the hot tails are snapshotted behind [`Arc`]s at view time (the
/// ingest copies on its next write, never in place), and the
/// construction-pass products come from a copy-on-write snapshot of
/// the running [`nfstrace_core::index::PartialIndex`] state — so
/// queries answered mid-ingest keep answering identically while
/// records continue to flow in behind them. It answers the full
/// table/figure suite: the analysis layer is generic over
/// [`TraceView`], and this view's contract is the usual bit-identity
/// with an in-memory [`nfstrace_core::index::TraceIndex`] over the
/// same records — for a sharded ingest, over the *original* global
/// stream, reconstructed by merging chains on arrival sequence.
///
/// Record replays stream sealed chunks out-of-core: a single chain is
/// pipelined ([`stream_records`]) with the hot tail appended; multiple
/// chains are k-way merged by the per-segment sequence sidecars, one
/// decoded chunk per chain resident at a time.
#[derive(Debug)]
pub struct LiveView {
    chains: Vec<ShardChain>,
    /// This view's half-open time range.
    start: u64,
    end: u64,
    base: IndexBase,
    caches: ProductCaches,
    /// Where this view's (and its windows') `query.*` instruments
    /// live — inherited from the ingest that snapshotted it.
    registry: Registry,
}

impl LiveView {
    /// Assembles a single-chain snapshot view. `base` must be the
    /// finished construction products over exactly (sealed ++ hot)
    /// restricted to `[start, end)` — [`crate::LiveIngest::view`]
    /// maintains that running partial and hands in its snapshot, so
    /// building a view is O(snapshot), not a decode pass.
    pub(crate) fn assemble(
        chain: ShardChain,
        start: u64,
        end: u64,
        base: IndexBase,
        registry: &Registry,
    ) -> Self {
        Self::assemble_sharded(vec![chain], start, end, base, registry)
    }

    /// Assembles a view over any number of shard chains. With two or
    /// more chains, every chain must carry arrival sequences for all
    /// of its records and `base` must be the merged products over the
    /// union — [`crate::ShardedLiveIngest::view`]'s contract.
    pub(crate) fn assemble_sharded(
        chains: Vec<ShardChain>,
        start: u64,
        end: u64,
        base: IndexBase,
        registry: &Registry,
    ) -> Self {
        LiveView {
            chains,
            start,
            end,
            base,
            caches: ProductCaches::with_registry(registry),
            registry: registry.clone(),
        }
    }

    /// The shard chains behind this snapshot (one for a single-writer
    /// ingest).
    pub fn chains(&self) -> &[ShardChain] {
        &self.chains
    }

    /// The sealed segment readers behind this snapshot, across all
    /// chains.
    pub fn sealed(&self) -> Vec<Arc<StoreReader>> {
        self.chains
            .iter()
            .flat_map(|c| c.sealed.iter().cloned())
            .collect()
    }

    /// The hot (unsealed) records in this snapshot's range — windowed
    /// views yield only the hot records inside their window, consistent
    /// with [`LiveView::record_count`] and the replay stream. Across
    /// chains, in chain order (use the replay stream for global
    /// arrival order).
    pub fn hot_records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.chains.iter().flat_map(move |c| {
            c.hot
                .iter()
                .filter(|r| r.micros >= self.start && r.micros < self.end)
        })
    }

    /// Records in this view (sealed + hot, inside the range).
    pub fn record_count(&self) -> usize {
        self.base.len
    }
}

impl RecordStream for LiveView {
    /// A single chain: sealed chunks (skipping those outside the
    /// window, pipelined decode on multi-worker runs), then the hot
    /// tail. Multiple chains: k-way merge by arrival sequence.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure — a sealed segment corrupted (or
    /// deleted) mid-analysis.
    fn for_each_record(&self, f: &mut dyn FnMut(&TraceRecord)) {
        for_each_merged(&self.chains, self.start, self.end, f);
    }
}

impl TraceView for LiveView {
    fn len(&self) -> usize {
        self.base.len
    }

    fn summary(&self) -> &SummaryStats {
        &self.base.summary
    }

    fn hourly(&self) -> &HourlySeries {
        &self.base.hourly
    }

    fn names(&self) -> &NamePredictionReport {
        self.caches.names(self)
    }

    fn accesses(&self, window_ms: u64) -> Arc<AccessMap> {
        self.caches.accesses(&self.base.raw, window_ms)
    }

    fn runs(&self, window_ms: u64, opts: RunOptions) -> Arc<Vec<Run>> {
        self.caches.runs(&self.base.raw, window_ms, opts)
    }

    fn lifetime(&self, cfg: LifetimeConfig) -> Arc<LifetimeReport> {
        self.caches.lifetime(self, cfg)
    }

    fn weekday_lifetime(&self) -> Arc<LifetimeReport> {
        self.caches.weekday_lifetime(self)
    }

    fn swap_sweep(&self, windows_ms: &[u64]) -> Vec<SwapPoint> {
        nfstrace_core::reorder::swap_fraction_sweep(&self.base.raw, windows_ms)
    }

    /// A narrower snapshot sharing the chains (sealed readers and hot
    /// clones); its construction pass streams the window's chunks once,
    /// in merged order.
    ///
    /// # Panics
    ///
    /// On chunk read/decode failure (see
    /// [`RecordStream::for_each_record`] on this type).
    fn time_window(&self, start_micros: u64, end_micros: u64) -> LiveView {
        let start = start_micros.max(self.start);
        let end = end_micros.min(self.end).max(start);
        let mut partial = PartialIndex::new();
        for_each_merged(&self.chains, start, end, &mut |r| partial.observe(r));
        LiveView::assemble_sharded(
            self.chains.clone(),
            start,
            end,
            partial.finish(),
            &self.registry,
        )
    }

    fn sort_passes(&self) -> u64 {
        self.caches.sort_passes()
    }

    fn hierarchy_coverage(&self, bucket_micros: u64) -> Arc<Vec<CoveragePoint>> {
        self.caches.coverage(self, bucket_micros)
    }

    fn prepare(&self, requests: &[ReplayRequest]) {
        self.caches.prepare(self, requests);
    }

    fn decode_passes(&self) -> u64 {
        self.caches.decode_passes()
    }
}
