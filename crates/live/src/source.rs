//! Incremental record producers: the seam between "where records come
//! from" and the ingest loop.

use nfstrace_core::record::TraceRecord;
use nfstrace_core::sink::into_ok;
use nfstrace_net::pcap::CapturedPacket;
use nfstrace_sniffer::{Sniffer, SnifferStats};
use nfstrace_workload::SlicedWorkload;

/// An incremental producer of time-ordered trace records.
///
/// A source yields its stream in *batches*: each batch is internally
/// time-sorted and follows every previous batch in time, so the
/// concatenation of all batches is one time-ordered trace. Sources are
/// pull-driven — the ingest asks for the next batch when it has sunk
/// the previous one — which is what keeps the whole pipeline's resident
/// record memory bounded by one batch.
pub trait RecordSource {
    /// Appends the next batch to `out` (which the caller has cleared).
    /// Returns `false` once the stream is exhausted; a `true` return
    /// with an empty `out` is legal (e.g. a capture batch whose records
    /// are all still awaiting replies).
    fn next_batch(&mut self, out: &mut Vec<TraceRecord>) -> bool;
}

/// A [`RecordSource`] over the time-sliced workload generator: each
/// batch is one simulated time slice of the merged CAMPUS or EECS
/// trace (see [`SlicedWorkload`]) — bit-identical, concatenated, to
/// the batch generator's output.
#[derive(Debug)]
pub struct SlicedWorkloadSource {
    inner: SlicedWorkload,
}

impl SlicedWorkloadSource {
    /// Wraps a sliced generator.
    pub fn new(inner: SlicedWorkload) -> Self {
        SlicedWorkloadSource { inner }
    }

    /// The generator, for progress inspection
    /// ([`SlicedWorkload::emitted_to`],
    /// [`SlicedWorkload::peak_resident_records`]).
    pub fn generator(&self) -> &SlicedWorkload {
        &self.inner
    }
}

impl RecordSource for SlicedWorkloadSource {
    fn next_batch(&mut self, out: &mut Vec<TraceRecord>) -> bool {
        into_ok(self.inner.next_slice_into(out))
    }
}

/// A [`RecordSource`] over a packet feed: each batch feeds a bounded
/// number of packets to the passive [`Sniffer`] and drains the records
/// that are final ([`Sniffer::drain_ready`]) — so the capture is never
/// buffered whole. When the packet feed ends, the sniffer is finished
/// (expiring outstanding calls) and the tail drained.
pub struct SnifferSource<I> {
    sniffer: Option<Sniffer>,
    packets: I,
    packets_per_batch: usize,
    stats: Option<SnifferStats>,
}

impl<I> std::fmt::Debug for SnifferSource<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnifferSource")
            .field("live", &self.sniffer.is_some())
            .field("packets_per_batch", &self.packets_per_batch)
            .finish_non_exhaustive()
    }
}

impl<I: Iterator<Item = CapturedPacket>> SnifferSource<I> {
    /// Wraps a packet iterator; each batch observes up to
    /// `packets_per_batch` packets.
    pub fn new(packets: I, packets_per_batch: usize) -> Self {
        SnifferSource {
            sniffer: Some(Sniffer::new()),
            packets,
            packets_per_batch: packets_per_batch.max(1),
            stats: None,
        }
    }

    /// Capture statistics — available once the source is exhausted.
    pub fn stats(&self) -> Option<SnifferStats> {
        self.stats
    }
}

impl<I: Iterator<Item = CapturedPacket>> RecordSource for SnifferSource<I> {
    fn next_batch(&mut self, out: &mut Vec<TraceRecord>) -> bool {
        let Some(sniffer) = self.sniffer.as_mut() else {
            return false;
        };
        let mut fed = 0;
        while fed < self.packets_per_batch {
            match self.packets.next() {
                Some(p) => {
                    sniffer.observe(&p);
                    fed += 1;
                }
                None => break,
            }
        }
        if fed == 0 {
            // Feed exhausted: final drain (expires outstanding calls).
            let (tail, stats) = self.sniffer.take().expect("still live").finish();
            self.stats = Some(stats);
            out.extend(tail);
            return !out.is_empty();
        }
        // Appending hand-off: the ready records land straight in the
        // caller's batch buffer, with no per-poll Vec.
        sniffer.drain_ready_into(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_workload::{CampusConfig, CampusWorkload};

    #[test]
    fn sliced_source_replays_the_batch_trace() {
        let cfg = CampusConfig {
            users: 2,
            duration_micros: nfstrace_core::time::HOUR * 8,
            seed: 3,
            ..CampusConfig::default()
        };
        let batch = CampusWorkload::new(cfg.clone()).generate_with_threads(1);
        let mut src =
            SlicedWorkloadSource::new(SlicedWorkload::campus(cfg, nfstrace_core::time::HOUR, 1));
        let mut all = Vec::new();
        let mut buf = Vec::new();
        while {
            buf.clear();
            src.next_batch(&mut buf)
        } {
            all.extend(buf.iter().cloned());
        }
        assert_eq!(all, batch);
    }
}
