//! The sharded multi-writer ingest: one globally ordered record
//! stream, split by client across N independent [`LiveIngest`] shards.
//!
//! The paper's collector is one passive tap on one network segment —
//! a single totally ordered stream. At high packet rates a single
//! writer becomes the bottleneck: every record funnels through one hot
//! segment, one running partial, one store writer.
//! [`ShardedLiveIngest`] splits the stream **by client** (a stable
//! hash of the record's client id), so each shard owns its own hot
//! segment, rotation clock, and on-disk segment chain under
//! `root/shard-NNN/`, and batch ingest fans out across worker threads
//! ([`nfstrace_core::parallel`]).
//!
//! Splitting destroys the one thing the analysis suite depends on: the
//! global interleave, *including ties* — records with equal timestamps
//! from different clients land on different shards, and nothing in the
//! records themselves says who came first. So the router stamps every
//! record with a dense **global arrival sequence** before fan-out;
//! shards persist the sequences in per-segment sidecars
//! ([`crate::seqfile`]); and [`ShardedLiveIngest::view`] reconstructs
//! the original stream exactly by k-way merging the shard chains on
//! those sequences, while the aggregate products come from
//! [`nfstrace_core::index::PartialIndex::merge`] over the shards'
//! running partials. The invariant — pinned by property tests and the
//! CI live-smoke job — is that the full analysis suite over a merged
//! view is **byte-identical** to a single-writer daemon's and to the
//! batch pipeline's, for any shard count.

use crate::ingest::{LiveConfig, LiveIngest, LiveSummary};
use crate::source::RecordSource;
use crate::view::LiveView;
use nfstrace_core::index::{IndexBase, PartialIndex};
use nfstrace_core::record::TraceRecord;
use nfstrace_core::sink::RecordSink;
use nfstrace_store::segments::{open_shard_catalogs, shard_dir_name};
use nfstrace_store::{Result, StoreError};
use std::path::Path;
use std::sync::Mutex;

/// The shard-count manifest file a sharded root directory carries.
pub const SHARD_MANIFEST: &str = "SHARDS";

/// The shard a client id routes to: a splitmix64-style mix so
/// consecutive client ids spread evenly, reduced by fixed-point
/// multiply (uses the mix's high bits, which scatter better than its
/// low bits for near-identical IPs). Stable across runs and restarts —
/// the same client always lands on the same shard, which is what keeps
/// each shard's stream time-ordered and most files single-shard (cheap
/// to merge).
pub fn shard_for_client(client: u32, shards: usize) -> usize {
    let mut x = u64::from(client).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    ((u128::from(x) * shards as u128) >> 64) as usize
}

/// What [`ShardedLiveIngest::finish`] reports.
#[derive(Debug, Clone)]
pub struct ShardedSummary {
    /// Per-shard summaries, in shard order. Each shard's
    /// `peak_hot_records` is its own bounded hot tail — the sharded
    /// daemon's resident-record peak is their sum at worst.
    pub shards: Vec<LiveSummary>,
    /// Sealed segments across all shards.
    pub segments: usize,
    /// Records ingested across all shards, over the daemon's whole
    /// life.
    pub total_records: u64,
    /// Largest single batch passed to
    /// [`ShardedLiveIngest::ingest_batch`] (directly or via
    /// [`ShardedLiveIngest::run`]).
    pub peak_batch_records: usize,
}

/// N independent [`LiveIngest`] writers behind one router; see the
/// module docs for the design.
///
/// The root directory holds a [`SHARD_MANIFEST`] file pinning the
/// shard count plus one `shard-NNN/` segment directory per shard
/// ([`nfstrace_store::segments::shard_dir_name`]). Reopening reads the
/// manifest, resumes every shard after its last sealed segment, and
/// continues stamping arrival sequences past the highest one on disk.
/// A crash loses at most each shard's unsealed hot tail — sequence
/// holes from a lost tail are fine, the merge only needs per-shard
/// increasing, globally unique sequences.
#[derive(Debug)]
pub struct ShardedLiveIngest {
    config: LiveConfig,
    shards: Vec<LiveIngest>,
    next_seq: u64,
    last_micros: u64,
    any_ingested: bool,
    total_records: u64,
    peak_batch_records: usize,
    /// Bumped on every batch; keys the merged-snapshot cache.
    generation: u64,
    /// The last merged [`IndexBase`] and the generation it was built
    /// at — repeated [`ShardedLiveIngest::view`] calls between batches
    /// reuse it instead of re-merging.
    base_cache: Mutex<Option<(u64, IndexBase)>>,
}

impl ShardedLiveIngest {
    /// Starts a fresh sharded ingest: `config.dir` is the root,
    /// `config`'s rotation thresholds and store layout apply to every
    /// shard, and `shards` is pinned into the manifest.
    /// `config.track_seqs` is implied — every shard tracks arrival
    /// sequences.
    ///
    /// # Errors
    ///
    /// If `shards` is zero, the root already holds a manifest (reopen
    /// with [`ShardedLiveIngest::open`]), any shard directory is
    /// non-empty, or on I/O failure.
    pub fn create(config: LiveConfig, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(StoreError::Format("shard count must be at least 1".into()));
        }
        let root = config.dir.clone();
        if root.join(SHARD_MANIFEST).exists() {
            return Err(StoreError::Format(format!(
                "{} already holds a sharded ingest; use ShardedLiveIngest::open to resume",
                root.display()
            )));
        }
        open_shard_catalogs(&root, shards)?;
        let writers = (0..shards)
            .map(|i| LiveIngest::create(Self::shard_config(&config, i)))
            .collect::<Result<Vec<_>>>()?;
        std::fs::write(root.join(SHARD_MANIFEST), format!("{shards}\n"))?;
        Ok(Self::assemble(config, writers))
    }

    /// Reopens a sharded root directory at the shard count its
    /// manifest pins, resuming every shard after its last sealed
    /// segment. Sequence stamping continues past the highest sealed
    /// sequence on any shard.
    ///
    /// # Errors
    ///
    /// On a missing or unparseable manifest, shard directories
    /// exceeding the manifest count, or any shard's open failure.
    pub fn open(config: LiveConfig) -> Result<Self> {
        let root = config.dir.clone();
        let shards = Self::read_manifest(&root)?;
        open_shard_catalogs(&root, shards)?;
        let writers = (0..shards)
            .map(|i| LiveIngest::open(Self::shard_config(&config, i)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::assemble(config, writers))
    }

    fn shard_config(config: &LiveConfig, shard: usize) -> LiveConfig {
        LiveConfig {
            dir: config.dir.join(shard_dir_name(shard)),
            track_seqs: true,
            ..config.clone()
        }
    }

    fn read_manifest(root: &Path) -> Result<usize> {
        let path = root.join(SHARD_MANIFEST);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| StoreError::Format(format!("shard manifest {}: {e}", path.display())))?;
        let count: usize = text.trim().parse().map_err(|_| {
            StoreError::Format(format!(
                "shard manifest {} is unparseable: {text:?}",
                path.display()
            ))
        })?;
        if count == 0 {
            return Err(StoreError::Format(format!(
                "shard manifest {} pins zero shards",
                path.display()
            )));
        }
        Ok(count)
    }

    fn assemble(config: LiveConfig, shards: Vec<LiveIngest>) -> Self {
        let next_seq = shards.iter().map(LiveIngest::next_seq).max().unwrap_or(0);
        let last_micros = shards
            .iter()
            .map(LiveIngest::last_micros)
            .max()
            .unwrap_or(0);
        let any_ingested = shards.iter().any(LiveIngest::any_ingested);
        let total_records = shards.iter().map(LiveIngest::total_records).sum();
        ShardedLiveIngest {
            config,
            shards,
            next_seq,
            last_micros,
            any_ingested,
            total_records,
            peak_batch_records: 0,
            generation: 0,
            base_cache: Mutex::new(None),
        }
    }

    /// Ingests one time-ordered batch: validates the global stream
    /// contract, stamps each record with the next arrival sequence,
    /// partitions by [`shard_for_client`], and drives all shards in
    /// parallel. The batch either fully precedes the error or is fully
    /// applied — the order check runs before any shard is touched.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfOrder`] on a time-travelling record
    /// (checked against everything ingested so far, across shards),
    /// or any shard's ingest error.
    pub fn ingest_batch(&mut self, records: &[TraceRecord]) -> Result<()> {
        let mut last = self.last_micros;
        let mut any = self.any_ingested;
        for r in records {
            if any && r.micros < last {
                return Err(StoreError::OutOfOrder {
                    prev: last,
                    next: r.micros,
                });
            }
            last = r.micros;
            any = true;
        }
        if records.is_empty() {
            return Ok(());
        }
        self.peak_batch_records = self.peak_batch_records.max(records.len());
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<(u64, TraceRecord)>> = vec![Vec::new(); n];
        for (i, r) in records.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            per_shard[shard_for_client(r.client, n)].push((seq, r.clone()));
        }
        let threads = nfstrace_core::parallel::threads();
        let results = nfstrace_core::parallel::run_sharded_mut(
            &mut self.shards,
            threads,
            |shard, ingest| -> Result<()> {
                // One batch-latency sample per shard per batch; shards
                // share the registry, so these merge into one
                // `live.batch_micros` distribution.
                let _span = nfstrace_telemetry::span!(ingest.metrics.batch_micros);
                for (seq, r) in &per_shard[shard] {
                    ingest.ingest_with_seq(r, *seq)?;
                }
                Ok(())
            },
        );
        self.next_seq += records.len() as u64;
        self.total_records += records.len() as u64;
        self.last_micros = last;
        self.any_ingested = true;
        self.generation += 1;
        results.into_iter().collect()
    }

    /// Pumps `source` to exhaustion through
    /// [`ShardedLiveIngest::ingest_batch`].
    ///
    /// # Errors
    ///
    /// Propagates the first batch's error.
    pub fn run<S: RecordSource + ?Sized>(&mut self, source: &mut S) -> Result<()> {
        let mut batch = Vec::new();
        loop {
            batch.clear();
            if !source.next_batch(&mut batch) {
                return Ok(());
            }
            self.ingest_batch(&batch)?;
        }
    }

    /// Snapshots a stable merged [`LiveView`] over everything every
    /// shard has ingested so far — the full analysis suite answers
    /// over it byte-identically to a single-writer daemon over the
    /// same stream. The merged products are cached per batch
    /// generation; between batches this is a handle clone.
    pub fn view(&self) -> LiveView {
        let _span = nfstrace_telemetry::span!(&self.config.registry, "live.snapshot_micros");
        let base = {
            let mut cache = self.base_cache.lock().expect("snapshot cache poisoned");
            match cache.as_ref() {
                Some((generation, base)) if *generation == self.generation => base.clone(),
                _ => {
                    let base = if self.shards.len() == 1 {
                        self.shards[0].snapshot_base()
                    } else {
                        PartialIndex::merge(self.shards.iter().map(LiveIngest::snapshot_partial))
                    };
                    *cache = Some((self.generation, base.clone()));
                    base
                }
            }
        };
        let chains = self.shards.iter().map(LiveIngest::chain).collect();
        LiveView::assemble_sharded(chains, 0, u64::MAX, base, &self.config.registry)
    }

    /// Seals every shard's trailing hot segment and reports totals.
    /// The root directory (manifest + shard subdirectories) is the
    /// durable product; reopen it with [`ShardedLiveIngest::open`].
    ///
    /// # Errors
    ///
    /// On any shard's final seal failure.
    pub fn finish(self) -> Result<ShardedSummary> {
        let shards = self
            .shards
            .into_iter()
            .map(LiveIngest::finish)
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedSummary {
            segments: shards.iter().map(|s| s.segments).sum(),
            total_records: shards.iter().map(|s| s.total_records).sum(),
            peak_batch_records: self.peak_batch_records,
            shards,
        })
    }

    /// The shard writers, in shard order — read-only access to
    /// per-shard observables (`hot_len`, `peak_hot_records`, …).
    pub fn shards(&self) -> &[LiveIngest] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records ingested so far, across shards (sealed + hot).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Sealed segments so far, across shards.
    pub fn sealed_segments(&self) -> usize {
        self.shards.iter().map(LiveIngest::sealed_segments).sum()
    }

    /// Records resident in hot tails right now, across shards.
    pub fn hot_len(&self) -> usize {
        self.shards.iter().map(LiveIngest::hot_len).sum()
    }

    /// Largest single batch passed to
    /// [`ShardedLiveIngest::ingest_batch`] (directly or via
    /// [`ShardedLiveIngest::run`]).
    pub fn peak_batch_records(&self) -> usize {
        self.peak_batch_records
    }

    /// The router configuration (the root directory and the per-shard
    /// knobs).
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }
}

impl RecordSink for ShardedLiveIngest {
    type Err = StoreError;

    fn push_record(&mut self, record: TraceRecord) -> Result<()> {
        self.ingest_batch(std::slice::from_ref(&record))
    }
}
