//! Bounded-memory **live ingest**: consume an NFS trace as it happens,
//! rotate it through durable on-disk segments, and answer the full
//! analysis suite at any instant mid-ingest.
//!
//! The paper's collector ran *continuously for months*, passively
//! appending anonymized records as traffic flowed. Everything in this
//! workspace before this crate was batch: generate or sniff a whole
//! trace, then store it, then analyze it. `nfstrace-live` is the
//! online shape, built from three pieces:
//!
//! - **[`RecordSource`]** — an incremental, pull-driven producer of
//!   time-ordered record batches. Two adapters ship:
//!   [`SlicedWorkloadSource`] drives the time-sliced workload
//!   generator ([`nfstrace_workload::SlicedWorkload`] — every user's
//!   simulation advanced one bounded slice at a time, k-way merged
//!   slice by slice), and [`SnifferSource`] feeds a packet capture
//!   through the passive sniffer's incremental
//!   `drain_ready` API, so neither path ever buffers a whole trace.
//! - **[`LiveIngest`]** — the daemon loop. Records accumulate in a
//!   *hot segment* (a pending [`nfstrace_store::StoreWriter`] chunk
//!   stream plus a running
//!   [`nfstrace_core::index::PartialIndex`]); crossing a record-count
//!   or time-span threshold **seals** the hot segment into an
//!   immutable store file named by ordinal
//!   ([`nfstrace_store::segments`]). A stopped ingest reopens its
//!   directory and appends where it left off.
//! - **[`LiveView`]** — a stable snapshot implementing
//!   [`nfstrace_core::index::TraceView`] over *sealed + hot*, taken at
//!   any instant mid-ingest. Every table and figure in the repro suite
//!   runs against it unchanged, and its products are bit-identical to
//!   an in-memory index over the same records.
//! - **[`ShardedLiveIngest`]** — the multi-writer shape: the stream
//!   splits by client hash across N independent [`LiveIngest`] shards
//!   (each with its own hot segment, rotation clock, and `shard-NNN/`
//!   segment directory), the router stamps every record with a global
//!   arrival sequence (persisted in [`seqfile`] sidecars), and the
//!   merged [`LiveView`] k-way merges the shards back into the exact
//!   original stream — the analysis suite over it stays byte-identical
//!   to a single-writer daemon and to the batch pipeline, for any
//!   shard count.
//!
//! # The bounded-memory contract
//!
//! Peak resident record memory across the whole pipeline is
//! `O(slice) + O(rotation threshold)` — one source batch, plus the hot
//! tail, plus a decoded chunk or two during replays — never
//! `O(trace)`. The `live` bench bin asserts this shape and records the
//! observed peaks in `BENCH_pipeline.json`.
//!
//! # Example: ingest a workload live, query it mid-stream
//!
//! ```
//! use nfstrace_core::index::TraceView;
//! use nfstrace_core::time::HOUR;
//! use nfstrace_live::{LiveConfig, LiveIngest, SlicedWorkloadSource};
//! use nfstrace_workload::{CampusConfig, SlicedWorkload};
//!
//! let dir = std::env::temp_dir().join(format!("nfstrace-live-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! let mut ingest = LiveIngest::create(LiveConfig {
//!     rotate_records: 2_000,
//!     ..LiveConfig::new(&dir)
//! })
//! .unwrap();
//!
//! let config = CampusConfig { users: 2, duration_micros: 8 * HOUR, ..CampusConfig::default() };
//! let mut source = SlicedWorkloadSource::new(SlicedWorkload::campus(config, HOUR, 1));
//! ingest.run(&mut source).unwrap();
//!
//! // Mid-ingest (here: post-run, pre-finish) queries see everything so far.
//! let view = ingest.view();
//! assert_eq!(view.len() as u64, ingest.total_records());
//! let _summary = view.summary();
//!
//! let summary = ingest.finish().unwrap();
//! assert!(summary.peak_hot_records as u64 <= 2_000);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod ingest;
pub mod sharded;
pub mod source;
pub mod view;

/// Arrival-sequence sidecars now live in the store crate (the
/// compactor merges them); re-exported here for existing users.
pub use nfstrace_store::seqfile;

pub use ingest::{LiveConfig, LiveIngest, LiveSummary};
pub use sharded::{shard_for_client, ShardedLiveIngest, ShardedSummary, SHARD_MANIFEST};
pub use source::{RecordSource, SlicedWorkloadSource, SnifferSource};
pub use view::{LiveView, ShardChain};
