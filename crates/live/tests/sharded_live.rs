//! End-to-end sharded ingest: shard layout, sequence sidecars,
//! manifest guards, reopen — against batch-path oracles.

use nfstrace_core::index::{RecordStream, TraceIndex, TraceView};
use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_core::time::{DAY, HOUR};
use nfstrace_live::{
    seqfile, shard_for_client, LiveConfig, LiveIngest, ShardedLiveIngest, SlicedWorkloadSource,
    SHARD_MANIFEST,
};
use nfstrace_store::segments::shard_dir_name;
use nfstrace_store::StoreConfig;
use nfstrace_workload::{CampusConfig, CampusWorkload, SlicedWorkload};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nfstrace-sharded-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn campus_cfg() -> CampusConfig {
    CampusConfig {
        users: 4,
        duration_micros: DAY,
        seed: 42,
        ..CampusConfig::default()
    }
}

fn sharded_cfg(dir: &std::path::Path) -> LiveConfig {
    LiveConfig {
        store: StoreConfig {
            target_chunk_bytes: 64 << 10,
            ..StoreConfig::default()
        },
        rotate_records: 4_000,
        rotate_micros: 6 * HOUR,
        ..LiveConfig::new(dir)
    }
}

fn assert_views_agree<A: TraceView, B: TraceView>(a: &A, b: &B, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: len");
    assert_eq!(a.summary(), b.summary(), "{ctx}: summary");
    assert_eq!(a.hourly(), b.hourly(), "{ctx}: hourly");
    assert_eq!(
        a.accesses(10).as_ref(),
        b.accesses(10).as_ref(),
        "{ctx}: accesses"
    );
    assert_eq!(
        a.runs(10, Default::default()).as_ref(),
        b.runs(10, Default::default()).as_ref(),
        "{ctx}: runs"
    );
    assert_eq!(a.names(), b.names(), "{ctx}: names");
}

/// The headline invariant, across shard counts: a sharded daemon over
/// the day-long campus workload answers the suite identically to the
/// in-memory index over the batch trace, and its merged replay is the
/// batch stream record for record.
#[test]
fn sharded_ingest_equals_batch_across_shard_counts() {
    let batch = CampusWorkload::new(campus_cfg()).generate_with_threads(1);
    for shards in [1usize, 2, 4] {
        let dir = tmpdir(&format!("counts-{shards}"));
        let mut ingest = ShardedLiveIngest::create(sharded_cfg(&dir), shards).expect("create");
        let mut source = SlicedWorkloadSource::new(SlicedWorkload::campus(campus_cfg(), HOUR, 2));
        ingest.run(&mut source).expect("run");
        assert_eq!(ingest.total_records(), batch.len() as u64);

        // Mid-ingest (pre-finish) merged view: replay + products.
        let view = ingest.view();
        let mut back = Vec::new();
        view.for_each_record(&mut |r| back.push(r.clone()));
        assert_eq!(back, batch, "{shards} shards: merged replay");
        let mem = TraceIndex::new(batch.clone());
        assert_views_agree(&view, &mem, &format!("{shards} shards vs in-memory"));

        // Every record landed on the shard its client hashes to.
        for (i, shard) in ingest.shards().iter().enumerate() {
            let mut shard_view = Vec::new();
            shard
                .view()
                .for_each_record(&mut |r| shard_view.push(r.client));
            assert!(
                shard_view.iter().all(|&c| shard_for_client(c, shards) == i),
                "shard {i} holds a foreign client"
            );
        }

        let summary = ingest.finish().expect("finish");
        assert_eq!(summary.shards.len(), shards);
        assert_eq!(summary.total_records, batch.len() as u64);
        // Exactly the shards the clients hash to saw records.
        let expected_used: std::collections::BTreeSet<usize> = batch
            .iter()
            .map(|r| shard_for_client(r.client, shards))
            .collect();
        let used: std::collections::BTreeSet<usize> = summary
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.total_records > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(used, expected_used, "{shards} shards: shard occupancy");
        if shards > 1 {
            assert!(
                used.len() > 1,
                "the campus clients must actually spread across {shards} shards"
            );
        }

        // Layout: manifest + shard-NNN dirs, each segment with its
        // sequence sidecar.
        assert!(dir.join(SHARD_MANIFEST).exists());
        for i in 0..shards {
            let shard_dir = dir.join(shard_dir_name(i));
            for entry in std::fs::read_dir(&shard_dir).expect("shard dir") {
                let path = entry.expect("entry").path();
                if path.extension().is_some_and(|e| e == "nfseg") {
                    let seqs = seqfile::read_sidecar(&path).expect("sealed segment sidecar");
                    assert!(!seqs.is_empty());
                    assert!(
                        seqs.windows(2).all(|w| w[0] < w[1]),
                        "sidecar seqs increase"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn reopen_resumes_sequences_and_appends_across_shards() {
    let dir = tmpdir("reopen");
    let batch = CampusWorkload::new(campus_cfg()).generate_with_threads(1);

    // First run: half the day, then stop (sealing every shard's tail).
    let mut first = ShardedLiveIngest::create(sharded_cfg(&dir), 3).expect("create");
    let mut sliced = SlicedWorkload::campus(campus_cfg(), 2 * HOUR, 1);
    let mut batch_buf: Vec<TraceRecord> = Vec::new();
    while sliced.emitted_to() < 12 * HOUR {
        batch_buf.clear();
        if !sliced.next_slice_into(&mut batch_buf).expect("slice") {
            break;
        }
        first.ingest_batch(&batch_buf).expect("ingest");
    }
    let stopped_at = sliced.emitted_to();
    let first_total = first.total_records();
    first.finish().expect("finish first");

    // Second run: reopen (shard count comes from the manifest), verify
    // the resumed view, keep ingesting the same stream.
    let mut second = ShardedLiveIngest::open(sharded_cfg(&dir)).expect("reopen");
    assert_eq!(second.shard_count(), 3);
    assert_eq!(second.total_records(), first_total);
    let so_far: Vec<TraceRecord> = batch
        .iter()
        .filter(|r| r.micros < stopped_at)
        .cloned()
        .collect();
    assert_views_agree(
        &second.view(),
        &TraceIndex::new(so_far),
        "reopened sharded view",
    );
    loop {
        batch_buf.clear();
        if !sliced.next_slice_into(&mut batch_buf).expect("slice") {
            break;
        }
        second.ingest_batch(&batch_buf).expect("ingest");
    }
    let view = second.view();
    let mut back = Vec::new();
    view.for_each_record(&mut |r| back.push(r.clone()));
    assert_eq!(back, batch, "stop+reopen must reproduce the batch stream");
    second.finish().expect("finish second");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_and_order_guards() {
    let dir = tmpdir("guards");
    let mut ingest = ShardedLiveIngest::create(sharded_cfg(&dir), 2).expect("create");
    let r = |micros| TraceRecord::new(micros, Op::Read, FileId(1));
    ingest
        .ingest_batch(&[r(1000), r(1000), r(2000)])
        .expect("in order");
    // A time-travelling batch is rejected before touching any shard.
    assert!(matches!(
        ingest.ingest_batch(&[r(1999)]),
        Err(nfstrace_store::StoreError::OutOfOrder { .. })
    ));
    assert_eq!(ingest.total_records(), 3);
    ingest.finish().expect("finish");

    // Create over an existing sharded root must refuse.
    assert!(ShardedLiveIngest::create(sharded_cfg(&dir), 2).is_err());
    // Reopen ignores the caller's count and uses the manifest; a
    // manifest pinning fewer shards than exist on disk is rejected.
    std::fs::write(dir.join(SHARD_MANIFEST), "1\n").expect("shrink manifest");
    assert!(ShardedLiveIngest::open(sharded_cfg(&dir)).is_err());
    std::fs::write(dir.join(SHARD_MANIFEST), "2\n").expect("restore manifest");
    ShardedLiveIngest::open(sharded_cfg(&dir)).expect("open resumes");
    // A garbage or missing manifest is an error, not a guess.
    std::fs::write(dir.join(SHARD_MANIFEST), "two\n").expect("garbage manifest");
    assert!(ShardedLiveIngest::open(sharded_cfg(&dir)).is_err());
    std::fs::remove_file(dir.join(SHARD_MANIFEST)).expect("drop manifest");
    assert!(ShardedLiveIngest::open(sharded_cfg(&dir)).is_err());
    assert!(ShardedLiveIngest::create(sharded_cfg(&dir), 0).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sequence_stamping_guards_and_plain_ingest_stays_sidecar_free() {
    // A tracked single writer self-stamps dense sequences and resumes
    // past them on reopen.
    let dir = tmpdir("selfstamp");
    let tracked = |dir: &std::path::Path| LiveConfig {
        rotate_records: 4,
        track_seqs: true,
        ..LiveConfig::new(dir)
    };
    let mut ingest = LiveIngest::create(tracked(&dir)).expect("create");
    for i in 0..10u64 {
        ingest
            .ingest(&TraceRecord::new(i * 1000, Op::Read, FileId(i % 3)))
            .expect("ingest");
    }
    assert_eq!(ingest.next_seq(), 10);
    // Explicit sequences must keep increasing.
    assert!(ingest
        .ingest_with_seq(&TraceRecord::new(20_000, Op::Read, FileId(1)), 5)
        .is_err());
    ingest.finish().expect("finish");
    let reopened = LiveIngest::open(tracked(&dir)).expect("reopen tracked");
    assert_eq!(reopened.next_seq(), 10);
    drop(reopened);
    // A non-tracking reopen of the same directory still works — the
    // sidecars are invisible to the plain path.
    LiveIngest::open(LiveConfig::new(&dir)).expect("reopen untracked");
    std::fs::remove_dir_all(&dir).ok();

    // The default single-writer ingest writes no sidecars (its segment
    // directory stays byte-identical to pre-sharding layouts), and
    // explicit sequences without tracking are rejected.
    let dir = tmpdir("plain");
    let mut plain = LiveIngest::create(LiveConfig {
        rotate_records: 4,
        ..LiveConfig::new(&dir)
    })
    .expect("create plain");
    assert!(plain
        .ingest_with_seq(&TraceRecord::new(0, Op::Read, FileId(1)), 0)
        .is_err());
    for i in 0..10u64 {
        plain
            .ingest(&TraceRecord::new(i * 1000, Op::Read, FileId(1)))
            .expect("ingest");
    }
    plain.finish().expect("finish");
    assert!(
        std::fs::read_dir(&dir).expect("read dir").all(|e| {
            let name = e.expect("entry").file_name();
            !name.to_string_lossy().ends_with(".nfseq")
        }),
        "plain ingest must not write sequence sidecars"
    );
    std::fs::remove_dir_all(&dir).ok();
}
