//! Property tests: live ingest ≡ batch, for arbitrary record streams ×
//! batch (slice) lengths × rotation thresholds × worker counts —
//! byte-identical segment files and identical `TraceView` products.

use nfstrace_core::index::{RecordStream, TraceIndex, TraceView};
use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_core::runs::RunOptions;
use nfstrace_live::{LiveConfig, LiveIngest, RecordSource, ShardedLiveIngest};
use nfstrace_store::{StoreConfig, StoreIndex};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2_000_000_000,
        0usize..Op::ALL.len(),
        0u64..200,
        0u64..(1 << 30),
        0u32..70_000,
        proptest::option::of("[a-zA-Z0-9._#~ %=-]{1,16}"),
    )
        .prop_map(|(micros, op_idx, fh, offset, count, name)| {
            let mut r = TraceRecord::new(micros, Op::ALL[op_idx], FileId(fh));
            r.reply_micros = micros.wrapping_add(u64::from(count) % 997);
            r.client = (fh % 31) as u32;
            r.xid = fh as u32;
            r.offset = offset;
            r.count = count;
            r.ret_count = count / 2;
            r.name = name;
            r
        })
}

/// A [`RecordSource`] replaying a fixed record vector in fixed-size
/// batches — the arbitrary-slice-length stand-in.
struct ChunkedSource {
    records: Vec<TraceRecord>,
    at: usize,
    batch: usize,
}

impl RecordSource for ChunkedSource {
    fn next_batch(&mut self, out: &mut Vec<TraceRecord>) -> bool {
        if self.at >= self.records.len() {
            return false;
        }
        let end = (self.at + self.batch).min(self.records.len());
        out.extend_from_slice(&self.records[self.at..end]);
        self.at = end;
        true
    }
}

fn tmpdir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("nfstrace-live-proptests")
        .join(format!("{tag}-{}-{case}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn ingest_all(
    dir: &std::path::Path,
    records: &[TraceRecord],
    batch: usize,
    rotate_records: u64,
    rotate_micros: u64,
    chunk_bytes: usize,
) -> nfstrace_live::LiveSummary {
    ingest_all_compacting(
        dir,
        records,
        batch,
        rotate_records,
        rotate_micros,
        chunk_bytes,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn ingest_all_compacting(
    dir: &std::path::Path,
    records: &[TraceRecord],
    batch: usize,
    rotate_records: u64,
    rotate_micros: u64,
    chunk_bytes: usize,
    compaction: Option<nfstrace_store::CompactionPolicy>,
) -> nfstrace_live::LiveSummary {
    let mut ingest = LiveIngest::create(LiveConfig {
        dir: dir.to_path_buf(),
        store: StoreConfig {
            target_chunk_bytes: chunk_bytes,
            ..StoreConfig::default()
        },
        rotate_records,
        rotate_micros,
        track_seqs: false,
        compaction,
        registry: Default::default(),
    })
    .expect("create ingest");
    let mut source = ChunkedSource {
        records: records.to_vec(),
        at: 0,
        batch,
    };
    ingest.run(&mut source).expect("run");
    ingest.finish().expect("finish")
}

fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| {
            let e = e.expect("entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read file"),
            )
        })
        .collect();
    out.sort();
    out
}

proptest! {
    /// For any record stream, batch length, rotation thresholds, and
    /// worker count: the segment files are byte-identical to a
    /// reference run (batching and threading must not leak into the
    /// bytes), the merged segment index equals the in-memory index,
    /// and a mid-stream live view equals the index over its prefix.
    #[test]
    fn live_ingest_equals_batch(
        mut records in proptest::collection::vec(arb_record(), 1..250),
        batch in 1usize..97,
        rotate_records in 8u64..120,
        rotate_micros in 1_000_000u64..2_000_000_000,
        chunk_bytes in 64usize..4096,
        threads in 1usize..5,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);

        // Reference: one-record batches, worker count 1.
        let ref_dir = tmpdir("ref", case);
        ingest_all(&ref_dir, &records, 1, rotate_records, rotate_micros, chunk_bytes);
        let reference = dir_bytes(&ref_dir);

        // Same stream, arbitrary batching: identical bytes on disk.
        let dir = tmpdir("case", case);
        let summary = ingest_all(&dir, &records, batch, rotate_records, rotate_micros, chunk_bytes);
        prop_assert_eq!(dir_bytes(&dir), reference);
        prop_assert_eq!(summary.total_records, records.len() as u64);
        prop_assert!(summary.peak_hot_records as u64 <= rotate_records);

        // The merged segment index equals the in-memory index — with
        // the construction pass run at an arbitrary worker count.
        let readers: Vec<_> = nfstrace_store::SegmentCatalog::open(&dir)
            .expect("catalog")
            .paths()
            .into_iter()
            .map(|p| std::sync::Arc::new(nfstrace_store::StoreReader::open(p).expect("open")))
            .collect();
        let merged = StoreIndex::from_readers_with_threads(readers, threads).expect("index");
        let mut back = Vec::new();
        merged.for_each_record(&mut |r| back.push(r.clone()));
        prop_assert_eq!(&back, &records);

        let mem = TraceIndex::new(records.clone());
        prop_assert_eq!(TraceView::len(&merged), TraceView::len(&mem));
        prop_assert_eq!(merged.summary(), mem.summary());
        prop_assert_eq!(merged.hourly(), mem.hourly());
        prop_assert_eq!(merged.accesses(7).as_ref(), mem.accesses(7).as_ref());
        prop_assert_eq!(
            merged.runs(7, RunOptions::default()).as_ref(),
            mem.runs(7, RunOptions::default()).as_ref()
        );
        prop_assert_eq!(merged.names(), mem.names());

        // Mid-stream: ingest a prefix, snapshot, compare to the prefix
        // index (sealed + hot both in play).
        let cut = records.len() / 2;
        let mid_dir = tmpdir("mid", case);
        let mut ingest = LiveIngest::create(LiveConfig {
            dir: mid_dir.clone(),
            store: StoreConfig {
                target_chunk_bytes: chunk_bytes,
                ..StoreConfig::default()
            },
            rotate_records,
            rotate_micros,
            track_seqs: false,
            compaction: None,
            registry: Default::default(),
        })
        .expect("create");
        for r in &records[..cut] {
            ingest.ingest(r).expect("ingest");
        }
        let view = ingest.view();
        let prefix = TraceIndex::new(records[..cut].to_vec());
        prop_assert_eq!(TraceView::len(&view), TraceView::len(&prefix));
        prop_assert_eq!(view.summary(), prefix.summary());
        prop_assert_eq!(view.hourly(), prefix.hourly());
        prop_assert_eq!(view.accesses(7).as_ref(), prefix.accesses(7).as_ref());
        prop_assert_eq!(view.names(), prefix.names());
        ingest.finish().expect("finish");

        for d in [&ref_dir, &dir, &mid_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}

/// Records dense in time (many equal-timestamp ties) with the client
/// id drawn **independently** of the file id, so the same file is hit
/// from clients landing on different shards — the case where only the
/// arrival sequences can reconstruct the original interleave.
fn arb_tied_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..3_000,
        0usize..Op::ALL.len(),
        0u64..40,
        0u64..(1 << 20),
        0u32..5_000,
        0u32..24,
        proptest::option::of("[a-z0-9._-]{1,12}"),
    )
        .prop_map(|(micros, op_idx, fh, offset, count, client, name)| {
            let mut r = TraceRecord::new(micros, Op::ALL[op_idx], FileId(fh));
            r.reply_micros = micros + 1;
            r.client = client;
            r.xid = fh as u32 ^ (client << 8);
            r.offset = offset;
            r.count = count;
            r.ret_count = count / 2;
            r.name = name;
            r
        })
}

proptest! {
    /// For any record stream, shard count, batch length, and rotation
    /// thresholds: a sharded multi-writer ingest's merged view replays
    /// the exact original stream (equal-timestamp ties included) and
    /// its analysis products equal the in-memory index's — mid-ingest
    /// over sealed + hot, and again after sealing and reopening
    /// entirely from disk (sequence sidecars included).
    #[test]
    fn sharded_ingest_equals_single_writer_and_memory(
        mut records in proptest::collection::vec(arb_tied_record(), 1..250),
        shards in 1usize..5,
        batch in 1usize..97,
        rotate_records in 8u64..120,
        rotate_micros in 200u64..4_000_000,
        chunk_bytes in 64usize..4096,
        case in 0u64..1_000_000,
    ) {
        // Stable sort: equal timestamps keep generation (arrival) order.
        records.sort_by_key(|r| r.micros);
        let dir = tmpdir("sharded", case);
        let config = || LiveConfig {
            dir: dir.clone(),
            store: StoreConfig {
                target_chunk_bytes: chunk_bytes,
                ..StoreConfig::default()
            },
            rotate_records,
            rotate_micros,
            track_seqs: false, // implied per shard by the router
            compaction: None,
            registry: Default::default(),
        };
        let mut ingest = ShardedLiveIngest::create(config(), shards).expect("create sharded");
        let mut source = ChunkedSource {
            records: records.clone(),
            at: 0,
            batch,
        };
        ingest.run(&mut source).expect("run");
        prop_assert_eq!(ingest.shard_count(), shards);
        prop_assert_eq!(ingest.total_records(), records.len() as u64);

        // Mid-ingest (pre-finish): sealed + hot per shard, merged on read.
        let view = ingest.view();
        let mut back = Vec::new();
        view.for_each_record(&mut |r| back.push(r.clone()));
        prop_assert_eq!(&back, &records);
        let mem = TraceIndex::new(records.clone());
        prop_assert_eq!(TraceView::len(&view), TraceView::len(&mem));
        prop_assert_eq!(view.summary(), mem.summary());
        prop_assert_eq!(view.hourly(), mem.hourly());
        prop_assert_eq!(view.accesses(7).as_ref(), mem.accesses(7).as_ref());
        prop_assert_eq!(
            view.runs(7, RunOptions::default()).as_ref(),
            mem.runs(7, RunOptions::default()).as_ref()
        );
        prop_assert_eq!(view.names(), mem.names());

        // Windowed merged replay (chunk skipping must keep the sequence
        // index aligned).
        let vw = view.time_window(700, 2_300);
        let mw = mem.time_window(700, 2_300);
        prop_assert_eq!(vw.summary(), mw.summary());
        prop_assert_eq!(vw.accesses(7).as_ref(), mw.accesses(7).as_ref());

        // Each shard's hot tail stays bounded by the rotation threshold.
        for shard in ingest.shards() {
            prop_assert!(shard.peak_hot_records() as u64 <= rotate_records);
        }

        // Sealed + reopened: the same stream, now entirely from disk.
        ingest.finish().expect("finish");
        let reopened = ShardedLiveIngest::open(config()).expect("reopen");
        prop_assert_eq!(reopened.total_records(), records.len() as u64);
        let view = reopened.view();
        let mut back = Vec::new();
        view.for_each_record(&mut |r| back.push(r.clone()));
        prop_assert_eq!(&back, &records);
        prop_assert_eq!(view.summary(), mem.summary());
        prop_assert_eq!(view.accesses(7).as_ref(), mem.accesses(7).as_ref());

        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    /// The segment-lifecycle invariant: for any record stream ×
    /// rotation thresholds × compaction fan-in, the analysis suite
    /// over a compacted (and then retention-trimmed) catalog is
    /// byte-identical to the uncompacted one — live mid-cascade views
    /// and from-disk reopens alike — and the archive tier plus the
    /// trimmed catalog still reconstructs the full stream.
    #[test]
    fn compacted_catalog_is_byte_identical_to_uncompacted(
        mut records in proptest::collection::vec(arb_record(), 1..250),
        batch in 1usize..97,
        rotate_records in 8u64..60,
        rotate_micros in 1_000_000u64..500_000_000,
        chunk_bytes in 64usize..4096,
        fan_in in 2usize..5,
        case in 0u64..1_000_000,
    ) {
        records.sort_by_key(|r| r.micros);

        // Reference: the plain, never-compacted catalog.
        let plain_dir = tmpdir("nocompact", case);
        ingest_all(&plain_dir, &records, batch, rotate_records, rotate_micros, chunk_bytes);
        let plain = StoreIndex::open_dir(&plain_dir).expect("plain index");

        // Same stream with background compaction cascading behind the
        // ingest.
        let dir = tmpdir("compact", case);
        let policy = nfstrace_store::CompactionPolicy { fan_in };
        ingest_all_compacting(
            &dir, &records, batch, rotate_records, rotate_micros, chunk_bytes, Some(policy),
        );
        let catalog = nfstrace_store::SegmentCatalog::open(&dir).expect("catalog");
        prop_assert!(
            catalog.ids().windows(fan_in).all(|w| {
                !(w.iter().all(|id| id.generation == w[0].generation)
                    && w.windows(2).all(|p| p[0].hi + 1 == p[1].lo))
            }),
            "nothing ripe may remain after the cascade: {:?}",
            catalog.ids()
        );
        let compacted = StoreIndex::open_dir(&dir).expect("compacted index");
        let mut plain_records = Vec::new();
        plain.for_each_record(&mut |r| plain_records.push(r.clone()));
        let mut compacted_records = Vec::new();
        compacted.for_each_record(&mut |r| compacted_records.push(r.clone()));
        prop_assert_eq!(&compacted_records, &plain_records);
        prop_assert_eq!(&compacted_records, &records);
        prop_assert_eq!(compacted.summary(), plain.summary());
        prop_assert_eq!(compacted.hourly(), plain.hourly());
        prop_assert_eq!(compacted.accesses(7).as_ref(), plain.accesses(7).as_ref());
        prop_assert_eq!(
            compacted.runs(7, RunOptions::default()).as_ref(),
            plain.runs(7, RunOptions::default()).as_ref()
        );
        prop_assert_eq!(compacted.names(), plain.names());

        // A live ingest reopened over the compacted catalog continues
        // appending past the compacted ranges and sees every record.
        let reopened = LiveIngest::open(LiveConfig {
            dir: dir.clone(),
            store: StoreConfig { target_chunk_bytes: chunk_bytes, ..StoreConfig::default() },
            rotate_records,
            rotate_micros,
            track_seqs: false,
            compaction: Some(policy),
            registry: Default::default(),
        })
        .expect("reopen over compacted");
        prop_assert_eq!(reopened.total_records(), records.len() as u64);
        let view = reopened.view();
        let mut live_back = Vec::new();
        view.for_each_record(&mut |r| live_back.push(r.clone()));
        prop_assert_eq!(&live_back, &records);
        drop(reopened);

        // Retention-trim the compacted catalog into an archive tier:
        // archive ∪ trimmed catalog must still be the identical trace.
        let mut catalog =
            nfstrace_store::SegmentCatalog::open_and_sweep(&dir).expect("reopen catalog");
        let archive = dir.join("archive");
        let retention = nfstrace_store::RetentionPolicy {
            max_total_bytes: Some(0), // trim to the always-kept newest segment
            max_age_micros: None,
            archive_dir: Some(archive.clone()),
        };
        let registry = nfstrace_telemetry::Registry::new();
        let retired =
            nfstrace_store::compact::apply_retention(&mut catalog, &retention, &registry)
                .expect("retention");
        prop_assert_eq!(catalog.len(), 1, "trimmed to the always-kept newest segment");
        prop_assert!(
            retired.iter().all(|r| r.archived_to.is_some()),
            "with an archive_dir every retired segment is moved, not dropped"
        );
        let mut union: Vec<std::sync::Arc<nfstrace_store::StoreReader>> = Vec::new();
        if archive.is_dir() {
            for p in nfstrace_store::SegmentCatalog::open(&archive).expect("archive").paths() {
                union.push(std::sync::Arc::new(
                    nfstrace_store::StoreReader::open(p).expect("open archived"),
                ));
            }
        }
        for p in catalog.paths() {
            union.push(std::sync::Arc::new(
                nfstrace_store::StoreReader::open(p).expect("open retained"),
            ));
        }
        let rejoined = StoreIndex::from_readers(union).expect("union index");
        let mut union_records = Vec::new();
        rejoined.for_each_record(&mut |r| union_records.push(r.clone()));
        prop_assert_eq!(&union_records, &records);
        prop_assert_eq!(rejoined.summary(), plain.summary());

        for d in [&plain_dir, &dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
