//! End-to-end live ingest: rotation, mid-ingest queries, reopen,
//! sniffer feed — all against batch-path oracles.

use nfstrace_core::index::{TraceIndex, TraceView};
use nfstrace_core::record::TraceRecord;
use nfstrace_core::time::{DAY, HOUR};
use nfstrace_live::{LiveConfig, LiveIngest, SlicedWorkloadSource, SnifferSource};
use nfstrace_store::{StoreConfig, StoreIndex};
use nfstrace_workload::{CampusConfig, CampusWorkload, SlicedWorkload};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nfstrace-live-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn campus_cfg(days: u64) -> CampusConfig {
    CampusConfig {
        users: 4,
        duration_micros: days * DAY,
        seed: 42,
        ..CampusConfig::default()
    }
}

/// Small chunks + small rotation so a one-day trace exercises many
/// seals.
fn live_cfg(dir: &std::path::Path) -> LiveConfig {
    LiveConfig {
        store: StoreConfig {
            target_chunk_bytes: 64 << 10,
            ..StoreConfig::default()
        },
        rotate_records: 4_000,
        rotate_micros: 6 * HOUR,
        ..LiveConfig::new(dir)
    }
}

/// Asserts that two views agree on the products the suite consumes.
fn assert_views_agree<A: TraceView, B: TraceView>(a: &A, b: &B, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: len");
    assert_eq!(a.summary(), b.summary(), "{ctx}: summary");
    assert_eq!(a.hourly(), b.hourly(), "{ctx}: hourly");
    assert_eq!(
        a.accesses(10).as_ref(),
        b.accesses(10).as_ref(),
        "{ctx}: accesses"
    );
    assert_eq!(
        a.runs(10, Default::default()).as_ref(),
        b.runs(10, Default::default()).as_ref(),
        "{ctx}: runs"
    );
    assert_eq!(a.names(), b.names(), "{ctx}: names");
}

#[test]
fn live_ingest_equals_batch_and_bounds_memory() {
    let dir = tmpdir("e2e");
    let batch = CampusWorkload::new(campus_cfg(1)).generate_with_threads(1);

    let mut ingest = LiveIngest::create(live_cfg(&dir)).expect("create");
    let mut source = SlicedWorkloadSource::new(SlicedWorkload::campus(campus_cfg(1), HOUR, 2));
    ingest.run(&mut source).expect("run");
    let peak_hot = ingest.peak_hot_records();
    let summary = ingest.finish().expect("finish");

    assert!(
        summary.segments > 1,
        "rotation produced {} segments",
        summary.segments
    );
    assert_eq!(summary.total_records, batch.len() as u64);
    assert!(
        peak_hot < batch.len() / 2,
        "hot tail peaked at {peak_hot} of {} — rotation must bound it",
        batch.len()
    );

    // The segment directory holds exactly the batch record stream...
    let merged = StoreIndex::open_dir(&dir).expect("open dir");
    let mut back = Vec::new();
    use nfstrace_core::index::RecordStream;
    merged.for_each_record(&mut |r| back.push(r.clone()));
    assert_eq!(back, batch, "segment records differ from the batch trace");

    // ... and its analysis products equal the in-memory index's.
    let mem = TraceIndex::new(batch);
    assert_views_agree(&merged, &mem, "segment dir vs in-memory");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_ingest_views_match_records_so_far() {
    let dir = tmpdir("mid");
    let batch = CampusWorkload::new(campus_cfg(1)).generate_with_threads(1);

    let mut ingest = LiveIngest::create(live_cfg(&dir)).expect("create");
    let mut sliced = SlicedWorkload::campus(campus_cfg(1), 2 * HOUR, 1);
    let mut checked = 0;
    while sliced
        .next_slice_into(&mut ingest)
        .expect("slice into ingest")
    {
        let boundary = sliced.emitted_to();
        if boundary >= 8 * HOUR && checked < 2 {
            checked += 1;
            // Everything ingested so far is exactly the batch records
            // before the slice boundary.
            let so_far: Vec<TraceRecord> = batch
                .iter()
                .filter(|r| r.micros < boundary)
                .cloned()
                .collect();
            let view = ingest.view();
            assert_eq!(view.len(), so_far.len(), "boundary {boundary}");
            let oracle = TraceIndex::new(so_far);
            assert_views_agree(&view, &oracle, "mid-ingest view");
            // Windowing a live view mid-ingest works too.
            let vw = view.time_window(2 * HOUR, 6 * HOUR);
            let ow = oracle.time_window(2 * HOUR, 6 * HOUR);
            assert_views_agree(&vw, &ow, "mid-ingest window");
        }
    }
    assert_eq!(checked, 2, "the mid-ingest checkpoints ran");
    ingest.finish().expect("finish");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_appends_where_the_last_run_stopped() {
    let dir = tmpdir("reopen");
    let batch = CampusWorkload::new(campus_cfg(1)).generate_with_threads(1);

    // First run: half the day, then stop (sealing the tail).
    let mut first = LiveIngest::create(live_cfg(&dir)).expect("create");
    let mut sliced = SlicedWorkload::campus(campus_cfg(1), 2 * HOUR, 1);
    while sliced.emitted_to() < 12 * HOUR && sliced.next_slice_into(&mut first).expect("slice") {}
    let stopped_at = sliced.emitted_to();
    let first_summary = first.finish().expect("finish first run");
    assert!(first_summary.segments >= 1);

    // Second run: reopen the directory, keep ingesting the same stream.
    let mut second = LiveIngest::open(live_cfg(&dir)).expect("reopen");
    assert_eq!(second.total_records(), first_summary.total_records);
    // A reopened ingest's view already covers the sealed records.
    let so_far: Vec<TraceRecord> = batch
        .iter()
        .filter(|r| r.micros < stopped_at)
        .cloned()
        .collect();
    assert_views_agree(&second.view(), &TraceIndex::new(so_far), "reopened view");
    while sliced.next_slice_into(&mut second).expect("slice") {}
    second.finish().expect("finish second run");

    let merged = StoreIndex::open_dir(&dir).expect("open dir");
    use nfstrace_core::index::RecordStream;
    let mut back = Vec::new();
    merged.for_each_record(&mut |r| back.push(r.clone()));
    assert_eq!(back, batch, "stop+reopen must reproduce the batch trace");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segment_bytes_are_identical_for_any_slicing_and_threads() {
    let reference_dir = tmpdir("det-ref");
    let mut ingest = LiveIngest::create(live_cfg(&reference_dir)).expect("create");
    let mut src = SlicedWorkloadSource::new(SlicedWorkload::campus(campus_cfg(1), HOUR, 1));
    ingest.run(&mut src).expect("run");
    ingest.finish().expect("finish");
    let reference: Vec<(String, Vec<u8>)> = read_dir_sorted(&reference_dir);
    assert!(reference.len() > 1);

    for (slice, threads, tag) in [(3 * HOUR, 2, "a"), (5 * HOUR + 7, 4, "b")] {
        let dir = tmpdir(&format!("det-{tag}"));
        let mut ingest = LiveIngest::create(live_cfg(&dir)).expect("create");
        let mut src =
            SlicedWorkloadSource::new(SlicedWorkload::campus(campus_cfg(1), slice, threads));
        ingest.run(&mut src).expect("run");
        ingest.finish().expect("finish");
        assert_eq!(
            read_dir_sorted(&dir),
            reference,
            "slice={slice} threads={threads}: segment bytes must not depend on batching"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&reference_dir).ok();
}

fn read_dir_sorted(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| {
            let e = e.expect("entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read file"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn sniffer_source_streams_a_capture_into_segments() {
    use nfstrace_client::{ClientConfig, ClientMachine};
    use nfstrace_fssim::NfsServer;
    use nfstrace_sniffer::{Sniffer, WireEncoder};

    // A session's worth of real packets.
    let mut server = NfsServer::new(0x0a000002);
    let root = server.root_fh();
    let mut client = ClientMachine::new(ClientConfig {
        nfsiods: 2,
        ..ClientConfig::default()
    });
    let (fh, t) = client.create(&mut server, 0, &root, "inbox");
    let fh = fh.unwrap();
    let t = client.write(&mut server, t, &fh, 0, 600_000);
    let t = client.read_file(&mut server, t + 40_000_000, &fh);
    client.remove(&mut server, t, &root, "inbox");
    let events = client.take_events();
    let mut enc = WireEncoder::tcp_jumbo();
    let packets: Vec<_> = events.iter().flat_map(|e| enc.encode_event(e)).collect();

    // Oracle: the batch sniffer.
    let mut oracle = Sniffer::new();
    for p in &packets {
        oracle.observe(p);
    }
    let (expected, _) = oracle.finish();

    let dir = tmpdir("sniff");
    let mut ingest = LiveIngest::create(LiveConfig {
        rotate_records: 50,
        ..LiveConfig::new(&dir)
    })
    .expect("create");
    let mut source = SnifferSource::new(packets.into_iter(), 16);
    ingest.run(&mut source).expect("run");
    let summary = ingest.finish().expect("finish");
    assert!(summary.segments >= 1);
    assert!(source.stats().expect("stats once exhausted").calls > 0);

    let merged = StoreIndex::open_dir(&dir).expect("open dir");
    use nfstrace_core::index::RecordStream;
    let mut back = Vec::new();
    merged.for_each_record(&mut |r| back.push(r.clone()));
    assert_eq!(
        back, expected,
        "live capture path diverged from batch sniffing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_crashed_hot_segment_never_poisons_the_directory() {
    let dir = tmpdir("crash");
    let batch = CampusWorkload::new(campus_cfg(1)).generate_with_threads(1);

    // Ingest a few slices, then "crash": drop the ingest mid-hot-segment
    // without finish(), leaving an unsealed temp file behind.
    let sealed_records;
    {
        let mut ingest = LiveIngest::create(live_cfg(&dir)).expect("create");
        let mut sliced = SlicedWorkload::campus(campus_cfg(1), 2 * HOUR, 1);
        while sliced.emitted_to() < 10 * HOUR && sliced.next_slice_into(&mut ingest).expect("slice")
        {
        }
        assert!(ingest.hot_len() > 0, "the crash happens mid-hot-segment");
        assert!(ingest.sealed_segments() > 0);
        sealed_records = ingest.total_records() as usize - ingest.hot_len();
        // drop without finish = crash
    }
    let stale: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".tmp")
        })
        .collect();
    assert!(!stale.is_empty(), "the crash left an unsealed temp segment");

    // The sealed segments stay fully analyzable despite the leftover.
    let merged = StoreIndex::open_dir(&dir).expect("sealed segments stay readable");
    assert_eq!(TraceView::len(&merged), sealed_records);

    // Reopen resumes from the last seal and sweeps the stale temp.
    let reopened = LiveIngest::open(live_cfg(&dir)).expect("reopen after crash");
    assert_eq!(reopened.total_records() as usize, sealed_records);
    assert!(
        std::fs::read_dir(&dir).expect("read dir").all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")),
        "reopen sweeps stale temp segments"
    );
    drop(reopened);

    // Sanity: everything sealed is a prefix of the batch trace.
    use nfstrace_core::index::RecordStream;
    let mut back = Vec::new();
    merged.for_each_record(&mut |r| back.push(r.clone()));
    assert_eq!(&back[..], &batch[..back.len()]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn create_refuses_a_dirty_directory_and_ingest_rejects_time_travel() {
    let dir = tmpdir("guard");
    let mut ingest = LiveIngest::create(LiveConfig::new(&dir)).expect("create");
    let r1 = TraceRecord::new(
        1000,
        nfstrace_core::record::Op::Read,
        nfstrace_core::record::FileId(1),
    );
    ingest.ingest(&r1).expect("in order");
    let back = TraceRecord::new(
        999,
        nfstrace_core::record::Op::Read,
        nfstrace_core::record::FileId(1),
    );
    assert!(matches!(
        ingest.ingest(&back),
        Err(nfstrace_store::StoreError::OutOfOrder { .. })
    ));
    ingest.finish().expect("finish");
    assert!(
        LiveIngest::create(LiveConfig::new(&dir)).is_err(),
        "create must refuse a directory that already has segments"
    );
    LiveIngest::open(LiveConfig::new(&dir)).expect("open resumes instead");
    std::fs::remove_dir_all(&dir).ok();
}
