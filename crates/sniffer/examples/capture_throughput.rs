//! Ad-hoc capture throughput measurement: a synthetic multi-client TCP
//! capture replayed through the sniffer, reporting records/s and MB/s.
//!
//! This is the harness behind the hand-recorded numbers in
//! `BENCH_pipeline.json`'s history notes — it intentionally uses only
//! the long-stable public API (`Sniffer::observe`/`finish`) so the same
//! file builds against older revisions for before/after comparisons.
//! The regression-tracked measurement lives in
//! `cargo bench --bench pipeline`.

use std::time::Instant;

use nfstrace_client::{ClientConfig, ClientMachine};
use nfstrace_fssim::NfsServer;
use nfstrace_net::pcap::CapturedPacket;
use nfstrace_sniffer::{Sniffer, WireEncoder};

/// Builds the capture: 8 clients against one server, each creating a
/// file, writing 4 MiB, reading it back, and removing it — a mix of
/// metadata and data traffic over standard-MSS TCP.
fn corpus(jumbo: bool) -> Vec<CapturedPacket> {
    let mut server = NfsServer::new(9);
    let root = server.root_fh();
    let mut events = Vec::new();
    for c in 0..8u32 {
        let mut client = ClientMachine::new(ClientConfig {
            ip: 0x0a00_0010 + c,
            uid: 100 + c,
            gid: 100,
            nfsiods: 1,
            seed: u64::from(c),
            ..ClientConfig::default()
        });
        let name = format!("f{c}");
        let (fh, t) = client.create(&mut server, u64::from(c) * 1_000, &root, &name);
        let fh = fh.unwrap();
        let t = client.write(&mut server, t, &fh, 0, 4 << 20);
        let t = client.read_file(&mut server, t + 1_000, &fh);
        client.remove(&mut server, t, &root, &name);
        events.extend(client.take_events());
    }
    events.sort_by_key(|e| e.wire_micros);
    let mut enc = if jumbo {
        WireEncoder::tcp_jumbo()
    } else {
        WireEncoder::tcp_standard()
    };
    events.iter().flat_map(|e| enc.encode_event(e)).collect()
}

fn measure(label: &str, packets: &[CapturedPacket]) {
    let wire_bytes: u64 = packets.iter().map(|p| p.data.len() as u64).sum();
    let mut best_records_per_s = 0.0f64;
    let mut records = 0usize;
    for pass in 0..5 {
        let t = Instant::now();
        let mut s = Sniffer::new();
        for p in packets {
            s.observe(p);
        }
        let (recs, _stats) = s.finish();
        let dt = t.elapsed().as_secs_f64();
        records = recs.len();
        let rps = records as f64 / dt;
        let mbps = wire_bytes as f64 / dt / (1 << 20) as f64;
        println!(
            "{label} pass {pass}: {records} records in {dt:.4}s = {rps:.0} records/s, {mbps:.0} MiB/s"
        );
        best_records_per_s = best_records_per_s.max(rps);
    }
    println!(
        "{label} best: {best_records_per_s:.0} records/s over {} packets / {} records / {} wire bytes",
        packets.len(),
        records,
        wire_bytes
    );
}

fn main() {
    measure("mss1448", &corpus(false));
    measure("jumbo", &corpus(true));
}
