//! Canonical flattening of paired NFS calls/replies into trace records.
//!
//! Used by both the packet-decoding sniffer and (via `nfstrace-workload`)
//! the fast in-memory simulation path, so the two paths cannot drift.

use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_nfs::v2::{Call2, Call2View, Proc2, Reply2, ReplyFacts2};
use nfstrace_nfs::v3::{Call3, Call3View, Proc3, Reply3, Reply3Body, ReplyFacts3};

/// Timing and identity context for one paired call/reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallMeta {
    /// Capture time of the call.
    pub wire_micros: u64,
    /// Capture time of the reply (0 if lost).
    pub reply_micros: u64,
    /// RPC XID.
    pub xid: u32,
    /// Client IP.
    pub client: u32,
    /// Server IP.
    pub server: u32,
    /// Credential uid.
    pub uid: u32,
    /// Credential gid.
    pub gid: u32,
    /// Protocol version (2 or 3).
    pub vers: u8,
}

fn base_record(meta: &CallMeta, op: Op) -> TraceRecord {
    let mut r = TraceRecord::new(meta.wire_micros, op, FileId(0));
    r.reply_micros = meta.reply_micros;
    r.client = meta.client;
    r.server = meta.server;
    r.uid = meta.uid;
    r.gid = meta.gid;
    r.xid = meta.xid;
    r.vers = meta.vers;
    r
}

/// Maps an NFSv3 procedure to the version-independent op.
pub fn op_of_proc3(proc: Proc3) -> Op {
    match proc {
        Proc3::Null => Op::Null,
        Proc3::Getattr => Op::Getattr,
        Proc3::Setattr => Op::Setattr,
        Proc3::Lookup => Op::Lookup,
        Proc3::Access => Op::Access,
        Proc3::Readlink => Op::Readlink,
        Proc3::Read => Op::Read,
        Proc3::Write => Op::Write,
        Proc3::Create => Op::Create,
        Proc3::Mkdir => Op::Mkdir,
        Proc3::Symlink => Op::Symlink,
        Proc3::Mknod => Op::Mknod,
        Proc3::Remove => Op::Remove,
        Proc3::Rmdir => Op::Rmdir,
        Proc3::Rename => Op::Rename,
        Proc3::Link => Op::Link,
        Proc3::Readdir => Op::Readdir,
        Proc3::Readdirplus => Op::Readdirplus,
        Proc3::Fsstat => Op::Fsstat,
        Proc3::Fsinfo => Op::Fsinfo,
        Proc3::Pathconf => Op::Pathconf,
        Proc3::Commit => Op::Commit,
    }
}

/// Maps an NFSv2 procedure to the version-independent op.
pub fn op_of_proc2(proc: Proc2) -> Op {
    match proc {
        Proc2::Null | Proc2::Root | Proc2::Writecache => Op::Null,
        Proc2::Getattr => Op::Getattr,
        Proc2::Setattr => Op::Setattr,
        Proc2::Lookup => Op::Lookup,
        Proc2::Readlink => Op::Readlink,
        Proc2::Read => Op::Read,
        Proc2::Write => Op::Write,
        Proc2::Create => Op::Create,
        Proc2::Remove => Op::Remove,
        Proc2::Rename => Op::Rename,
        Proc2::Link => Op::Link,
        Proc2::Symlink => Op::Symlink,
        Proc2::Mkdir => Op::Mkdir,
        Proc2::Rmdir => Op::Rmdir,
        Proc2::Readdir => Op::Readdir,
        Proc2::Statfs => Op::Statfs,
    }
}

fn fid(fh: &nfstrace_nfs::fh::FileHandle) -> FileId {
    FileId(fh.as_u64().unwrap_or(0))
}

/// Flattens an NFSv3 call/reply pair.
pub fn v3_to_record(meta: &CallMeta, call: &Call3, reply: &Reply3) -> TraceRecord {
    let mut r = base_record(meta, op_of_proc3(call.proc()));
    r.status = reply.status.as_u32();

    match call {
        Call3::Null => {}
        Call3::Getattr(a)
        | Call3::Readlink(a)
        | Call3::Fsstat(a)
        | Call3::Fsinfo(a)
        | Call3::Pathconf(a) => r.fh = fid(&a.object),
        Call3::Setattr(a) => {
            r.fh = fid(&a.object);
            r.truncate_to = a.new_attributes.size;
        }
        Call3::Lookup(a) | Call3::Remove(a) | Call3::Rmdir(a) => {
            r.fh = fid(&a.dir);
            r.name = Some(a.name.clone());
        }
        Call3::Access(a) => r.fh = fid(&a.object),
        Call3::Read(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
        Call3::Write(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
        Call3::Create(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Mkdir(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Symlink(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Mknod(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Rename(a) => {
            r.fh = fid(&a.from.dir);
            r.name = Some(a.from.name.clone());
            r.fh2 = Some(fid(&a.to.dir));
            r.name2 = Some(a.to.name.clone());
        }
        Call3::Link(a) => {
            r.fh = fid(&a.file);
            r.fh2 = Some(fid(&a.link.dir));
            r.name = Some(a.link.name.clone());
        }
        Call3::Readdir(a) => r.fh = fid(&a.dir),
        Call3::Readdirplus(a) => r.fh = fid(&a.dir),
        Call3::Commit(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
    }

    match &reply.body {
        Reply3Body::Getattr(res) => {
            if let Some(a) = res.attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply3Body::Setattr(res) => {
            r.pre_size = res.wcc.before.map(|b| b.size);
            r.post_size = res.wcc.after.map(|a| a.size);
        }
        Reply3Body::Lookup(res) => {
            if let Some(obj) = &res.object {
                r.new_fh = Some(fid(obj));
            }
            if let Some(a) = res.obj_attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply3Body::Read(res) => {
            r.ret_count = res.count;
            r.eof = res.eof;
            if let Some(a) = res.file_attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply3Body::Write(res) => {
            r.ret_count = res.count;
            r.pre_size = res.wcc.before.map(|b| b.size);
            r.post_size = res.wcc.after.map(|a| a.size);
        }
        Reply3Body::Create(res)
        | Reply3Body::Mkdir(res)
        | Reply3Body::Symlink(res)
        | Reply3Body::Mknod(res) => {
            if let Some(obj) = &res.obj {
                r.new_fh = Some(fid(obj));
            }
            if let Some(a) = res.obj_attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        _ => {}
    }
    r
}

/// Flattens an NFSv2 call/reply pair.
pub fn v2_to_record(meta: &CallMeta, call: &Call2, reply: &Reply2) -> TraceRecord {
    let mut r = base_record(meta, op_of_proc2(call.proc()));
    r.vers = 2;
    r.status = reply.status().as_u32();

    match call {
        Call2::Null | Call2::Root | Call2::Writecache => {}
        Call2::Getattr(fh) | Call2::Readlink(fh) | Call2::Statfs(fh) => r.fh = fid(fh),
        Call2::Setattr { file, attributes } => {
            r.fh = fid(file);
            r.truncate_to = attributes.size_opt().map(u64::from);
        }
        Call2::Lookup(a) | Call2::Remove(a) | Call2::Rmdir(a) => {
            r.fh = fid(&a.dir);
            r.name = Some(a.name.clone());
        }
        Call2::Read {
            file,
            offset,
            count,
            ..
        } => {
            r.fh = fid(file);
            r.offset = u64::from(*offset);
            r.count = *count;
        }
        Call2::Write {
            file, offset, data, ..
        } => {
            r.fh = fid(file);
            r.offset = u64::from(*offset);
            r.count = data.len() as u32;
        }
        Call2::Create { where_, .. } | Call2::Mkdir { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.clone());
        }
        Call2::Rename { from, to } => {
            r.fh = fid(&from.dir);
            r.name = Some(from.name.clone());
            r.fh2 = Some(fid(&to.dir));
            r.name2 = Some(to.name.clone());
        }
        Call2::Link { from, to } => {
            r.fh = fid(from);
            r.fh2 = Some(fid(&to.dir));
            r.name = Some(to.name.clone());
        }
        Call2::Symlink { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.clone());
        }
        Call2::Readdir { dir, .. } => r.fh = fid(dir),
    }

    match reply {
        Reply2::AttrStat {
            attributes: Some(a),
            ..
        } => {
            r.post_size = Some(u64::from(a.size));
            r.ftype = Some(a.ftype.as_u32() as u8);
            if r.op == Op::Write {
                r.ret_count = r.count;
            }
        }
        Reply2::DirOpRes {
            file: Some(fh),
            attributes,
            ..
        } => {
            r.new_fh = Some(fid(fh));
            if let Some(a) = attributes {
                r.post_size = Some(u64::from(a.size));
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply2::Read {
            attributes, data, ..
        } => {
            r.ret_count = data.len() as u32;
            if let Some(a) = attributes {
                r.post_size = Some(u64::from(a.size));
                r.ftype = Some(a.ftype.as_u32() as u8);
                // v2 READ has no eof flag; infer it from the size.
                r.eof = r.offset + u64::from(r.ret_count) >= u64::from(a.size);
            }
        }
        _ => {}
    }
    r
}

/// Builds the call-side half of a trace record from a borrowed NFSv3
/// call view, materializing names exactly once.
///
/// Together with [`v3_apply_facts`] this produces byte-identical output
/// to [`v3_to_record`] without ever constructing an owned [`Call3`] or
/// [`Reply3`]; the wire-speed sniffer path uses this pair while the
/// canonical flattener stays as the oracle.
pub fn v3_call_record(meta: &CallMeta, call: &Call3View<'_>) -> TraceRecord {
    let mut r = base_record(meta, op_of_proc3(call.proc()));
    match call {
        Call3View::Null => {}
        Call3View::Getattr(a)
        | Call3View::Readlink(a)
        | Call3View::Fsstat(a)
        | Call3View::Fsinfo(a)
        | Call3View::Pathconf(a) => r.fh = fid(&a.object),
        Call3View::Setattr(a) => {
            r.fh = fid(&a.object);
            r.truncate_to = a.new_attributes.size;
        }
        Call3View::Lookup(a) | Call3View::Remove(a) | Call3View::Rmdir(a) => {
            r.fh = fid(&a.dir);
            r.name = Some(a.name.to_owned());
        }
        Call3View::Access(a) => r.fh = fid(&a.object),
        Call3View::Read(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
        Call3View::Write(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
        Call3View::Create { where_, .. }
        | Call3View::Mkdir { where_, .. }
        | Call3View::Mknod { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.to_owned());
        }
        Call3View::Symlink(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.to_owned());
        }
        Call3View::Rename { from, to } => {
            r.fh = fid(&from.dir);
            r.name = Some(from.name.to_owned());
            r.fh2 = Some(fid(&to.dir));
            r.name2 = Some(to.name.to_owned());
        }
        Call3View::Link { file, link } => {
            r.fh = fid(file);
            r.fh2 = Some(fid(&link.dir));
            r.name = Some(link.name.to_owned());
        }
        Call3View::Readdir(a) => r.fh = fid(&a.dir),
        Call3View::Readdirplus(a) => r.fh = fid(&a.dir),
        Call3View::Commit(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
    }
    r
}

/// Fills the reply-side fields of a call-time record from streamed
/// NFSv3 reply facts.
///
/// `Some` facts overwrite the corresponding fields; `None` leaves them
/// at their call-time defaults, exactly as [`v3_to_record`] leaves them
/// untouched for procedures whose replies carry no such field.
pub fn v3_apply_facts(r: &mut TraceRecord, reply_micros: u64, facts: &ReplyFacts3) {
    r.reply_micros = reply_micros;
    r.status = facts.status.as_u32();
    if let Some(count) = facts.ret_count {
        r.ret_count = count;
    }
    if let Some(eof) = facts.eof {
        r.eof = eof;
    }
    r.pre_size = facts.pre_size;
    r.post_size = facts.post_size;
    r.ftype = facts.ftype.map(|t| t.as_u32() as u8);
    if let Some(fh) = &facts.new_fh {
        r.new_fh = Some(fid(fh));
    }
}

/// Builds the call-side half of a trace record from a borrowed NFSv2
/// call view; the v2 twin of [`v3_call_record`].
pub fn v2_call_record(meta: &CallMeta, call: &Call2View<'_>) -> TraceRecord {
    let mut r = base_record(meta, op_of_proc2(call.proc()));
    r.vers = 2;
    match call {
        Call2View::Null | Call2View::Root | Call2View::Writecache => {}
        Call2View::Getattr(fh) | Call2View::Readlink(fh) | Call2View::Statfs(fh) => r.fh = fid(fh),
        Call2View::Setattr { file, attributes } => {
            r.fh = fid(file);
            r.truncate_to = attributes.size_opt().map(u64::from);
        }
        Call2View::Lookup(a) | Call2View::Remove(a) | Call2View::Rmdir(a) => {
            r.fh = fid(&a.dir);
            r.name = Some(a.name.to_owned());
        }
        Call2View::Read {
            file,
            offset,
            count,
            ..
        } => {
            r.fh = fid(file);
            r.offset = u64::from(*offset);
            r.count = *count;
        }
        Call2View::Write {
            file, offset, data, ..
        } => {
            r.fh = fid(file);
            r.offset = u64::from(*offset);
            r.count = data.len() as u32;
        }
        Call2View::Create { where_, .. } | Call2View::Mkdir { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.to_owned());
        }
        Call2View::Rename { from, to } => {
            r.fh = fid(&from.dir);
            r.name = Some(from.name.to_owned());
            r.fh2 = Some(fid(&to.dir));
            r.name2 = Some(to.name.to_owned());
        }
        Call2View::Link { from, to } => {
            r.fh = fid(from);
            r.fh2 = Some(fid(&to.dir));
            r.name = Some(to.name.to_owned());
        }
        Call2View::Symlink { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.to_owned());
        }
        Call2View::Readdir { dir, .. } => r.fh = fid(dir),
    }
    r
}

/// Fills the reply-side fields of a call-time record from streamed
/// NFSv2 reply facts; the v2 twin of [`v3_apply_facts`].
///
/// A `Some` `ret_count` means the reply was a `READ`, which is the only
/// v2 reply carrying a payload length; the derived fields the canonical
/// flattener computes — the inferred `READ` eof and the `WRITE`
/// `ret_count = count` echo — are reproduced here from the call-side
/// fields plus `post_size`.
pub fn v2_apply_facts(r: &mut TraceRecord, reply_micros: u64, facts: &ReplyFacts2) {
    r.reply_micros = reply_micros;
    r.status = facts.status.as_u32();
    if let Some(fh) = &facts.new_fh {
        r.new_fh = Some(fid(fh));
    }
    if let Some(count) = facts.ret_count {
        r.ret_count = count;
        if let Some(size) = facts.post_size {
            r.post_size = Some(size);
            r.ftype = facts.ftype.map(|t| t.as_u32() as u8);
            // v2 READ has no eof flag; infer it from the size.
            r.eof = r.offset + u64::from(count) >= size;
        }
    } else if let Some(size) = facts.post_size {
        r.post_size = Some(size);
        r.ftype = facts.ftype.map(|t| t.as_u32() as u8);
        if r.op == Op::Write {
            r.ret_count = r.count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_nfs::fh::FileHandle;
    use nfstrace_nfs::types::{Fattr3, NfsStat3};
    use nfstrace_nfs::v2::Fattr2;
    use nfstrace_nfs::v3::{Read3Args, Read3Res};

    fn meta() -> CallMeta {
        CallMeta {
            wire_micros: 100,
            reply_micros: 400,
            xid: 7,
            client: 1,
            server: 2,
            uid: 3,
            gid: 4,
            vers: 3,
        }
    }

    #[test]
    fn v3_read_mapping() {
        let call = Call3::Read(Read3Args {
            file: FileHandle::from_u64(9),
            offset: 8192,
            count: 8192,
        });
        let reply = Reply3::ok(Reply3Body::Read(Read3Res {
            file_attributes: Some(Fattr3 {
                size: 16384,
                ..Fattr3::default()
            }),
            count: 8192,
            eof: true,
            data: vec![0; 8192],
        }));
        let r = v3_to_record(&meta(), &call, &reply);
        assert_eq!(r.op, Op::Read);
        assert_eq!(r.fh, FileId(9));
        assert_eq!(r.offset, 8192);
        assert_eq!(r.ret_count, 8192);
        assert!(r.eof);
        assert_eq!(r.post_size, Some(16384));
        assert_eq!(r.latency_micros(), Some(300));
    }

    #[test]
    fn v2_read_infers_eof() {
        let call = Call2::Read {
            file: FileHandle::from_u64(5),
            offset: 4096,
            count: 4096,
            totalcount: 0,
        };
        let reply = Reply2::Read {
            status: NfsStat3::Ok,
            attributes: Some(Fattr2 {
                size: 8192,
                ..Fattr2::default()
            }),
            data: vec![0; 4096],
        };
        let r = v2_to_record(&meta(), &call, &reply);
        assert_eq!(r.vers, 2);
        assert!(r.eof);
        assert_eq!(r.post_size, Some(8192));
    }

    #[test]
    fn v2_lookup_maps_new_fh() {
        let call = Call2::Lookup(nfstrace_nfs::v2::DirOpArgs2 {
            dir: FileHandle::from_u64(1),
            name: ".cshrc".into(),
        });
        let reply = Reply2::DirOpRes {
            status: NfsStat3::Ok,
            file: Some(FileHandle::from_u64(33)),
            attributes: Some(Fattr2::default()),
        };
        let r = v2_to_record(&meta(), &call, &reply);
        assert_eq!(r.op, Op::Lookup);
        assert_eq!(r.new_fh, Some(FileId(33)));
        assert_eq!(r.name.as_deref(), Some(".cshrc"));
    }

    #[test]
    fn error_status_propagates() {
        let call = Call3::Getattr(nfstrace_nfs::v3::FhArgs {
            object: FileHandle::from_u64(1),
        });
        let reply = Reply3::error(Proc3::Getattr, NfsStat3::Stale);
        let r = v3_to_record(&meta(), &call, &reply);
        assert!(!r.is_ok());
        assert_eq!(r.status, NfsStat3::Stale.as_u32());
    }

    mod streaming_equivalence {
        //! The view-based call-record/apply-facts pair must produce
        //! byte-identical records to the canonical owned flattener over
        //! every call variant and every reply arm the flattener reads.

        use super::super::*;
        use super::meta;
        use nfstrace_nfs::fh::FileHandle;
        use nfstrace_nfs::types::{Fattr3, NfsStat3, Sattr3, WccAttr, WccData};
        use nfstrace_nfs::v2::{DirEntry2, DirOpArgs2, Fattr2, Sattr2};
        use nfstrace_nfs::v3::{
            Access3Args, Commit3Args, Create3Args, Create3Res, CreateHow, DirOpArgs, FhArgs,
            Getattr3Res, Link3Args, Lookup3Res, Mkdir3Args, Mknod3Args, Read3Args, Read3Res,
            Readdir3Args, Readdirplus3Args, Rename3Args, ReplyFacts3, Setattr3Args, Setattr3Res,
            StableHow, Symlink3Args, Write3Args, Write3Res,
        };

        fn fh(n: u64) -> FileHandle {
            FileHandle::from_u64(n)
        }

        fn dir_op(n: u64, name: &str) -> DirOpArgs {
            DirOpArgs {
                dir: fh(n),
                name: name.into(),
            }
        }

        fn attrs(size: u64) -> Fattr3 {
            Fattr3 {
                size,
                ..Fattr3::default()
            }
        }

        fn wcc(before: Option<u64>, after: Option<u64>) -> WccData {
            WccData {
                before: before.map(|size| WccAttr {
                    size,
                    ..WccAttr::default()
                }),
                after: after.map(attrs),
            }
        }

        fn sample_calls3() -> Vec<Call3> {
            vec![
                Call3::Null,
                Call3::Getattr(FhArgs { object: fh(1) }),
                Call3::Setattr(Setattr3Args {
                    object: fh(2),
                    new_attributes: Sattr3 {
                        size: Some(4096),
                        ..Sattr3::default()
                    },
                    guard_ctime: None,
                }),
                Call3::Lookup(dir_op(3, "passwd")),
                Call3::Access(Access3Args {
                    object: fh(4),
                    access: 0x1f,
                }),
                Call3::Readlink(FhArgs { object: fh(5) }),
                Call3::Read(Read3Args {
                    file: fh(6),
                    offset: 8192,
                    count: 4096,
                }),
                Call3::Write(Write3Args {
                    file: fh(7),
                    offset: 123,
                    count: 5,
                    stable: StableHow::FileSync,
                    data: b"hello".to_vec(),
                }),
                Call3::Create(Create3Args {
                    where_: dir_op(8, "newfile"),
                    how: CreateHow::Guarded,
                    attributes: Sattr3::default(),
                }),
                Call3::Mkdir(Mkdir3Args {
                    where_: dir_op(9, "newdir"),
                    attributes: Sattr3::default(),
                }),
                Call3::Symlink(Symlink3Args {
                    where_: dir_op(10, "sl"),
                    attributes: Sattr3::default(),
                    target: "../target/path".into(),
                }),
                Call3::Mknod(Mknod3Args {
                    where_: dir_op(11, "dev"),
                    node_type: 4,
                    attributes: Sattr3::default(),
                }),
                Call3::Remove(dir_op(12, "gone")),
                Call3::Rmdir(dir_op(13, "olddir")),
                Call3::Rename(Rename3Args {
                    from: dir_op(14, "old"),
                    to: dir_op(15, "new"),
                }),
                Call3::Link(Link3Args {
                    file: fh(16),
                    link: dir_op(17, "hard"),
                }),
                Call3::Readdir(Readdir3Args {
                    dir: fh(18),
                    ..Readdir3Args::default()
                }),
                Call3::Readdirplus(Readdirplus3Args {
                    dir: fh(19),
                    ..Readdirplus3Args::default()
                }),
                Call3::Fsstat(FhArgs { object: fh(20) }),
                Call3::Fsinfo(FhArgs { object: fh(21) }),
                Call3::Pathconf(FhArgs { object: fh(22) }),
                Call3::Commit(Commit3Args {
                    file: fh(23),
                    offset: 65536,
                    count: 32768,
                }),
            ]
        }

        /// Every reply body the canonical flattener reads something
        /// from, in both populated and empty-optional forms.
        fn replies_for3(proc: Proc3) -> Vec<Reply3> {
            let mut replies = vec![Reply3::error(proc, NfsStat3::Stale)];
            match proc {
                Proc3::Getattr => {
                    replies.push(Reply3::ok(Reply3Body::Getattr(Getattr3Res {
                        attributes: Some(attrs(777)),
                    })));
                }
                Proc3::Setattr => {
                    replies.push(Reply3::ok(Reply3Body::Setattr(Setattr3Res {
                        wcc: wcc(Some(100), Some(200)),
                    })));
                    replies.push(Reply3::ok(Reply3Body::Setattr(Setattr3Res {
                        wcc: wcc(None, None),
                    })));
                }
                Proc3::Lookup => {
                    replies.push(Reply3::ok(Reply3Body::Lookup(Lookup3Res {
                        object: Some(fh(90)),
                        obj_attributes: Some(attrs(333)),
                        dir_attributes: None,
                    })));
                    replies.push(Reply3::ok(Reply3Body::Lookup(Lookup3Res {
                        object: Some(fh(91)),
                        obj_attributes: None,
                        dir_attributes: Some(attrs(1)),
                    })));
                }
                Proc3::Read => {
                    replies.push(Reply3::ok(Reply3Body::Read(Read3Res {
                        file_attributes: Some(attrs(16384)),
                        count: 4096,
                        eof: true,
                        data: vec![0; 4096],
                    })));
                    replies.push(Reply3::ok(Reply3Body::Read(Read3Res {
                        file_attributes: None,
                        count: 100,
                        eof: false,
                        data: vec![0; 100],
                    })));
                }
                Proc3::Write => {
                    replies.push(Reply3::ok(Reply3Body::Write(Write3Res {
                        wcc: wcc(Some(123), Some(128)),
                        count: 5,
                        committed: 2,
                        verf: [9; 8],
                    })));
                }
                Proc3::Create | Proc3::Mkdir | Proc3::Symlink | Proc3::Mknod => {
                    let res = |obj: Option<FileHandle>, a: Option<Fattr3>| Create3Res {
                        obj,
                        obj_attributes: a,
                        dir_wcc: wcc(None, Some(11)),
                    };
                    let wrap = |r: Create3Res| match proc {
                        Proc3::Create => Reply3Body::Create(r),
                        Proc3::Mkdir => Reply3Body::Mkdir(r),
                        Proc3::Symlink => Reply3Body::Symlink(r),
                        _ => Reply3Body::Mknod(r),
                    };
                    replies.push(Reply3::ok(wrap(res(Some(fh(70)), Some(attrs(0))))));
                    replies.push(Reply3::ok(wrap(res(None, None))));
                }
                _ => {}
            }
            replies
        }

        #[test]
        fn v3_streaming_path_matches_canonical_flattener() {
            for call in sample_calls3() {
                let proc = call.proc();
                let args = call.encode_args();
                let view = Call3View::decode(proc, &args).unwrap();
                for reply in replies_for3(proc) {
                    let results = reply.encode_results();
                    let facts = ReplyFacts3::decode(proc, &results).unwrap();

                    let call_meta = CallMeta {
                        reply_micros: 0,
                        ..meta()
                    };
                    let mut streamed = v3_call_record(&call_meta, &view);
                    v3_apply_facts(&mut streamed, meta().reply_micros, &facts);

                    // Feed the oracle what the owned wire path yields:
                    // the sniffer decodes replies from bytes, and e.g. a
                    // NULL reply carries no status on the wire.
                    let wire_reply = Reply3::decode(proc, &results).unwrap();
                    let oracle = v3_to_record(&meta(), &call, &wire_reply);
                    assert_eq!(streamed, oracle, "proc {proc:?}");
                }
            }
        }

        fn sample_calls2() -> Vec<Call2> {
            let dop = |n: u64, name: &str| DirOpArgs2 {
                dir: fh(n),
                name: name.into(),
            };
            vec![
                Call2::Null,
                Call2::Root,
                Call2::Writecache,
                Call2::Getattr(fh(1)),
                Call2::Setattr {
                    file: fh(2),
                    attributes: Sattr2 {
                        size: 512,
                        ..Sattr2::default()
                    },
                },
                Call2::Lookup(dop(3, ".cshrc")),
                Call2::Readlink(fh(4)),
                Call2::Read {
                    file: fh(5),
                    offset: 4096,
                    count: 4096,
                    totalcount: 0,
                },
                Call2::Write {
                    file: fh(6),
                    beginoffset: 0,
                    offset: 100,
                    totalcount: 0,
                    data: b"abcdef".to_vec(),
                },
                Call2::Create {
                    where_: dop(7, "mbox"),
                    attributes: Sattr2::default(),
                },
                Call2::Remove(dop(8, "tmp")),
                Call2::Rename {
                    from: dop(9, "a"),
                    to: dop(10, "b"),
                },
                Call2::Link {
                    from: fh(11),
                    to: dop(12, "ln"),
                },
                Call2::Symlink {
                    where_: dop(13, "sl"),
                    target: "/usr/spool".into(),
                    attributes: Sattr2::default(),
                },
                Call2::Mkdir {
                    where_: dop(14, "d"),
                    attributes: Sattr2::default(),
                },
                Call2::Rmdir(dop(15, "dd")),
                Call2::Readdir {
                    dir: fh(16),
                    cookie: 0,
                    count: 1024,
                },
                Call2::Statfs(fh(17)),
            ]
        }

        fn fattr2(size: u32) -> Fattr2 {
            Fattr2 {
                size,
                ..Fattr2::default()
            }
        }

        fn replies_for2(proc: Proc2) -> Vec<Reply2> {
            match proc {
                Proc2::Null | Proc2::Root | Proc2::Writecache => vec![Reply2::Void],
                Proc2::Getattr | Proc2::Setattr | Proc2::Write => vec![
                    Reply2::AttrStat {
                        status: NfsStat3::Ok,
                        attributes: Some(fattr2(2048)),
                    },
                    Reply2::AttrStat {
                        status: NfsStat3::Stale,
                        attributes: None,
                    },
                ],
                Proc2::Lookup | Proc2::Create | Proc2::Mkdir => vec![
                    Reply2::DirOpRes {
                        status: NfsStat3::Ok,
                        file: Some(fh(44)),
                        attributes: Some(fattr2(99)),
                    },
                    Reply2::DirOpRes {
                        status: NfsStat3::NoEnt,
                        file: None,
                        attributes: None,
                    },
                ],
                Proc2::Read => vec![
                    Reply2::Read {
                        status: NfsStat3::Ok,
                        attributes: Some(fattr2(8192)),
                        data: vec![0; 4096],
                    },
                    Reply2::Read {
                        status: NfsStat3::Stale,
                        attributes: None,
                        data: vec![],
                    },
                ],
                Proc2::Readlink => vec![
                    Reply2::Readlink {
                        status: NfsStat3::Ok,
                        target: "/export/home".into(),
                    },
                    Reply2::Readlink {
                        status: NfsStat3::Stale,
                        target: String::new(),
                    },
                ],
                Proc2::Readdir => vec![
                    Reply2::Readdir {
                        status: NfsStat3::Ok,
                        entries: vec![DirEntry2 {
                            fileid: 9,
                            name: "mbox".into(),
                            cookie: 1,
                        }],
                        eof: true,
                    },
                    Reply2::Readdir {
                        status: NfsStat3::Stale,
                        entries: vec![],
                        eof: false,
                    },
                ],
                Proc2::Statfs => vec![
                    Reply2::Statfs {
                        status: NfsStat3::Ok,
                        info: [8192, 1024, 100, 50, 25],
                    },
                    Reply2::Statfs {
                        status: NfsStat3::Stale,
                        info: [0; 5],
                    },
                ],
                Proc2::Remove | Proc2::Rename | Proc2::Link | Proc2::Symlink | Proc2::Rmdir => {
                    vec![Reply2::Stat(NfsStat3::Ok), Reply2::Stat(NfsStat3::Stale)]
                }
            }
        }

        #[test]
        fn v2_streaming_path_matches_canonical_flattener() {
            for call in sample_calls2() {
                let proc = call.proc();
                let args = call.encode_args();
                let view = Call2View::decode(proc, &args).unwrap();
                for reply in replies_for2(proc) {
                    let results = reply.encode_results();
                    let facts = ReplyFacts2::decode(proc, &results).unwrap();

                    let call_meta = CallMeta {
                        reply_micros: 0,
                        ..meta()
                    };
                    let mut streamed = v2_call_record(&call_meta, &view);
                    v2_apply_facts(&mut streamed, meta().reply_micros, &facts);

                    let wire_reply = Reply2::decode(proc, &results).unwrap();
                    let oracle = v2_to_record(&meta(), &call, &wire_reply);
                    assert_eq!(streamed, oracle, "proc {proc:?}");
                }
            }
        }
    }
}
