//! Canonical flattening of paired NFS calls/replies into trace records.
//!
//! Used by both the packet-decoding sniffer and (via `nfstrace-workload`)
//! the fast in-memory simulation path, so the two paths cannot drift.

use nfstrace_core::record::{FileId, Op, TraceRecord};
use nfstrace_nfs::v2::{Call2, Proc2, Reply2};
use nfstrace_nfs::v3::{Call3, Proc3, Reply3, Reply3Body};

/// Timing and identity context for one paired call/reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallMeta {
    /// Capture time of the call.
    pub wire_micros: u64,
    /// Capture time of the reply (0 if lost).
    pub reply_micros: u64,
    /// RPC XID.
    pub xid: u32,
    /// Client IP.
    pub client: u32,
    /// Server IP.
    pub server: u32,
    /// Credential uid.
    pub uid: u32,
    /// Credential gid.
    pub gid: u32,
    /// Protocol version (2 or 3).
    pub vers: u8,
}

fn base_record(meta: &CallMeta, op: Op) -> TraceRecord {
    let mut r = TraceRecord::new(meta.wire_micros, op, FileId(0));
    r.reply_micros = meta.reply_micros;
    r.client = meta.client;
    r.server = meta.server;
    r.uid = meta.uid;
    r.gid = meta.gid;
    r.xid = meta.xid;
    r.vers = meta.vers;
    r
}

/// Maps an NFSv3 procedure to the version-independent op.
pub fn op_of_proc3(proc: Proc3) -> Op {
    match proc {
        Proc3::Null => Op::Null,
        Proc3::Getattr => Op::Getattr,
        Proc3::Setattr => Op::Setattr,
        Proc3::Lookup => Op::Lookup,
        Proc3::Access => Op::Access,
        Proc3::Readlink => Op::Readlink,
        Proc3::Read => Op::Read,
        Proc3::Write => Op::Write,
        Proc3::Create => Op::Create,
        Proc3::Mkdir => Op::Mkdir,
        Proc3::Symlink => Op::Symlink,
        Proc3::Mknod => Op::Mknod,
        Proc3::Remove => Op::Remove,
        Proc3::Rmdir => Op::Rmdir,
        Proc3::Rename => Op::Rename,
        Proc3::Link => Op::Link,
        Proc3::Readdir => Op::Readdir,
        Proc3::Readdirplus => Op::Readdirplus,
        Proc3::Fsstat => Op::Fsstat,
        Proc3::Fsinfo => Op::Fsinfo,
        Proc3::Pathconf => Op::Pathconf,
        Proc3::Commit => Op::Commit,
    }
}

/// Maps an NFSv2 procedure to the version-independent op.
pub fn op_of_proc2(proc: Proc2) -> Op {
    match proc {
        Proc2::Null | Proc2::Root | Proc2::Writecache => Op::Null,
        Proc2::Getattr => Op::Getattr,
        Proc2::Setattr => Op::Setattr,
        Proc2::Lookup => Op::Lookup,
        Proc2::Readlink => Op::Readlink,
        Proc2::Read => Op::Read,
        Proc2::Write => Op::Write,
        Proc2::Create => Op::Create,
        Proc2::Remove => Op::Remove,
        Proc2::Rename => Op::Rename,
        Proc2::Link => Op::Link,
        Proc2::Symlink => Op::Symlink,
        Proc2::Mkdir => Op::Mkdir,
        Proc2::Rmdir => Op::Rmdir,
        Proc2::Readdir => Op::Readdir,
        Proc2::Statfs => Op::Statfs,
    }
}

fn fid(fh: &nfstrace_nfs::fh::FileHandle) -> FileId {
    FileId(fh.as_u64().unwrap_or(0))
}

/// Flattens an NFSv3 call/reply pair.
pub fn v3_to_record(meta: &CallMeta, call: &Call3, reply: &Reply3) -> TraceRecord {
    let mut r = base_record(meta, op_of_proc3(call.proc()));
    r.status = reply.status.as_u32();

    match call {
        Call3::Null => {}
        Call3::Getattr(a)
        | Call3::Readlink(a)
        | Call3::Fsstat(a)
        | Call3::Fsinfo(a)
        | Call3::Pathconf(a) => r.fh = fid(&a.object),
        Call3::Setattr(a) => {
            r.fh = fid(&a.object);
            r.truncate_to = a.new_attributes.size;
        }
        Call3::Lookup(a) | Call3::Remove(a) | Call3::Rmdir(a) => {
            r.fh = fid(&a.dir);
            r.name = Some(a.name.clone());
        }
        Call3::Access(a) => r.fh = fid(&a.object),
        Call3::Read(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
        Call3::Write(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
        Call3::Create(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Mkdir(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Symlink(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Mknod(a) => {
            r.fh = fid(&a.where_.dir);
            r.name = Some(a.where_.name.clone());
        }
        Call3::Rename(a) => {
            r.fh = fid(&a.from.dir);
            r.name = Some(a.from.name.clone());
            r.fh2 = Some(fid(&a.to.dir));
            r.name2 = Some(a.to.name.clone());
        }
        Call3::Link(a) => {
            r.fh = fid(&a.file);
            r.fh2 = Some(fid(&a.link.dir));
            r.name = Some(a.link.name.clone());
        }
        Call3::Readdir(a) => r.fh = fid(&a.dir),
        Call3::Readdirplus(a) => r.fh = fid(&a.dir),
        Call3::Commit(a) => {
            r.fh = fid(&a.file);
            r.offset = a.offset;
            r.count = a.count;
        }
    }

    match &reply.body {
        Reply3Body::Getattr(res) => {
            if let Some(a) = res.attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply3Body::Setattr(res) => {
            r.pre_size = res.wcc.before.map(|b| b.size);
            r.post_size = res.wcc.after.map(|a| a.size);
        }
        Reply3Body::Lookup(res) => {
            if let Some(obj) = &res.object {
                r.new_fh = Some(fid(obj));
            }
            if let Some(a) = res.obj_attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply3Body::Read(res) => {
            r.ret_count = res.count;
            r.eof = res.eof;
            if let Some(a) = res.file_attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply3Body::Write(res) => {
            r.ret_count = res.count;
            r.pre_size = res.wcc.before.map(|b| b.size);
            r.post_size = res.wcc.after.map(|a| a.size);
        }
        Reply3Body::Create(res)
        | Reply3Body::Mkdir(res)
        | Reply3Body::Symlink(res)
        | Reply3Body::Mknod(res) => {
            if let Some(obj) = &res.obj {
                r.new_fh = Some(fid(obj));
            }
            if let Some(a) = res.obj_attributes {
                r.post_size = Some(a.size);
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        _ => {}
    }
    r
}

/// Flattens an NFSv2 call/reply pair.
pub fn v2_to_record(meta: &CallMeta, call: &Call2, reply: &Reply2) -> TraceRecord {
    let mut r = base_record(meta, op_of_proc2(call.proc()));
    r.vers = 2;
    r.status = reply.status().as_u32();

    match call {
        Call2::Null | Call2::Root | Call2::Writecache => {}
        Call2::Getattr(fh) | Call2::Readlink(fh) | Call2::Statfs(fh) => r.fh = fid(fh),
        Call2::Setattr { file, attributes } => {
            r.fh = fid(file);
            r.truncate_to = attributes.size_opt().map(u64::from);
        }
        Call2::Lookup(a) | Call2::Remove(a) | Call2::Rmdir(a) => {
            r.fh = fid(&a.dir);
            r.name = Some(a.name.clone());
        }
        Call2::Read {
            file,
            offset,
            count,
            ..
        } => {
            r.fh = fid(file);
            r.offset = u64::from(*offset);
            r.count = *count;
        }
        Call2::Write {
            file, offset, data, ..
        } => {
            r.fh = fid(file);
            r.offset = u64::from(*offset);
            r.count = data.len() as u32;
        }
        Call2::Create { where_, .. } | Call2::Mkdir { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.clone());
        }
        Call2::Rename { from, to } => {
            r.fh = fid(&from.dir);
            r.name = Some(from.name.clone());
            r.fh2 = Some(fid(&to.dir));
            r.name2 = Some(to.name.clone());
        }
        Call2::Link { from, to } => {
            r.fh = fid(from);
            r.fh2 = Some(fid(&to.dir));
            r.name = Some(to.name.clone());
        }
        Call2::Symlink { where_, .. } => {
            r.fh = fid(&where_.dir);
            r.name = Some(where_.name.clone());
        }
        Call2::Readdir { dir, .. } => r.fh = fid(dir),
    }

    match reply {
        Reply2::AttrStat {
            attributes: Some(a),
            ..
        } => {
            r.post_size = Some(u64::from(a.size));
            r.ftype = Some(a.ftype.as_u32() as u8);
            if r.op == Op::Write {
                r.ret_count = r.count;
            }
        }
        Reply2::DirOpRes {
            file: Some(fh),
            attributes,
            ..
        } => {
            r.new_fh = Some(fid(fh));
            if let Some(a) = attributes {
                r.post_size = Some(u64::from(a.size));
                r.ftype = Some(a.ftype.as_u32() as u8);
            }
        }
        Reply2::Read {
            attributes, data, ..
        } => {
            r.ret_count = data.len() as u32;
            if let Some(a) = attributes {
                r.post_size = Some(u64::from(a.size));
                r.ftype = Some(a.ftype.as_u32() as u8);
                // v2 READ has no eof flag; infer it from the size.
                r.eof = r.offset + u64::from(r.ret_count) >= u64::from(a.size);
            }
        }
        _ => {}
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_nfs::fh::FileHandle;
    use nfstrace_nfs::types::{Fattr3, NfsStat3};
    use nfstrace_nfs::v2::Fattr2;
    use nfstrace_nfs::v3::{Read3Args, Read3Res};

    fn meta() -> CallMeta {
        CallMeta {
            wire_micros: 100,
            reply_micros: 400,
            xid: 7,
            client: 1,
            server: 2,
            uid: 3,
            gid: 4,
            vers: 3,
        }
    }

    #[test]
    fn v3_read_mapping() {
        let call = Call3::Read(Read3Args {
            file: FileHandle::from_u64(9),
            offset: 8192,
            count: 8192,
        });
        let reply = Reply3::ok(Reply3Body::Read(Read3Res {
            file_attributes: Some(Fattr3 {
                size: 16384,
                ..Fattr3::default()
            }),
            count: 8192,
            eof: true,
            data: vec![0; 8192],
        }));
        let r = v3_to_record(&meta(), &call, &reply);
        assert_eq!(r.op, Op::Read);
        assert_eq!(r.fh, FileId(9));
        assert_eq!(r.offset, 8192);
        assert_eq!(r.ret_count, 8192);
        assert!(r.eof);
        assert_eq!(r.post_size, Some(16384));
        assert_eq!(r.latency_micros(), Some(300));
    }

    #[test]
    fn v2_read_infers_eof() {
        let call = Call2::Read {
            file: FileHandle::from_u64(5),
            offset: 4096,
            count: 4096,
            totalcount: 0,
        };
        let reply = Reply2::Read {
            status: NfsStat3::Ok,
            attributes: Some(Fattr2 {
                size: 8192,
                ..Fattr2::default()
            }),
            data: vec![0; 4096],
        };
        let r = v2_to_record(&meta(), &call, &reply);
        assert_eq!(r.vers, 2);
        assert!(r.eof);
        assert_eq!(r.post_size, Some(8192));
    }

    #[test]
    fn v2_lookup_maps_new_fh() {
        let call = Call2::Lookup(nfstrace_nfs::v2::DirOpArgs2 {
            dir: FileHandle::from_u64(1),
            name: ".cshrc".into(),
        });
        let reply = Reply2::DirOpRes {
            status: NfsStat3::Ok,
            file: Some(FileHandle::from_u64(33)),
            attributes: Some(Fattr2::default()),
        };
        let r = v2_to_record(&meta(), &call, &reply);
        assert_eq!(r.op, Op::Lookup);
        assert_eq!(r.new_fh, Some(FileId(33)));
        assert_eq!(r.name.as_deref(), Some(".cshrc"));
    }

    #[test]
    fn error_status_propagates() {
        let call = Call3::Getattr(nfstrace_nfs::v3::FhArgs {
            object: FileHandle::from_u64(1),
        });
        let reply = Reply3::error(Proc3::Getattr, NfsStat3::Stale);
        let r = v3_to_record(&meta(), &call, &reply);
        assert!(!r.is_ok());
        assert_eq!(r.status, NfsStat3::Stale.as_u32());
    }
}
