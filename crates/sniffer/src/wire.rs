//! Encoding simulated call/reply events into real packets.
//!
//! The workload simulator produces decoded [`EmittedCall`]s; this module
//! puts them on the simulated wire as actual Ethernet/IPv4/UDP-or-TCP
//! frames carrying XDR-encoded RPC, so the sniffer exercises the same
//! decoding work the paper's tracer did. NFSv2-tagged clients (a share
//! of EECS workstations) are encoded with genuine NFSv2 wire messages;
//! v3-only procedures fall back to their closest v2 equivalent
//! (ACCESS → GETATTR, READDIRPLUS → READDIR), mirroring how v2 clients
//! actually behaved.

use nfstrace_client::EmittedCall;
use nfstrace_net::ethernet::MacAddr;
use nfstrace_net::ipv4::Ipv4Addr4;
use nfstrace_net::packet::PacketBuilder;
use nfstrace_net::pcap::CapturedPacket;
use nfstrace_nfs::v2::{Call2, DirOpArgs2, Reply2, Sattr2};
use nfstrace_nfs::v3::{Call3, Reply3, Reply3Body};
use nfstrace_rpc::auth::{AuthUnix, OpaqueAuth};
use nfstrace_rpc::record::mark_record;
use nfstrace_rpc::{RpcMessage, PROG_NFS};
use nfstrace_telemetry::{Counter, Registry};
use nfstrace_xdr::Pack;
use std::collections::HashMap;

/// Which transport a flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// One datagram per RPC message (EECS).
    Udp,
    /// Record-marked stream segments (CAMPUS), with the given MSS.
    Tcp {
        /// Maximum segment payload size (8948 with jumbo frames).
        mss: usize,
    },
}

/// A snapshot of how often the v3→v2 downgrade had to narrow a 64-bit
/// field into v2's 32 bits. Narrowing **saturates** to `u32::MAX` and
/// counts here — never a silent `as u32` truncation, which would
/// fabricate a small, valid-looking cookie or file id out of a large
/// one. Read from [`DowngradeCounters::snapshot`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DowngradeStats {
    /// READDIR/READDIRPLUS cookies that exceeded 32 bits.
    pub saturated_cookies: u64,
    /// Directory-entry file ids that exceeded 32 bits.
    pub saturated_fileids: u64,
}

impl DowngradeStats {
    /// Total saturated narrowings.
    pub fn total(&self) -> u64 {
        self.saturated_cookies + self.saturated_fileids
    }
}

/// The registry-backed accumulator behind [`DowngradeStats`]: the
/// `wire.downgrade.*` counters. `Default` counts into a private
/// registry; [`DowngradeCounters::with_registry`] joins a shared one.
#[derive(Debug, Clone)]
pub struct DowngradeCounters {
    saturated_cookies: Counter,
    saturated_fileids: Counter,
}

impl Default for DowngradeCounters {
    fn default() -> Self {
        Self::with_registry(&Registry::new())
    }
}

impl DowngradeCounters {
    /// Counters registered as `wire.downgrade.saturated_cookies` /
    /// `wire.downgrade.saturated_fileids` in `registry`.
    pub fn with_registry(registry: &Registry) -> Self {
        DowngradeCounters {
            saturated_cookies: registry.counter("wire.downgrade.saturated_cookies"),
            saturated_fileids: registry.counter("wire.downgrade.saturated_fileids"),
        }
    }

    /// Point-in-time read of the counters.
    pub fn snapshot(&self) -> DowngradeStats {
        DowngradeStats {
            saturated_cookies: self.saturated_cookies.value(),
            saturated_fileids: self.saturated_fileids.value(),
        }
    }
}

/// Narrows a 64-bit wire field to v2's 32 bits, saturating (and
/// counting) instead of truncating.
fn narrow32(v: u64, saturations: &Counter) -> u32 {
    u32::try_from(v).unwrap_or_else(|_| {
        saturations.inc();
        u32::MAX
    })
}

/// Encodes events into captured packets.
#[derive(Debug)]
pub struct WireEncoder {
    mode: TransportMode,
    /// Next TCP sequence number per directed flow.
    seq: HashMap<(u32, u32, u16, u16), u32>,
    /// First sequence number of each new flow. Real stacks pick an
    /// arbitrary 32-bit ISN, so a long flow *will* wrap past `u32::MAX`;
    /// seeding this near the top exercises that in a short capture.
    initial_seq: u32,
    /// Lossy v3→v2 narrowings observed while encoding.
    downgrade: DowngradeCounters,
}

/// The well-known NFS port.
const NFS_PORT: u16 = 2049;

impl WireEncoder {
    /// A UDP encoder (the EECS configuration).
    pub fn udp() -> Self {
        WireEncoder {
            mode: TransportMode::Udp,
            seq: HashMap::new(),
            initial_seq: 1,
            downgrade: DowngradeCounters::default(),
        }
    }

    /// A TCP encoder with jumbo-frame MSS (the CAMPUS configuration).
    pub fn tcp_jumbo() -> Self {
        WireEncoder {
            mode: TransportMode::Tcp { mss: 8948 },
            seq: HashMap::new(),
            initial_seq: 1,
            downgrade: DowngradeCounters::default(),
        }
    }

    /// A TCP encoder with standard-Ethernet MSS.
    pub fn tcp_standard() -> Self {
        WireEncoder {
            mode: TransportMode::Tcp { mss: 1448 },
            seq: HashMap::new(),
            initial_seq: 1,
            downgrade: DowngradeCounters::default(),
        }
    }

    /// Starts every new flow at `seq` instead of 1. A value just below
    /// `u32::MAX` makes even a short capture cross the sequence-number
    /// wraparound, as any sufficiently long-lived real flow does.
    pub fn with_initial_seq(mut self, seq: u32) -> Self {
        self.initial_seq = seq;
        self
    }

    /// Counts the `wire.downgrade.*` narrowings into `registry`
    /// instead of this encoder's private one.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.downgrade = DowngradeCounters::with_registry(registry);
        self
    }

    /// Lossy v3→v2 narrowings this encoder has performed so far.
    pub fn downgrade_stats(&self) -> DowngradeStats {
        self.downgrade.snapshot()
    }

    /// Stable client port derived from the client address.
    pub fn client_port(client_ip: u32) -> u16 {
        700 + (client_ip % 251) as u16
    }

    fn mac_of(ip: u32) -> MacAddr {
        let o = ip.to_be_bytes();
        MacAddr::new([0x02, 0x00, o[0], o[1], o[2], o[3]])
    }

    /// Encodes one event into its call and reply packets, in capture
    /// order (call first even if timestamps tie).
    pub fn encode_event(&mut self, e: &EmittedCall) -> Vec<CapturedPacket> {
        let (call_msg, reply_msg) = build_rpc_pair(e, &self.downgrade);
        let cport = Self::client_port(e.client_ip);
        let mut out = Vec::new();
        out.extend(self.encode_message(
            e.wire_micros,
            e.client_ip,
            e.server_ip,
            cport,
            NFS_PORT,
            &call_msg.to_xdr_bytes(),
        ));
        out.extend(self.encode_message(
            e.reply_micros,
            e.server_ip,
            e.client_ip,
            NFS_PORT,
            cport,
            &reply_msg.to_xdr_bytes(),
        ));
        out
    }

    /// Puts one already-encoded RPC message on the wire as captured
    /// frames: UDP datagram or record-marked, MSS-chunked TCP segments
    /// with per-flow sequence numbers. This is the frame-synthesis
    /// primitive behind [`WireEncoder::encode_event`]; the serving
    /// loop's capture tap uses it directly to replay the byte streams
    /// it observed on real sockets.
    pub fn encode_message(
        &mut self,
        ts: u64,
        src_ip: u32,
        dst_ip: u32,
        sport: u16,
        dport: u16,
        msg: &[u8],
    ) -> Vec<CapturedPacket> {
        let src = Ipv4Addr4::from_u32(src_ip);
        let dst = Ipv4Addr4::from_u32(dst_ip);
        let smac = Self::mac_of(src_ip);
        let dmac = Self::mac_of(dst_ip);
        match self.mode {
            TransportMode::Udp => {
                let frame = PacketBuilder::udp(smac, dmac, src, dst, sport, dport, msg.to_vec());
                vec![CapturedPacket::new(ts, frame)]
            }
            TransportMode::Tcp { mss } => {
                let stream = mark_record(msg);
                let key = (src_ip, dst_ip, sport, dport);
                let seq = self.seq.entry(key).or_insert(self.initial_seq);
                let mut pkts = Vec::new();
                for (i, chunk) in stream.chunks(mss).enumerate() {
                    let frame = PacketBuilder::tcp(
                        smac,
                        dmac,
                        src,
                        dst,
                        sport,
                        dport,
                        *seq,
                        chunk.to_vec(),
                    );
                    // Segments of one message share the capture tick but
                    // stay ordered.
                    pkts.push(CapturedPacket::new(ts + i as u64, frame));
                    *seq = seq.wrapping_add(chunk.len() as u32);
                }
                pkts
            }
        }
    }
}

/// Builds the RPC call and reply messages for an event, choosing the
/// protocol version by the event's tag.
pub fn build_rpc_pair(e: &EmittedCall, downgrade: &DowngradeCounters) -> (RpcMessage, RpcMessage) {
    let cred = OpaqueAuth::unix(&AuthUnix::new(
        format!("client{:x}", e.client_ip),
        e.uid,
        e.gid,
    ));
    if e.vers == 2 {
        let call2 = call3_to_v2(&e.call, downgrade);
        let reply2 = reply3_to_v2(&e.call, &e.reply, downgrade);
        let call_msg = RpcMessage::call(
            e.xid,
            PROG_NFS,
            2,
            call2.proc().as_u32(),
            cred,
            call2.encode_args(),
        );
        let reply_msg = RpcMessage::reply_success(e.xid, reply2.encode_results());
        (call_msg, reply_msg)
    } else {
        let call_msg = RpcMessage::call(
            e.xid,
            PROG_NFS,
            3,
            e.call.proc().as_u32(),
            cred,
            e.call.encode_args(),
        );
        let reply_msg = RpcMessage::reply_success(e.xid, e.reply.encode_results());
        (call_msg, reply_msg)
    }
}

/// Downgrades a v3 call to its v2 equivalent. Fields wider than v2's
/// 32 bits saturate and count in `downgrade` rather than silently
/// truncating.
pub fn call3_to_v2(call: &Call3, downgrade: &DowngradeCounters) -> Call2 {
    match call {
        Call3::Null => Call2::Null,
        Call3::Getattr(a) | Call3::Readlink(a) => Call2::Getattr(a.object.clone()),
        // v2 has no ACCESS: clients issued GETATTR instead.
        Call3::Access(a) => Call2::Getattr(a.object.clone()),
        Call3::Fsstat(a) | Call3::Fsinfo(a) | Call3::Pathconf(a) => Call2::Statfs(a.object.clone()),
        Call3::Setattr(a) => Call2::Setattr {
            file: a.object.clone(),
            attributes: Sattr2 {
                size: a
                    .new_attributes
                    .size
                    .map(|s| s.min(u64::from(u32::MAX)) as u32)
                    .unwrap_or(u32::MAX),
                ..Sattr2::default()
            },
        },
        Call3::Lookup(a) => Call2::Lookup(dirop2(a)),
        Call3::Remove(a) => Call2::Remove(dirop2(a)),
        Call3::Rmdir(a) => Call2::Rmdir(dirop2(a)),
        Call3::Read(a) => Call2::Read {
            file: a.file.clone(),
            offset: a.offset.min(u64::from(u32::MAX)) as u32,
            count: a.count,
            totalcount: 0,
        },
        Call3::Write(a) => Call2::Write {
            file: a.file.clone(),
            beginoffset: 0,
            offset: a.offset.min(u64::from(u32::MAX)) as u32,
            totalcount: 0,
            data: a.data.clone(),
        },
        Call3::Create(a) => Call2::Create {
            where_: dirop2(&a.where_),
            attributes: Sattr2::default(),
        },
        Call3::Mkdir(a) => Call2::Mkdir {
            where_: dirop2(&a.where_),
            attributes: Sattr2::default(),
        },
        Call3::Symlink(a) => Call2::Symlink {
            where_: dirop2(&a.where_),
            target: a.target.clone(),
            attributes: Sattr2::default(),
        },
        Call3::Mknod(a) => Call2::Create {
            where_: dirop2(&a.where_),
            attributes: Sattr2::default(),
        },
        Call3::Rename(a) => Call2::Rename {
            from: dirop2(&a.from),
            to: dirop2(&a.to),
        },
        Call3::Link(a) => Call2::Link {
            from: a.file.clone(),
            to: dirop2(&a.link),
        },
        Call3::Readdir(a) => Call2::Readdir {
            dir: a.dir.clone(),
            cookie: narrow32(a.cookie, &downgrade.saturated_cookies),
            count: a.count,
        },
        Call3::Readdirplus(a) => Call2::Readdir {
            dir: a.dir.clone(),
            cookie: narrow32(a.cookie, &downgrade.saturated_cookies),
            count: a.maxcount,
        },
        // v2 has no COMMIT; a null ping is the closest no-op.
        Call3::Commit(_) => Call2::Null,
    }
}

fn dirop2(a: &nfstrace_nfs::v3::DirOpArgs) -> DirOpArgs2 {
    DirOpArgs2 {
        dir: a.dir.clone(),
        name: a.name.clone(),
    }
}

/// Downgrades a v3 reply to the v2 reply for the downgraded call.
/// Directory-entry file ids and cookies saturate and count in
/// `downgrade` rather than silently truncating.
pub fn reply3_to_v2(call: &Call3, reply: &Reply3, downgrade: &DowngradeCounters) -> Reply2 {
    let status = reply.status;
    match (&reply.body, call) {
        (Reply3Body::Null, _) => Reply2::Void,
        (Reply3Body::Getattr(res), _) => Reply2::AttrStat {
            status,
            attributes: res.attributes.map(Into::into),
        },
        (Reply3Body::Access(res), _) => Reply2::AttrStat {
            status,
            attributes: res.obj_attributes.map(Into::into),
        },
        (Reply3Body::Setattr(res), _) => Reply2::AttrStat {
            status,
            attributes: res.wcc.after.map(Into::into),
        },
        (Reply3Body::Write(res), _) => Reply2::AttrStat {
            status,
            attributes: res.wcc.after.map(Into::into),
        },
        (Reply3Body::Lookup(res), _) => Reply2::DirOpRes {
            status,
            file: res.object.clone(),
            attributes: res.obj_attributes.map(Into::into),
        },
        (Reply3Body::Create(res), _)
        | (Reply3Body::Mkdir(res), _)
        | (Reply3Body::Mknod(res), _) => Reply2::DirOpRes {
            status,
            file: res.obj.clone(),
            attributes: res.obj_attributes.map(Into::into),
        },
        (Reply3Body::Symlink(_), _) => Reply2::Stat(status),
        (Reply3Body::Readlink(res), _) => Reply2::Readlink {
            status,
            target: res.target.clone(),
        },
        (Reply3Body::Read(res), _) => Reply2::Read {
            status,
            attributes: res.file_attributes.map(Into::into),
            data: res.data.clone(),
        },
        (Reply3Body::Remove(_), _)
        | (Reply3Body::Rmdir(_), _)
        | (Reply3Body::Rename(_), _)
        | (Reply3Body::Link(_), _) => Reply2::Stat(status),
        (Reply3Body::Readdir(res), _) => Reply2::Readdir {
            status,
            entries: res
                .entries
                .iter()
                .map(|e| nfstrace_nfs::v2::DirEntry2 {
                    fileid: narrow32(e.fileid, &downgrade.saturated_fileids),
                    name: e.name.clone(),
                    cookie: narrow32(e.cookie, &downgrade.saturated_cookies),
                })
                .collect(),
            eof: res.eof,
        },
        (Reply3Body::Readdirplus(res), _) => Reply2::Readdir {
            status,
            entries: res
                .entries
                .iter()
                .map(|e| nfstrace_nfs::v2::DirEntry2 {
                    fileid: narrow32(e.fileid, &downgrade.saturated_fileids),
                    name: e.name.clone(),
                    cookie: narrow32(e.cookie, &downgrade.saturated_cookies),
                })
                .collect(),
            eof: res.eof,
        },
        (Reply3Body::Fsstat(_), _) | (Reply3Body::Fsinfo(_), _) | (Reply3Body::Pathconf(_), _) => {
            Reply2::Statfs {
                status,
                info: [8192, 8192, 6_400_000, 2_400_000, 2_400_000],
            }
        }
        (Reply3Body::Commit(_), _) => Reply2::Void,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_net::packet::DecodedPacket;
    use nfstrace_nfs::fh::FileHandle;
    use nfstrace_nfs::types::NfsStat3;
    use nfstrace_nfs::v3::{Read3Args, Read3Res};
    use nfstrace_xdr::Unpack;

    fn event(vers: u8) -> EmittedCall {
        EmittedCall {
            wire_micros: 1000,
            reply_micros: 1400,
            xid: 0x55,
            client_ip: 0x0a000001,
            server_ip: 0x0a000002,
            uid: 10,
            gid: 20,
            vers,
            call: Call3::Read(Read3Args {
                file: FileHandle::from_u64(3),
                offset: 0,
                count: 4096,
            }),
            reply: Reply3 {
                status: NfsStat3::Ok,
                body: Reply3Body::Read(Read3Res {
                    file_attributes: None,
                    count: 4096,
                    eof: false,
                    data: vec![0; 4096],
                }),
            },
        }
    }

    #[test]
    fn udp_event_roundtrips_through_rpc_decode() {
        let mut enc = WireEncoder::udp();
        let pkts = enc.encode_event(&event(3));
        assert_eq!(pkts.len(), 2);
        let call_pkt = DecodedPacket::parse(&pkts[0].data).unwrap();
        assert_eq!(call_pkt.dst_port, 2049);
        let msg = RpcMessage::from_xdr_bytes(&call_pkt.payload).unwrap();
        let body = msg.as_call().unwrap();
        assert_eq!(body.prog, PROG_NFS);
        assert_eq!(body.vers, 3);
        let call = Call3::decode(
            nfstrace_nfs::v3::Proc3::from_u32(body.proc).unwrap(),
            &body.args,
        )
        .unwrap();
        assert!(matches!(call, Call3::Read(_)));
        // Credential carries uid/gid.
        let auth = body.cred.as_unix().unwrap().unwrap();
        assert_eq!((auth.uid, auth.gid), (10, 20));
    }

    #[test]
    fn tcp_event_segments_with_record_marking() {
        let mut enc = WireEncoder::tcp_standard();
        let pkts = enc.encode_event(&event(3));
        // Reply carries ~4 KB data over MSS 1448: several segments.
        assert!(pkts.len() >= 4, "packets = {}", pkts.len());
        // Sequence numbers advance within a direction.
        let decoded: Vec<DecodedPacket> = pkts
            .iter()
            .map(|p| DecodedPacket::parse(&p.data).unwrap())
            .collect();
        let server_to_client: Vec<&DecodedPacket> =
            decoded.iter().filter(|d| d.src_port == 2049).collect();
        assert!(server_to_client.len() >= 3);
    }

    #[test]
    fn v2_event_encodes_nfsv2_wire_format() {
        let mut enc = WireEncoder::udp();
        let pkts = enc.encode_event(&event(2));
        let call_pkt = DecodedPacket::parse(&pkts[0].data).unwrap();
        let msg = RpcMessage::from_xdr_bytes(&call_pkt.payload).unwrap();
        let body = msg.as_call().unwrap();
        assert_eq!(body.vers, 2);
        let call = Call2::decode(
            nfstrace_nfs::v2::Proc2::from_u32(body.proc).unwrap(),
            &body.args,
        )
        .unwrap();
        assert!(matches!(call, Call2::Read { .. }));
    }

    #[test]
    fn v2_downgrade_covers_all_ops() {
        use nfstrace_nfs::v3::*;
        let fh = FileHandle::from_u64(1);
        let dir = DirOpArgs {
            dir: fh.clone(),
            name: "n".into(),
        };
        let calls = vec![
            Call3::Null,
            Call3::Getattr(FhArgs { object: fh.clone() }),
            Call3::Access(Access3Args {
                object: fh.clone(),
                access: 1,
            }),
            Call3::Lookup(dir),
            Call3::Readdirplus(Readdirplus3Args {
                dir: fh.clone(),
                cookie: 0,
                cookieverf: [0; 8],
                dircount: 100,
                maxcount: 200,
            }),
            Call3::Commit(Commit3Args {
                file: fh,
                offset: 0,
                count: 0,
            }),
        ];
        for c in calls {
            let c2 = call3_to_v2(&c, &DowngradeCounters::default());
            // Round-trip the downgraded call over the wire format.
            let bytes = c2.encode_args();
            assert_eq!(Call2::decode(c2.proc(), &bytes).unwrap(), c2);
        }
    }

    /// Regression: 64-bit cookies and file ids past `u32::MAX` must
    /// saturate (and be counted), never wrap into small valid-looking
    /// v2 values — `0x1_0000_0005 as u32` used to come out as `5`.
    #[test]
    fn v2_downgrade_saturates_wide_cookies_and_fileids() {
        use nfstrace_nfs::v3::*;
        let fh = FileHandle::from_u64(1);
        let counters = DowngradeCounters::default();

        let call = Call3::Readdir(Readdir3Args {
            dir: fh.clone(),
            cookie: u64::from(u32::MAX) + 6, // would truncate to 5
            cookieverf: [0; 8],
            count: 512,
        });
        match call3_to_v2(&call, &counters) {
            Call2::Readdir { cookie, .. } => assert_eq!(cookie, u32::MAX),
            other => panic!("unexpected downgrade: {other:?}"),
        }
        assert_eq!(counters.snapshot().saturated_cookies, 1);

        // An in-range cookie passes through exactly and counts nothing.
        let small = Call3::Readdirplus(Readdirplus3Args {
            dir: fh,
            cookie: 7,
            cookieverf: [0; 8],
            dircount: 100,
            maxcount: 200,
        });
        match call3_to_v2(&small, &counters) {
            Call2::Readdir { cookie, .. } => assert_eq!(cookie, 7),
            other => panic!("unexpected downgrade: {other:?}"),
        }
        assert_eq!(counters.snapshot().saturated_cookies, 1);

        let reply = Reply3 {
            status: NfsStat3::Ok,
            body: Reply3Body::Readdir(Readdir3Res {
                dir_attributes: None,
                cookieverf: [0; 8],
                entries: vec![
                    DirEntry3 {
                        fileid: u64::from(u32::MAX) + 2,
                        name: "wide".into(),
                        cookie: u64::from(u32::MAX) + 3,
                    },
                    DirEntry3 {
                        fileid: 42,
                        name: "narrow".into(),
                        cookie: 43,
                    },
                ],
                eof: true,
            }),
        };
        match reply3_to_v2(&call, &reply, &counters) {
            Reply2::Readdir { entries, .. } => {
                assert_eq!((entries[0].fileid, entries[0].cookie), (u32::MAX, u32::MAX));
                assert_eq!((entries[1].fileid, entries[1].cookie), (42, 43));
            }
            other => panic!("unexpected downgrade: {other:?}"),
        }
        let stats = counters.snapshot();
        assert_eq!(stats.saturated_fileids, 1);
        assert_eq!(stats.saturated_cookies, 2);
        assert_eq!(stats.total(), 3);
    }
}
