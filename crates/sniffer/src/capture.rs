//! The sniffer: packets in, paired trace records out.
//!
//! Mirrors the paper's tool: parse each frame down to its transport
//! payload; for UDP every datagram is one RPC message; for TCP,
//! reassemble the byte stream per directed flow and split RPC records
//! out of it (tolerating coalescing and out-of-order segments); decode
//! the RPC envelope; decode NFS call arguments by program/version/
//! procedure; hold calls in an XID table; and on each reply, pair and
//! flatten into a [`TraceRecord`]. Packet loss surfaces as unmatched
//! calls and orphan replies, which are counted exactly as §4.1.4
//! describes.
//!
//! # Zero-copy wire path
//!
//! Every stage between the captured frame and the final record works
//! on borrowed bytes: [`PacketView`] peels headers without copying the
//! payload, the per-flow [`RecordReader`] hands out records as slices
//! of the reassembled stream, the RPC envelope is read through
//! [`RpcMessageView`], and NFS calls and replies decode through the
//! borrowed view / streamed-facts types. Owned data is materialized
//! exactly once, at the [`TraceRecord`] itself: file names at call
//! time, and nothing at reply time. In steady state (contiguous TCP
//! segments, records inside one segment) a paired call/reply performs
//! no heap allocation beyond the record's own name strings, and
//! [`SnifferStats::alloc_fallbacks`] counts the records that needed
//! the scratch-assembly slow path.

use crate::convert::{v2_apply_facts, v2_call_record, v3_apply_facts, v3_call_record, CallMeta};
use nfstrace_core::record::TraceRecord;
use nfstrace_net::packet::{PacketView, Transport};
use nfstrace_net::pcap::CapturedPacket;
use nfstrace_net::reassembly::StreamReassembler;
use nfstrace_nfs::v2::{Call2View, Proc2, ReplyFacts2};
use nfstrace_nfs::v3::{Call3View, Proc3, ReplyFacts3};
use nfstrace_rpc::record::RecordReader;
use nfstrace_rpc::xid::{FlowXid, XidMatcher};
use nfstrace_rpc::{MsgBodyView, RpcMessageView, PROG_NFS};
use nfstrace_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;

/// How long a call waits for its reply before being counted lost.
const CALL_TIMEOUT_MICROS: u64 = 120 * 1_000_000;

/// Bytes parked behind a TCP gap before the gap is declared a real
/// loss and abandoned.
const GAP_SKIP_THRESHOLD: u64 = 32 * 1024;

/// Finds the first plausible RPC record boundary in post-gap stream
/// bytes: a record mark with a sane length followed by an RPC header
/// whose message type is CALL or REPLY. The paper's tools resynchronize
/// the same way after losing packets through the mirror port.
///
/// The mark's last-fragment bit may be *clear*: a record large enough to
/// be split into fragments (RFC 1831 §10) opens with a non-final mark,
/// and demanding the bit would skip every such record — landing inside
/// it instead and losing it. With the bit no longer discriminating, the
/// fourth word doubles as a check: a CALL's rpcvers is 2 and a REPLY's
/// reply_stat is 0 or 1, so anything above 2 there is mid-record data.
fn resync_offset(bytes: &[u8]) -> usize {
    let take4 = |at: usize| -> Option<u32> {
        bytes
            .get(at..at + 4)
            .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    };
    let mut at = 0;
    while at + 16 <= bytes.len() {
        if let (Some(mark), Some(mtype), Some(vers_or_stat)) =
            (take4(at), take4(at + 8), take4(at + 12))
        {
            let len = (mark & 0x7fff_ffff) as usize;
            if (16..1 << 20).contains(&len) && mtype <= 1 && vers_or_stat <= 2 {
                return at;
            }
        }
        at += 4; // records are XDR-aligned in our streams
    }
    bytes.len()
}

/// A snapshot of the counters describing a capture session.
///
/// The authoritative storage is the set of `sniffer.*` counters in
/// the sniffer's [`Registry`] ([`Sniffer::with_registry`]); this
/// struct is a point-in-time read of them ([`Sniffer::stats`]), so
/// the values a test asserts and the values a daemon exports come
/// from the same cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnifferStats {
    /// Frames observed.
    pub frames: u64,
    /// Frames that failed to parse (non-IP, truncated, non-NFS port).
    pub ignored_frames: u64,
    /// RPC messages decoded.
    pub rpc_messages: u64,
    /// RPC decode failures (corrupt or partial messages).
    pub decode_errors: u64,
    /// NFS calls seen.
    pub calls: u64,
    /// Replies paired with calls.
    pub matched_replies: u64,
    /// Replies whose call was never captured (call lost).
    pub orphan_replies: u64,
    /// Calls that never saw a reply (reply lost).
    pub lost_replies: u64,
    /// Bytes skipped over TCP stream gaps.
    pub tcp_bytes_lost: u64,
    /// Frames that parsed down to an NFS-port transport payload
    /// (`frames` minus `ignored_frames`).
    pub frames_decoded: u64,
    /// RPC record bytes handed to the envelope decoder, whether or not
    /// they decoded.
    pub bytes_decoded: u64,
    /// Trace records produced from paired call/reply messages.
    pub records_emitted: u64,
    /// RPC records that could not be served as a borrowed slice of the
    /// reassembled stream and were assembled in the reader's scratch
    /// buffer instead (multi-fragment records, or records split across
    /// segment boundaries). Zero on a well-behaved single-segment feed;
    /// a high ratio against `rpc_messages` means the capture is paying
    /// for copies.
    pub alloc_fallbacks: u64,
}

impl SnifferStats {
    /// The §4.1.4 loss estimate: unmatched messages over all messages.
    pub fn estimated_loss_rate(&self) -> f64 {
        let total = self.calls + self.matched_replies + self.orphan_replies;
        if total == 0 {
            0.0
        } else {
            (self.orphan_replies + self.lost_replies) as f64 / total as f64
        }
    }
}

/// Which protocol version a pending call used, for decoding its reply.
#[derive(Debug, Clone, Copy)]
enum ProcKind {
    V3(Proc3),
    V2(Proc2),
}

/// A call awaiting its reply. The trace record is already built from
/// the borrowed call view — names materialized, reply-side fields at
/// their defaults — so pairing a reply only patches scalar fields in.
#[derive(Debug)]
struct Pending {
    proc: ProcKind,
    record: TraceRecord,
}

type FlowKey = (u32, u32, u16, u16);

/// The transport addresses of one frame: the only per-packet state the
/// RPC layer needs, small enough to copy past the payload borrow.
#[derive(Debug, Clone, Copy)]
struct FlowAddrs {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
}

/// Everything downstream of TCP reassembly: RPC envelope decode, the
/// XID table, record building, and counters. Split from the per-flow
/// stream state so a record slice borrowed from a [`RecordReader`] can
/// be decoded in place while this half is mutated.
#[derive(Debug)]
struct Engine {
    matcher: XidMatcher<Pending>,
    records: Vec<TraceRecord>,
    metrics: SnifferMetrics,
    /// Latest frame timestamp observed (capture feeds are in time
    /// order), half of the [`Sniffer::drain_ready`] watermark.
    last_frame_micros: u64,
}

/// Registry handles for the `sniffer.*` metrics, resolved once at
/// construction: each per-frame/per-record bump is a single relaxed
/// atomic add — lock-free and allocation-free, which the alloc-budget
/// test holds the whole record path to.
#[derive(Debug, Clone)]
struct SnifferMetrics {
    frames: Counter,
    ignored_frames: Counter,
    rpc_messages: Counter,
    decode_errors: Counter,
    calls: Counter,
    matched_replies: Counter,
    orphan_replies: Counter,
    lost_replies: Counter,
    tcp_bytes_lost: Counter,
    frames_decoded: Counter,
    bytes_decoded: Counter,
    records_emitted: Counter,
    alloc_fallbacks: Counter,
    loss_rate: Gauge,
}

impl SnifferMetrics {
    fn register(registry: &Registry) -> Self {
        SnifferMetrics {
            frames: registry.counter("sniffer.frames"),
            ignored_frames: registry.counter("sniffer.ignored_frames"),
            rpc_messages: registry.counter("sniffer.rpc_messages"),
            decode_errors: registry.counter("sniffer.decode_errors"),
            calls: registry.counter("sniffer.calls"),
            matched_replies: registry.counter("sniffer.matched_replies"),
            orphan_replies: registry.counter("sniffer.orphan_replies"),
            lost_replies: registry.counter("sniffer.lost_replies"),
            tcp_bytes_lost: registry.counter("sniffer.tcp_bytes_lost"),
            frames_decoded: registry.counter("sniffer.frames_decoded"),
            bytes_decoded: registry.counter("sniffer.bytes_decoded"),
            records_emitted: registry.counter("sniffer.records_emitted"),
            alloc_fallbacks: registry.counter("sniffer.alloc_fallbacks"),
            loss_rate: registry.gauge("sniffer.estimated_loss_rate"),
        }
    }

    /// Read every counter into a [`SnifferStats`] snapshot and
    /// refresh the `sniffer.estimated_loss_rate` gauge.
    fn snapshot(&self) -> SnifferStats {
        let stats = SnifferStats {
            frames: self.frames.value(),
            ignored_frames: self.ignored_frames.value(),
            rpc_messages: self.rpc_messages.value(),
            decode_errors: self.decode_errors.value(),
            calls: self.calls.value(),
            matched_replies: self.matched_replies.value(),
            orphan_replies: self.orphan_replies.value(),
            lost_replies: self.lost_replies.value(),
            tcp_bytes_lost: self.tcp_bytes_lost.value(),
            frames_decoded: self.frames_decoded.value(),
            bytes_decoded: self.bytes_decoded.value(),
            records_emitted: self.records_emitted.value(),
            alloc_fallbacks: self.alloc_fallbacks.value(),
        };
        self.loss_rate.set(stats.estimated_loss_rate());
        stats
    }
}

/// The passive tracer.
#[derive(Debug)]
pub struct Sniffer {
    streams: HashMap<FlowKey, (StreamReassembler, RecordReader)>,
    engine: Engine,
}

impl Default for Sniffer {
    fn default() -> Self {
        Self::new()
    }
}

impl Sniffer {
    /// Creates a sniffer counting into a private registry.
    pub fn new() -> Self {
        Self::with_registry(&Registry::new())
    }

    /// Like [`Sniffer::new`], but counts into `registry`: the
    /// `sniffer.*` metrics, plus the XID table's `rpc.xid.*` metrics
    /// (the same registry is handed down to the matcher). A daemon
    /// passes its shared registry here so the capture layer shows up
    /// in the unified export.
    pub fn with_registry(registry: &Registry) -> Self {
        Sniffer {
            streams: HashMap::new(),
            engine: Engine {
                matcher: XidMatcher::with_registry(CALL_TIMEOUT_MICROS, registry),
                records: Vec::new(),
                metrics: SnifferMetrics::register(registry),
                last_frame_micros: 0,
            },
        }
    }

    /// Observes one captured packet.
    pub fn observe(&mut self, pkt: &CapturedPacket) {
        self.observe_frame(pkt.timestamp_micros, &pkt.data);
    }

    /// Observes a batch of captured packets.
    ///
    /// Equivalent to calling [`Sniffer::observe`] on each in order;
    /// batching keeps the per-flow stream state and the decode tables
    /// hot across packets, which is how the live capture path hands
    /// frames over.
    pub fn observe_batch(&mut self, packets: &[CapturedPacket]) {
        for p in packets {
            self.observe_frame(p.timestamp_micros, &p.data);
        }
    }

    /// Observes one raw frame at `ts` microseconds.
    pub fn observe_frame(&mut self, ts: u64, frame: &[u8]) {
        self.engine.metrics.frames.inc();
        self.engine.last_frame_micros = self.engine.last_frame_micros.max(ts);
        let Ok(pkt) = PacketView::parse(frame) else {
            self.engine.metrics.ignored_frames.inc();
            return;
        };
        // Only NFS traffic is interesting.
        if pkt.src_port != 2049 && pkt.dst_port != 2049 {
            self.engine.metrics.ignored_frames.inc();
            return;
        }
        self.engine.metrics.frames_decoded.inc();
        let addrs = FlowAddrs {
            src_ip: pkt.src_ip.as_u32(),
            dst_ip: pkt.dst_ip.as_u32(),
            src_port: pkt.src_port,
            dst_port: pkt.dst_port,
        };
        match pkt.transport {
            Transport::Udp => {
                // One datagram is one RPC message, decoded straight out
                // of the frame.
                self.engine.on_rpc_bytes(addrs, ts, pkt.payload, false);
            }
            Transport::Tcp { seq, .. } => {
                let key: FlowKey = (addrs.src_ip, addrs.dst_ip, addrs.src_port, addrs.dst_port);
                let (reasm, reader) = self
                    .streams
                    .entry(key)
                    .or_insert_with(|| (StreamReassembler::new(seq), RecordReader::new()));
                let engine = &mut self.engine;
                reasm.push(seq, pkt.payload);
                reader.push(reasm.read_available());
                loop {
                    // Drain every complete record first, decoding each
                    // in place as a slice of the reader's buffers.
                    loop {
                        match reader.next_record_ref() {
                            Ok(Some(rec)) => {
                                engine.on_rpc_bytes(addrs, ts, rec.bytes, rec.assembled)
                            }
                            Ok(None) => break,
                            Err(_) => {
                                engine.metrics.decode_errors.inc();
                                reader.reset();
                                break;
                            }
                        }
                    }
                    // A gap with substantial data parked behind it means
                    // the mirror port really dropped segments: abandon
                    // the gap (losing the record that spanned it) and
                    // resynchronize on the next plausible record mark.
                    if reasm.has_gap() && reasm.pending_bytes() > GAP_SKIP_THRESHOLD {
                        engine.metrics.tcp_bytes_lost.add(reasm.skip_gap());
                        reader.reset();
                        let more = reasm.read_available();
                        let at = resync_offset(more);
                        engine.metrics.tcp_bytes_lost.add(at as u64);
                        reader.push(&more[at..]);
                        continue;
                    }
                    break;
                }
            }
        }
    }

    /// Current statistics: a read of the `sniffer.*` counters (also
    /// refreshes the `sniffer.estimated_loss_rate` gauge).
    pub fn stats(&self) -> SnifferStats {
        self.engine.metrics.snapshot()
    }

    /// Drains the records that are *final*: no frame observed from now
    /// on can produce a record that sorts before (or ties with) them.
    ///
    /// A record is stamped with its **call's** capture time, so the
    /// watermark is the minimum of the oldest still-outstanding call
    /// and the latest frame timestamp; records strictly below it are
    /// returned time-sorted, the rest stay buffered. Calls that have
    /// outwaited the reply timeout are expired first (counted as lost,
    /// exactly as `finish` counts them) — otherwise one lost reply
    /// would pin the watermark forever and a months-long live capture
    /// would silently buffer everything after it. Interleaving any
    /// number of `drain_ready` calls with [`Sniffer::finish`] yields —
    /// concatenated — exactly the record sequence a single `finish`
    /// would have returned (a reply arriving beyond the 120 s call
    /// timeout pairs in a one-shot capture but counts lost here, as it
    /// would in any capture whose drains run on time), which is what
    /// lets a live ingest consume a capture incrementally instead of
    /// buffering it whole. Frames
    /// must be observed in nondecreasing timestamp order (capture
    /// feeds are).
    pub fn drain_ready(&mut self) -> Vec<TraceRecord> {
        let mut ready = Vec::new();
        self.drain_ready_into(&mut ready);
        ready
    }

    /// [`Sniffer::drain_ready`] into a caller-owned buffer, appending —
    /// the batched hand-off: a live ingest loop reuses one buffer
    /// across drains instead of allocating a fresh `Vec` per poll.
    pub fn drain_ready_into(&mut self, out: &mut Vec<TraceRecord>) {
        // An expired call's late reply is rejected as an orphan, so no
        // record can ever be produced from it: the watermark may move
        // past it.
        let expired = self.engine.matcher.expire();
        self.engine.metrics.lost_replies.add(expired.len() as u64);
        let watermark = self
            .engine
            .matcher
            .oldest_pending_micros()
            .unwrap_or(u64::MAX)
            .min(self.engine.last_frame_micros);
        // Stable: equal timestamps keep pairing order, exactly as the
        // whole-capture sort in `finish` orders them. Sorting the kept
        // tail too is harmless — a stable re-sort of sorted data is the
        // identity — and makes the ready prefix a single drain.
        self.engine.records.sort_by_key(|r| r.micros);
        let cut = self
            .engine
            .records
            .partition_point(|r| r.micros < watermark);
        out.extend(self.engine.records.drain(..cut));
    }

    /// Ends the capture: expires outstanding calls (counted as lost
    /// replies) and returns the time-sorted records plus statistics.
    ///
    /// After [`Sniffer::drain_ready`] calls, this returns only the
    /// not-yet-drained tail — `finish` is the final drain.
    pub fn finish(self) -> (Vec<TraceRecord>, SnifferStats) {
        let mut engine = self.engine;
        let lost = engine.matcher.drain();
        engine.metrics.lost_replies.add(lost.len() as u64);
        engine.records.sort_by_key(|r| r.micros);
        let stats = engine.metrics.snapshot();
        (engine.records, stats)
    }
}

impl Engine {
    /// Decodes one RPC record (a UDP datagram's payload or one record
    /// split out of a TCP stream), borrowed from the capture buffers.
    ///
    /// `assembled` marks bytes that had to be copied into the record
    /// reader's scratch buffer first; it only feeds the
    /// [`SnifferStats::alloc_fallbacks`] counter.
    fn on_rpc_bytes(&mut self, addrs: FlowAddrs, ts: u64, bytes: &[u8], assembled: bool) {
        self.metrics.bytes_decoded.add(bytes.len() as u64);
        if assembled {
            self.metrics.alloc_fallbacks.inc();
        }
        let Ok(msg) = RpcMessageView::decode(bytes) else {
            self.metrics.decode_errors.inc();
            return;
        };
        self.metrics.rpc_messages.inc();
        match msg.body {
            MsgBodyView::Call(call) => {
                if call.prog != PROG_NFS {
                    return;
                }
                let (uid, gid) = call.cred.unix_uid_gid().unwrap_or((0, 0));
                let meta = CallMeta {
                    wire_micros: ts,
                    reply_micros: 0,
                    xid: msg.xid,
                    client: addrs.src_ip,
                    server: addrs.dst_ip,
                    uid,
                    gid,
                    vers: call.vers as u8,
                };
                let pending = match call.vers {
                    3 => {
                        let decoded = Proc3::from_u32(call.proc)
                            .and_then(|p| Call3View::decode(p, call.args).map(|v| (p, v)));
                        match decoded {
                            Ok((proc, view)) => Pending {
                                proc: ProcKind::V3(proc),
                                record: v3_call_record(&meta, &view),
                            },
                            Err(_) => {
                                self.metrics.decode_errors.inc();
                                return;
                            }
                        }
                    }
                    2 => {
                        let decoded = Proc2::from_u32(call.proc)
                            .and_then(|p| Call2View::decode(p, call.args).map(|v| (p, v)));
                        match decoded {
                            Ok((proc, view)) => Pending {
                                proc: ProcKind::V2(proc),
                                record: v2_call_record(&meta, &view),
                            },
                            Err(_) => {
                                self.metrics.decode_errors.inc();
                                return;
                            }
                        }
                    }
                    _ => return,
                };
                self.metrics.calls.inc();
                let key = FlowXid {
                    client_ip: addrs.src_ip,
                    server_ip: addrs.dst_ip,
                    client_port: addrs.src_port,
                    xid: msg.xid,
                };
                self.matcher.insert_call(key, ts, pending);
            }
            MsgBodyView::Reply(reply) => {
                let key = FlowXid {
                    client_ip: addrs.dst_ip,
                    server_ip: addrs.src_ip,
                    client_port: addrs.dst_port,
                    xid: msg.xid,
                };
                let Some(pending) = self.matcher.match_reply(key, ts) else {
                    // "It is impossible to decode an NFS response without
                    // seeing the call."
                    self.metrics.orphan_replies.inc();
                    return;
                };
                self.metrics.matched_replies.inc();
                let mut record = pending.data.record;
                let decoded = match pending.data.proc {
                    ProcKind::V3(proc) => ReplyFacts3::decode(proc, reply.results)
                        .map(|facts| v3_apply_facts(&mut record, ts, &facts)),
                    ProcKind::V2(proc) => ReplyFacts2::decode(proc, reply.results)
                        .map(|facts| v2_apply_facts(&mut record, ts, &facts)),
                };
                match decoded {
                    Ok(()) => {
                        self.records.push(record);
                        self.metrics.records_emitted.inc();
                    }
                    Err(_) => self.metrics.decode_errors.inc(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::v3_to_record;
    use crate::wire::WireEncoder;
    use nfstrace_client::{ClientConfig, ClientMachine, EmittedCall};
    use nfstrace_fssim::NfsServer;
    use nfstrace_net::packet::DecodedPacket;
    use nfstrace_rpc::RpcMessage;
    use nfstrace_xdr::Pack;

    /// A short client session's events.
    fn session_events(vers: u8) -> Vec<EmittedCall> {
        let mut server = NfsServer::new(0x0a000002);
        let root = server.root_fh();
        let mut client = ClientMachine::new(ClientConfig {
            nfsiods: 1,
            vers,
            ..ClientConfig::default()
        });
        let (fh, t) = client.create(&mut server, 0, &root, "inbox");
        let fh = fh.unwrap();
        let t = client.write(&mut server, t, &fh, 0, 100_000);
        server
            .fs_mut()
            .write(fh.as_u64().unwrap(), 100_000, 5_000, t + 1)
            .unwrap();
        let t = client.read_file(&mut server, t + 40_000_000, &fh);
        client.remove(&mut server, t, &root, "inbox");
        client.take_events()
    }

    fn sniff(packets: &[CapturedPacket]) -> (Vec<TraceRecord>, SnifferStats) {
        let mut s = Sniffer::new();
        for p in packets {
            s.observe(p);
        }
        s.finish()
    }

    #[test]
    fn udp_pipeline_reproduces_direct_records() {
        let events = session_events(3);
        let mut enc = WireEncoder::udp();
        let mut packets = Vec::new();
        for e in &events {
            packets.extend(enc.encode_event(e));
        }
        let (records, stats) = sniff(&packets);
        assert_eq!(stats.calls, events.len() as u64);
        assert_eq!(stats.matched_replies, events.len() as u64);
        assert_eq!(stats.orphan_replies, 0);
        assert_eq!(records.len(), events.len());

        // Compare against the direct (fast-path) conversion.
        let direct: Vec<TraceRecord> = {
            let mut v: Vec<TraceRecord> = events
                .iter()
                .map(|e| {
                    let meta = CallMeta {
                        wire_micros: e.wire_micros,
                        reply_micros: e.reply_micros,
                        xid: e.xid,
                        client: e.client_ip,
                        server: e.server_ip,
                        uid: e.uid,
                        gid: e.gid,
                        vers: e.vers,
                    };
                    v3_to_record(&meta, &e.call, &e.reply)
                })
                .collect();
            v.sort_by_key(|r| r.micros);
            v
        };
        assert_eq!(records, direct);
    }

    #[test]
    fn tcp_pipeline_with_coalescing_and_reordering() {
        let events = session_events(3);
        let mut enc = WireEncoder::tcp_jumbo();
        let mut packets = Vec::new();
        for e in &events {
            packets.extend(enc.encode_event(e));
        }
        // Swap adjacent same-direction segments to exercise reassembly
        // (a reply can never precede its call at a single capture point,
        // so only like-direction swaps are physical).
        let mut i = 2;
        while i + 1 < packets.len() {
            let a = DecodedPacket::parse(&packets[i].data).unwrap().src_port;
            let b = DecodedPacket::parse(&packets[i + 1].data).unwrap().src_port;
            if i % 5 == 0 && a == b {
                packets.swap(i, i + 1);
            }
            i += 1;
        }
        let (records, stats) = sniff(&packets);
        assert_eq!(records.len(), events.len());
        assert_eq!(stats.orphan_replies, 0);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn v2_pipeline_produces_v2_records() {
        let events = session_events(2);
        let mut enc = WireEncoder::udp();
        let mut packets = Vec::new();
        for e in &events {
            packets.extend(enc.encode_event(e));
        }
        let (records, stats) = sniff(&packets);
        assert!(stats.decode_errors == 0);
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.vers == 2));
        // The write and read still carry their byte ranges.
        assert!(records.iter().any(|r| r.op.is_write() && r.count > 0));
    }

    #[test]
    fn dropped_call_counts_orphan_reply() {
        let events = session_events(3);
        let mut enc = WireEncoder::udp();
        let mut packets = Vec::new();
        for e in &events {
            packets.extend(enc.encode_event(e));
        }
        // Drop the first call packet (even index = call in UDP mode).
        packets.remove(0);
        let (records, stats) = sniff(&packets);
        assert_eq!(stats.orphan_replies, 1);
        assert_eq!(records.len(), events.len() - 1);
        assert!(stats.estimated_loss_rate() > 0.0);
    }

    #[test]
    fn dropped_reply_counts_lost_reply() {
        let events = session_events(3);
        let mut enc = WireEncoder::udp();
        let mut packets = Vec::new();
        for e in &events {
            packets.extend(enc.encode_event(e));
        }
        packets.remove(1); // first reply
        let (records, stats) = sniff(&packets);
        assert_eq!(stats.lost_replies, 1);
        assert_eq!(records.len(), events.len() - 1);
    }

    #[test]
    fn incremental_drain_equals_one_shot_finish() {
        let events = session_events(3);
        let mut enc = WireEncoder::tcp_jumbo();
        let packets: Vec<CapturedPacket> =
            events.iter().flat_map(|e| enc.encode_event(e)).collect();
        let (full, full_stats) = sniff(&packets);

        // Drain after every few packets instead of buffering the whole
        // capture; the concatenation must be identical.
        for stride in [1usize, 3, 7, packets.len()] {
            let mut s = Sniffer::new();
            let mut streamed: Vec<TraceRecord> = Vec::new();
            for (i, p) in packets.iter().enumerate() {
                s.observe(p);
                if (i + 1) % stride == 0 {
                    streamed.extend(s.drain_ready());
                }
            }
            let (tail, stats) = s.finish();
            streamed.extend(tail);
            assert_eq!(streamed, full, "stride={stride}");
            assert_eq!(stats, full_stats, "stride={stride}");
        }
    }

    #[test]
    fn drain_ready_holds_records_that_could_still_be_preceded() {
        let events = session_events(3);
        let mut enc = WireEncoder::udp();
        let mut packets: Vec<CapturedPacket> = Vec::new();
        for e in &events {
            packets.extend(enc.encode_event(e));
        }
        let mut s = Sniffer::new();
        // Feed every call/reply except the final reply: that last call
        // stays outstanding, pinning the watermark at its call time.
        for p in &packets[..packets.len() - 1] {
            s.observe(p);
        }
        let pinned = s.drain_ready();
        let drained_max = pinned.iter().map(|r| r.micros).max().unwrap_or(0);
        // Nothing at or beyond the outstanding call's stamp was drained.
        let last = events.last().expect("events");
        assert!(drained_max < last.wire_micros);
        // The rest arrives once the capture completes.
        s.observe(&packets[packets.len() - 1]);
        let mut all = pinned;
        all.extend(s.drain_ready());
        let (tail, _) = s.finish();
        all.extend(tail);
        assert_eq!(all.len(), events.len());
        assert!(all.windows(2).all(|w| w[0].micros <= w[1].micros));
    }

    #[test]
    fn lost_reply_does_not_pin_the_drain_watermark() {
        let events = session_events(3);
        assert!(events.len() >= 3);
        let mut enc = WireEncoder::udp();
        // Per event, UDP encodes [call, reply].
        let pairs: Vec<Vec<CapturedPacket>> = events.iter().map(|e| enc.encode_event(e)).collect();
        let mut s = Sniffer::new();
        // Event 0 at t=0 loses its reply forever.
        let mut p = pairs[0][0].clone();
        p.timestamp_micros = 0;
        s.observe(&p);
        // Event 1 completes far beyond the 120 s call timeout.
        for (i, pkt) in pairs[1].iter().enumerate() {
            let mut p = pkt.clone();
            p.timestamp_micros = 200_000_000 + i as u64;
            s.observe(&p);
        }
        // Event 2's call (still awaiting its reply) holds the watermark
        // at 400 s.
        let mut p = pairs[2][0].clone();
        p.timestamp_micros = 400_000_000;
        s.observe(&p);

        let drained = s.drain_ready();
        assert_eq!(
            drained.len(),
            1,
            "the completed pair must drain — a lost reply must not pin the watermark at its call"
        );
        assert_eq!(drained[0].micros, 200_000_000);
        assert_eq!(s.stats().lost_replies, 1, "the expired call counts lost");
    }

    /// A long-lived TCP flow eventually wraps its 32-bit sequence space;
    /// both stream directions here cross `u32::MAX` mid-session and must
    /// reassemble without a gap, producing the same records as a flow
    /// that started at sequence 1.
    #[test]
    fn tcp_sequence_wraparound_reassembles_without_gap() {
        let events = session_events(3);
        let mut enc = WireEncoder::tcp_standard();
        let packets: Vec<CapturedPacket> =
            events.iter().flat_map(|e| enc.encode_event(e)).collect();
        let (reference, _) = sniff(&packets);

        // ~100 KB flows each way; starting 9 KB below the top forces the
        // wrap a few records in.
        let mut enc = WireEncoder::tcp_standard().with_initial_seq(u32::MAX - 9_000);
        let packets: Vec<CapturedPacket> =
            events.iter().flat_map(|e| enc.encode_event(e)).collect();
        let (records, stats) = sniff(&packets);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.tcp_bytes_lost, 0, "wrap must not look like a gap");
        assert_eq!(stats.orphan_replies, 0);
        assert_eq!(stats.lost_replies, 0);
        assert_eq!(records.len(), events.len());
        assert_eq!(records, reference);
    }

    #[test]
    fn resync_accepts_non_final_fragment_marks() {
        use crate::wire::{build_rpc_pair, DowngradeCounters};
        use nfstrace_rpc::record::mark_record_fragmented;
        let events = session_events(3);
        let (call_msg, _) = build_rpc_pair(&events[0], &DowngradeCounters::default());
        let call_bytes = call_msg.to_xdr_bytes();
        assert!(call_bytes.len() > 40, "need a multi-fragment record");

        // Garbage that can never look like a boundary, then a record
        // whose *first* mark is a non-final fragment.
        let mut stream = vec![0xff_u8; 8];
        stream.extend_from_slice(&mark_record_fragmented(&call_bytes, 40));
        assert_eq!(resync_offset(&stream), 8);
    }

    /// A dropped segment ages out the reassembly gap; the stream resumes
    /// exactly at a record that opens with a *non-final* fragment mark.
    /// Resync must land on it — the old heuristic demanded the
    /// last-fragment bit and skipped into the record instead, losing it.
    #[test]
    fn gap_resync_lands_on_fragmented_record() {
        use crate::wire::{build_rpc_pair, DowngradeCounters};
        use nfstrace_net::ethernet::MacAddr;
        use nfstrace_net::ipv4::Ipv4Addr4;
        use nfstrace_net::packet::PacketBuilder;
        use nfstrace_rpc::record::{mark_record, mark_record_fragmented};

        let events = session_events(3);
        assert!(events.len() >= 4);
        let narrowings = DowngradeCounters::default();
        let pairs: Vec<(RpcMessage, RpcMessage)> = events
            .iter()
            .map(|e| build_rpc_pair(e, &narrowings))
            .collect();
        let call_bytes: Vec<Vec<u8>> = pairs.iter().map(|(c, _)| c.to_xdr_bytes()).collect();

        // Client→server stream: record 0 intact; record 1 entirely inside
        // the dropped segment; record 2 fragmented; the rest plain —
        // enough parked bytes to age the gap out mid-stream.
        let r0 = mark_record(&call_bytes[0]);
        let lost = mark_record(&call_bytes[1]);
        let mut tail = mark_record_fragmented(&call_bytes[2], 1000);
        for cb in &call_bytes[3..] {
            tail.extend_from_slice(&mark_record(cb));
        }
        assert!(
            tail.len() as u64 > GAP_SKIP_THRESHOLD,
            "the post-gap stream must be big enough to trigger the skip"
        );

        let client = Ipv4Addr4::new(10, 0, 0, 1);
        let server = Ipv4Addr4::new(10, 0, 0, 2);
        let (cmac, smac) = (MacAddr::new([2; 6]), MacAddr::new([4; 6]));
        let sport = 777_u16;
        let mut s = Sniffer::new();
        let mut ts = 0_u64;
        let frame = PacketBuilder::tcp(cmac, smac, client, server, sport, 2049, 1, r0.clone());
        s.observe_frame(ts, &frame);
        // The `lost` record's segment is never observed; everything after
        // it arrives in order and parks behind the gap.
        let mut seq = 1_u32 + (r0.len() + lost.len()) as u32;
        for chunk in tail.chunks(1448) {
            ts += 1;
            let frame =
                PacketBuilder::tcp(cmac, smac, client, server, sport, 2049, seq, chunk.to_vec());
            s.observe_frame(ts, &frame);
            seq = seq.wrapping_add(chunk.len() as u32);
        }
        // All replies (including the lost call's, now an orphan) as UDP.
        for (i, (_, reply)) in pairs.iter().enumerate() {
            let frame = PacketBuilder::udp(
                smac,
                cmac,
                server,
                client,
                2049,
                sport,
                reply.to_xdr_bytes(),
            );
            s.observe_frame(10_000 + i as u64, &frame);
        }

        let (records, stats) = s.finish();
        assert_eq!(stats.decode_errors, 0, "the fragmented record must decode");
        assert_eq!(stats.calls, events.len() as u64 - 1);
        assert_eq!(stats.matched_replies, events.len() as u64 - 1);
        assert_eq!(stats.orphan_replies, 1);
        assert_eq!(records.len(), events.len() - 1);
        // Exactly the dropped record's bytes were lost: the resync found
        // the very first post-gap byte (the non-final fragment mark).
        assert_eq!(stats.tcp_bytes_lost, lost.len() as u64);
    }

    #[test]
    fn non_nfs_traffic_ignored() {
        use nfstrace_net::ethernet::MacAddr;
        use nfstrace_net::ipv4::Ipv4Addr4;
        use nfstrace_net::packet::PacketBuilder;
        let frame = PacketBuilder::udp(
            MacAddr::new([0; 6]),
            MacAddr::new([1; 6]),
            Ipv4Addr4::new(1, 1, 1, 1),
            Ipv4Addr4::new(2, 2, 2, 2),
            53,
            53,
            b"dns".to_vec(),
        );
        let mut s = Sniffer::new();
        s.observe_frame(0, &frame);
        s.observe_frame(1, b"garbage");
        let (records, stats) = s.finish();
        assert!(records.is_empty());
        assert_eq!(stats.ignored_frames, 2);
    }
}
