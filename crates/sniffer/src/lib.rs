//! The passive NFS tracer.
//!
//! This crate is the paper's tracing tool (§2): it watches raw packets
//! (live from a mirror port in the original; from the simulator or a
//! pcap file here), decodes Ethernet/IPv4/UDP/TCP, reassembles TCP
//! streams and splits RPC records out of them, pairs every NFS reply
//! with its call by XID, and emits analysis-ready
//! [`nfstrace_core::TraceRecord`]s. It "can handle any combination of
//! NFSv2 and NFSv3, TCP or UDP transport, gigabit Ethernet, and jumbo
//! frames", tolerates packet loss (counting unmatched calls and
//! replies, §4.1.4), and TCP packet coalescing.
//!
//! - [`wire`]: the inverse path, encoding simulated call/reply events
//!   into real packets — what puts honest bytes on the simulated wire.
//! - [`capture`]: the sniffer itself.
//! - [`convert`]: the canonical call/reply → record flattening shared
//!   with the fast (non-wire) simulation path.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod capture;
pub mod convert;
pub mod wire;

pub use capture::{Sniffer, SnifferStats};
pub use convert::{v2_to_record, v3_to_record, CallMeta};
pub use wire::WireEncoder;
