//! End-to-end property tests for the zero-copy capture pipeline.
//!
//! A reference pipeline decodes every frame through the *owned* types
//! ([`RpcMessage`], [`Call3`]/[`Call2`], [`Reply3`]/[`Reply2`]) and
//! flattens with the canonical [`v3_to_record`]/[`v2_to_record`]; the
//! sniffer runs the borrowed fast path. Over arbitrary truncations and
//! corruptions of a valid capture the two must agree record-for-record
//! and counter-for-counter: a mangled frame may be dropped and counted
//! as a decode error, an orphan, or a lost reply, but it can never
//! flatten into a wrong record.

use std::collections::HashMap;
use std::sync::OnceLock;

use nfstrace_client::{ClientConfig, ClientMachine};
use nfstrace_core::record::TraceRecord;
use nfstrace_fssim::NfsServer;
use nfstrace_net::ethernet::MacAddr;
use nfstrace_net::ipv4::Ipv4Addr4;
use nfstrace_net::packet::PacketBuilder;
use nfstrace_nfs::v2::{Call2, Proc2, Reply2};
use nfstrace_nfs::v3::{Call3, Proc3, Reply3};
use nfstrace_rpc::{MsgBody, RpcMessage, PROG_NFS};
use nfstrace_sniffer::wire::{build_rpc_pair, DowngradeCounters};
use nfstrace_sniffer::{v2_to_record, v3_to_record, CallMeta, Sniffer};
use nfstrace_xdr::{Pack, Unpack};
use proptest::prelude::*;

const CLIENT_PORT: u16 = 921;
const CLIENT_IP: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 2);

/// One wire message: timestamp, direction, and its RPC record bytes.
type WireMsg = (u64, bool, Vec<u8>);

/// A short session's call/reply messages at the RPC-bytes level, built
/// once — the proptest mutates these per case.
fn session_messages(vers: u8) -> Vec<WireMsg> {
    let mut server = NfsServer::new(0x0a000002);
    let root = server.root_fh();
    let mut client = ClientMachine::new(ClientConfig {
        nfsiods: 1,
        vers,
        ..ClientConfig::default()
    });
    let (fh, t) = client.create(&mut server, 0, &root, "inbox");
    let fh = fh.unwrap();
    let t = client.write(&mut server, t, &fh, 0, 30_000);
    let t = client.read_file(&mut server, t + 1_000_000, &fh);
    client.remove(&mut server, t, &root, "inbox");

    let downgrade = DowngradeCounters::default();
    let mut msgs = Vec::new();
    for e in client.take_events() {
        let (call, reply) = build_rpc_pair(&e, &downgrade);
        msgs.push((e.wire_micros, true, call.to_xdr_bytes()));
        msgs.push((e.reply_micros, false, reply.to_xdr_bytes()));
    }
    msgs.sort_by_key(|(ts, _, _)| *ts);
    msgs
}

fn corpus() -> &'static [WireMsg] {
    static CORPUS: OnceLock<Vec<WireMsg>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut msgs = session_messages(3);
        msgs.extend(session_messages(2));
        msgs
    })
}

/// (kind, position, value): keep the bytes, truncate them, or flip a
/// byte — the three things a lossy mirror port does to a message.
type Mutation = (u8, u16, u8);

fn mutate(bytes: &[u8], (kind, pos, val): Mutation) -> Vec<u8> {
    let mut b = bytes.to_vec();
    match kind {
        0 => {}
        1 => b.truncate(usize::from(pos) % (b.len() + 1)),
        _ => {
            if !b.is_empty() {
                let at = usize::from(pos) % b.len();
                // `| 1` guarantees the xor really changes the byte.
                b[at] ^= val | 1;
            }
        }
    }
    b
}

#[derive(Debug, Default, PartialEq, Eq)]
struct RefCounts {
    rpc_messages: u64,
    calls: u64,
    matched_replies: u64,
    orphan_replies: u64,
    lost_replies: u64,
    decode_errors: u64,
}

enum RefKind {
    V3(Call3),
    V2(Call2),
}

struct RefPending {
    ts: u64,
    uid: u32,
    gid: u32,
    kind: RefKind,
}

/// The owned-decode oracle: exactly the sniffer's pairing logic, built
/// from the pre-existing owned decoders and canonical flatteners.
fn reference(frames: &[WireMsg]) -> (Vec<TraceRecord>, RefCounts) {
    type Key = (u32, u32, u16, u32);
    let mut pending: HashMap<Key, RefPending> = HashMap::new();
    let mut records = Vec::new();
    let mut c = RefCounts::default();
    for (ts, call_dir, payload) in frames {
        let (src_ip, dst_ip, src_port, dst_port) = if *call_dir {
            (CLIENT_IP.as_u32(), SERVER_IP.as_u32(), CLIENT_PORT, 2049)
        } else {
            (SERVER_IP.as_u32(), CLIENT_IP.as_u32(), 2049, CLIENT_PORT)
        };
        let Ok(msg) = RpcMessage::from_xdr_bytes(payload) else {
            c.decode_errors += 1;
            continue;
        };
        c.rpc_messages += 1;
        match msg.body {
            MsgBody::Call(call) => {
                if call.prog != PROG_NFS {
                    continue;
                }
                let (uid, gid) = call
                    .cred
                    .as_unix()
                    .and_then(|r| r.ok())
                    .map(|a| (a.uid, a.gid))
                    .unwrap_or((0, 0));
                let kind =
                    match call.vers {
                        3 => match Proc3::from_u32(call.proc)
                            .and_then(|p| Call3::decode(p, &call.args))
                        {
                            Ok(c3) => RefKind::V3(c3),
                            Err(_) => {
                                c.decode_errors += 1;
                                continue;
                            }
                        },
                        2 => match Proc2::from_u32(call.proc)
                            .and_then(|p| Call2::decode(p, &call.args))
                        {
                            Ok(c2) => RefKind::V2(c2),
                            Err(_) => {
                                c.decode_errors += 1;
                                continue;
                            }
                        },
                        _ => continue,
                    };
                c.calls += 1;
                pending.insert(
                    (src_ip, dst_ip, src_port, msg.xid),
                    RefPending {
                        ts: *ts,
                        uid,
                        gid,
                        kind,
                    },
                );
            }
            MsgBody::Reply(reply) => {
                let key = (dst_ip, src_ip, dst_port, msg.xid);
                let Some(p) = pending.remove(&key) else {
                    c.orphan_replies += 1;
                    continue;
                };
                c.matched_replies += 1;
                let meta = CallMeta {
                    wire_micros: p.ts,
                    reply_micros: *ts,
                    xid: msg.xid,
                    client: key.0,
                    server: key.1,
                    uid: p.uid,
                    gid: p.gid,
                    vers: match p.kind {
                        RefKind::V3(_) => 3,
                        RefKind::V2(_) => 2,
                    },
                };
                match p.kind {
                    RefKind::V3(call) => match Reply3::decode(call.proc(), &reply.results) {
                        Ok(r) => records.push(v3_to_record(&meta, &call, &r)),
                        Err(_) => c.decode_errors += 1,
                    },
                    RefKind::V2(call) => match Reply2::decode(call.proc(), &reply.results) {
                        Ok(r) => records.push(v2_to_record(&meta, &call, &r)),
                        Err(_) => c.decode_errors += 1,
                    },
                }
            }
        }
    }
    c.lost_replies = pending.len() as u64;
    records.sort_by_key(|r| r.micros);
    (records, c)
}

fn frame_for(call_dir: bool, payload: Vec<u8>) -> Vec<u8> {
    let (cmac, smac) = (MacAddr::new([2; 6]), MacAddr::new([4; 6]));
    if call_dir {
        PacketBuilder::udp(cmac, smac, CLIENT_IP, SERVER_IP, CLIENT_PORT, 2049, payload)
    } else {
        PacketBuilder::udp(smac, cmac, SERVER_IP, CLIENT_IP, 2049, CLIENT_PORT, payload)
    }
}

proptest! {
    /// Arbitrary per-message mutations: the borrowed pipeline and the
    /// owned oracle agree on every record and every counter.
    #[test]
    fn mutated_capture_matches_owned_oracle(
        muts in proptest::collection::vec(
            (0u8..3, any::<u16>(), any::<u8>()),
            corpus().len(),
        ),
    ) {
        let mutated: Vec<WireMsg> = corpus()
            .iter()
            .zip(&muts)
            .map(|((ts, dir, bytes), m)| (*ts, *dir, mutate(bytes, *m)))
            .collect();

        let (want, counts) = reference(&mutated);

        let mut s = Sniffer::new();
        for (ts, dir, payload) in &mutated {
            s.observe_frame(*ts, &frame_for(*dir, payload.clone()));
        }
        let (got, stats) = s.finish();

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(stats.rpc_messages, counts.rpc_messages);
        prop_assert_eq!(stats.calls, counts.calls);
        prop_assert_eq!(stats.matched_replies, counts.matched_replies);
        prop_assert_eq!(stats.orphan_replies, counts.orphan_replies);
        prop_assert_eq!(stats.lost_replies, counts.lost_replies);
        prop_assert_eq!(stats.decode_errors, counts.decode_errors);
        prop_assert_eq!(stats.records_emitted, got.len() as u64);
    }

    /// Pure-truncation runs: a cut message can only be dropped (decode
    /// error) or leave its partner unmatched — the surviving records
    /// are exactly the oracle's, never a record with mangled fields.
    #[test]
    fn truncation_never_yields_a_wrong_record(
        cuts in proptest::collection::vec(any::<u16>(), corpus().len()),
    ) {
        let mutated: Vec<WireMsg> = corpus()
            .iter()
            .zip(&cuts)
            .map(|((ts, dir, bytes), cut)| (*ts, *dir, mutate(bytes, (1, *cut, 0))))
            .collect();

        let (want, _) = reference(&mutated);
        let (intact, _) = reference(corpus());

        let mut s = Sniffer::new();
        for (ts, dir, payload) in &mutated {
            s.observe_frame(*ts, &frame_for(*dir, payload.clone()));
        }
        let (got, stats) = s.finish();

        prop_assert_eq!(&got, &want);
        // Every surviving record is byte-identical to a record of the
        // untouched capture: truncation can remove, never alter.
        for r in &got {
            prop_assert!(intact.contains(r));
        }
        let dropped = (intact.len() - got.len()) as u64;
        prop_assert!(
            stats.decode_errors + stats.orphan_replies + stats.lost_replies >= dropped
        );
    }
}
