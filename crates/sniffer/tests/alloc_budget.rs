//! Allocation budget for the steady-state capture path.
//!
//! The zero-copy wire path promises that decoding a frame and emitting
//! its record performs **zero heap allocations** once the sniffer's
//! internal tables have warmed up — for records that carry no name
//! (READ/WRITE/GETATTR/ACCESS/COMMIT, the bulk of a real NFS trace).
//! A counting [`GlobalAlloc`] wrapper measures exactly that: a warm-up
//! pass sizes every internal buffer (flow map, xid table, record
//! vector), then a second identical pass must not touch the allocator
//! at all.
//!
//! Only the observe path is measured. Draining sorts the ready batch
//! (which may use a temporary buffer) and is amortised over thousands
//! of records per call; it is deliberately outside the per-record
//! budget.
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nfstrace_net::ethernet::MacAddr;
use nfstrace_net::ipv4::Ipv4Addr4;
use nfstrace_net::packet::PacketBuilder;
use nfstrace_nfs::fh::FileHandle;
use nfstrace_nfs::types::Fattr3;
use nfstrace_nfs::v3::{
    Access3Args, Access3Res, Call3, Commit3Args, Commit3Res, FhArgs, Getattr3Res, Read3Args,
    Read3Res, Reply3, Reply3Body, Write3Args, Write3Res,
};
use nfstrace_rpc::auth::{AuthUnix, OpaqueAuth};
use nfstrace_rpc::{RpcMessage, PROG_NFS};
use nfstrace_sniffer::Sniffer;
use nfstrace_xdr::Pack;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const CLIENT_IP: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 2);
const CLIENT_PORT: u16 = 921;

fn udp_frame(call_dir: bool, payload: Vec<u8>) -> Vec<u8> {
    let (cmac, smac) = (MacAddr::new([2; 6]), MacAddr::new([4; 6]));
    if call_dir {
        PacketBuilder::udp(cmac, smac, CLIENT_IP, SERVER_IP, CLIENT_PORT, 2049, payload)
    } else {
        PacketBuilder::udp(smac, cmac, SERVER_IP, CLIENT_IP, 2049, CLIENT_PORT, payload)
    }
}

/// Builds one pass of name-free traffic: call+reply frames for the
/// five hot data-path procedures, already packetised. Every `Vec` here
/// is allocated up front, before the measured window opens.
fn build_frames(pairs: usize) -> Vec<Vec<u8>> {
    let fh = FileHandle::new(&[0x42; 32]);
    let cred = OpaqueAuth::unix(&AuthUnix::new("host", 10, 20));
    let attrs = Some(Fattr3 {
        size: 1 << 20,
        fileid: 7,
        ..Fattr3::default()
    });

    let mut frames = Vec::new();
    for i in 0..pairs {
        let xid = 0x1000 + i as u32;
        let (call, reply) = match i % 5 {
            0 => (
                Call3::Read(Read3Args {
                    file: fh.clone(),
                    offset: 0,
                    count: 8192,
                }),
                Reply3::ok(Reply3Body::Read(Read3Res {
                    file_attributes: attrs,
                    count: 8192,
                    eof: false,
                    data: vec![0; 8192],
                })),
            ),
            1 => (
                Call3::Write(Write3Args {
                    file: fh.clone(),
                    offset: 0,
                    count: 8192,
                    stable: Default::default(),
                    data: vec![0; 8192],
                }),
                Reply3::ok(Reply3Body::Write(Write3Res {
                    count: 8192,
                    ..Write3Res::default()
                })),
            ),
            2 => (
                Call3::Getattr(FhArgs { object: fh.clone() }),
                Reply3::ok(Reply3Body::Getattr(Getattr3Res { attributes: attrs })),
            ),
            3 => (
                Call3::Access(Access3Args {
                    object: fh.clone(),
                    access: 0x1,
                }),
                Reply3::ok(Reply3Body::Access(Access3Res {
                    obj_attributes: attrs,
                    access: 0x1,
                })),
            ),
            _ => (
                Call3::Commit(Commit3Args {
                    file: fh.clone(),
                    offset: 0,
                    count: 0,
                }),
                Reply3::ok(Reply3Body::Commit(Commit3Res::default())),
            ),
        };
        let call_msg = RpcMessage::call(
            xid,
            PROG_NFS,
            3,
            call.proc().as_u32(),
            cred.clone(),
            call.encode_args(),
        );
        let reply_msg = RpcMessage::reply_success(xid, reply.encode_results());
        frames.push(udp_frame(true, call_msg.to_xdr_bytes()));
        frames.push(udp_frame(false, reply_msg.to_xdr_bytes()));
    }
    frames
}

#[test]
fn steady_state_capture_allocates_nothing() {
    const PAIRS: usize = 64;
    let frames = build_frames(PAIRS);

    let mut sniffer = Sniffer::new();
    let mut out = Vec::new();

    // Warm-up: size the xid table, the ready-record vector, and the
    // drain buffer. Every frame pairs, so nothing stays pending.
    for (i, f) in frames.iter().enumerate() {
        sniffer.observe_frame(i as u64, f);
    }
    sniffer.drain_ready_into(&mut out);
    assert_eq!(out.len(), PAIRS, "warm-up should emit every record");
    out.clear();

    // Measured window: the identical traffic again. The borrowed
    // decode path must not allocate — not for the packet, the RPC
    // message, the NFS call/reply, or the TraceRecord.
    let base = 10_000_000;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (i, f) in frames.iter().enumerate() {
        sniffer.observe_frame(base + i as u64, f);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    let allocs = after - before;
    assert_eq!(
        allocs, 0,
        "steady-state capture performed {allocs} heap allocations \
         across {} records (budget is zero)",
        PAIRS
    );

    // The measured pass really did the work: all records emitted.
    sniffer.drain_ready_into(&mut out);
    assert_eq!(out.len(), PAIRS);
    let stats = sniffer.stats();
    assert_eq!(stats.records_emitted, 2 * PAIRS as u64);
    assert_eq!(stats.alloc_fallbacks, 0, "UDP path never assembles");
}
