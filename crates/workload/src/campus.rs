//! The CAMPUS email workload (§3.2, §6.1.2).
//!
//! One simulated 53 GB disk array (the paper's `home02`) holds home
//! directories whose dominant content is flat-file inboxes. Three
//! infrastructure hosts generate all NFS traffic:
//!
//! - an **SMTP server** delivering mail: lock, append, unlock;
//! - a **POP server** polled by users' PCs: validate the inbox
//!   (getattr), re-read it entirely when delivery moved its mtime (the
//!   file-grain caching pathology of §6.1.2), and — for users who
//!   delete retrieved mail — rewrite some or all of the mailbox;
//! - a **login server** running pine-style sessions: dot files, a lock,
//!   full scans, periodic rescans, composer temporaries, and a quit-time
//!   mailbox rewrite.
//!
//! Every quantitative lever is a [`CampusConfig`] field with defaults
//! tuned so the generated week reproduces the paper's shape: read/write
//! byte ratio ≈ 3, data calls dominating, ~50% of accessed files being
//! locks, >99% of block deaths by overwrite, block half-life of tens of
//! minutes.
//!
//! Users never touch each other's home directories, so generation is
//! sharded: every user is simulated independently against its own
//! filesystem replica (with a disjoint inode base and a per-user
//! [`crate::driver::user_seed`]) and the per-user streams are merged by
//! timestamp. The `NFSTRACE_THREADS` worker count scales wall-clock
//! only — the merged trace is bit-identical for any thread count.

use crate::convert::append_records;
use crate::driver::{
    exp_gap, flip, lognormal, merge_user_records_into, pick, user_first_xid, user_seed, EventQueue,
};
use crate::rate::DiurnalRate;
use nfstrace_client::{CacheConfig, ClientConfig, ClientMachine};
use nfstrace_core::record::TraceRecord;
use nfstrace_fssim::NfsServer;
use nfstrace_nfs::fh::FileHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tunable parameters of the CAMPUS model.
#[derive(Debug, Clone, PartialEq)]
pub struct CampusConfig {
    /// Active user accounts on the simulated array.
    pub users: usize,
    /// Simulated duration in microseconds.
    pub duration_micros: u64,
    /// RNG seed.
    pub seed: u64,
    /// Median characteristic inbox size in bytes (lognormal across
    /// users; the paper's typical inbox caches >2 MB).
    pub inbox_median_bytes: f64,
    /// Mail deliveries per user per day (before diurnal shaping).
    pub deliveries_per_user_day: f64,
    /// POP polls per user per day.
    pub polls_per_user_day: f64,
    /// Interactive (pine) sessions per user per day.
    pub sessions_per_user_day: f64,
    /// Median delivered message size in bytes.
    pub message_median_bytes: f64,
    /// Probability a changed POP poll retrieves-and-deletes (rewriting
    /// part of the mailbox).
    pub pop_delete_prob: f64,
    /// Fraction of users who hoard mail (no POP delete; purge at quota).
    pub hoarder_fraction: f64,
    /// Purge threshold for hoarders, bytes (the 50 MB quota, derated).
    pub purge_bytes: u64,
    /// Diurnal shape.
    pub rate: DiurnalRate,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            users: 40,
            duration_micros: nfstrace_core::time::DAY,
            seed: 42,
            inbox_median_bytes: 1_500_000.0,
            deliveries_per_user_day: 25.0,
            polls_per_user_day: 96.0,
            sessions_per_user_day: 2.0,
            message_median_bytes: 4_000.0,
            pop_delete_prob: 0.8,
            hoarder_fraction: 0.1,
            purge_bytes: 20_000_000,
            rate: DiurnalRate::default(),
        }
    }
}

#[derive(Debug)]
struct User {
    dir: FileHandle,
    inbox: FileHandle,
    pinerc: FileHandle,
    cshrc: FileHandle,
    /// Characteristic size the mailbox returns to after deletes.
    base_size: u64,
    hoarder: bool,
    /// Composer temp counter for unique names.
    tmp_seq: u32,
    in_session: bool,
    /// Mailbox size at the last poll, for new-messages-only reads.
    last_poll_size: u64,
}

#[derive(Debug)]
enum Ev {
    Delivery,
    Poll,
    SessionStart,
    SessionRescan { end: u64 },
    SessionEnd,
    ComposerRemove { name: String },
}

/// The CAMPUS generator.
#[derive(Debug, Clone)]
pub struct CampusWorkload {
    /// The configuration used.
    pub config: CampusConfig,
}

impl CampusWorkload {
    /// Creates a generator.
    pub fn new(config: CampusConfig) -> Self {
        Self { config }
    }

    /// Runs the simulation and returns time-sorted trace records.
    ///
    /// Users are sharded across `NFSTRACE_THREADS` worker threads (see
    /// [`nfstrace_core::parallel::threads`]); the output is
    /// bit-identical for any worker count.
    pub fn generate(&self) -> Vec<TraceRecord> {
        self.generate_with_threads(nfstrace_core::parallel::threads())
    }

    /// [`CampusWorkload::generate`] with an explicit worker count.
    pub fn generate_with_threads(&self, threads: usize) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        nfstrace_core::sink::into_ok(self.generate_into(threads, &mut out));
        out
    }

    /// Streams the merged trace straight into `sink` — a `Vec`, an
    /// on-disk store writer, a partial index — without materializing
    /// the merged record vector. The record sequence is bit-identical
    /// to [`CampusWorkload::generate`] for any worker count.
    ///
    /// # Errors
    ///
    /// Propagates the sink's error (infallible for `Vec<TraceRecord>`).
    pub fn generate_into<S: nfstrace_core::sink::RecordSink>(
        &self,
        threads: usize,
        sink: &mut S,
    ) -> Result<(), S::Err> {
        let per_user = nfstrace_core::parallel::run_sharded(self.config.users, threads, |u| {
            self.simulate_user(u)
        });
        merge_user_records_into(per_user, sink)
    }

    /// Simulates one user's whole trace against a private filesystem
    /// replica. Deterministic given `(config, u)`.
    fn simulate_user(&self, u: usize) -> Vec<TraceRecord> {
        let mut sim = self.user_sim(u);
        let mut out = Vec::new();
        sim.advance_until(u64::MAX, &mut out);
        out
    }

    /// Builds user `u`'s resident simulation, positioned at time zero.
    ///
    /// [`CampusUserSim::advance_until`] then steps it forward in
    /// arbitrary time slices; running a single slice to the configured
    /// duration reproduces [`CampusWorkload::generate`]'s per-user
    /// stream bit for bit.
    pub fn user_sim(&self, u: usize) -> CampusUserSim {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(user_seed(cfg.seed, u));
        let mut server = NfsServer::new(0x0a01_0002);
        // Disjoint inode base per user: ids stay unique after the merge.
        server.fs_mut().set_next_id((u as u64 + 2) << 32);

        // CAMPUS transfers ride 8 KB NFS requests (jumbo frames carried
        // 9000-byte packets; the observed mean read was ~7 KB).
        let client_cfg = |ip: u32, seed: u64| ClientConfig {
            ip,
            uid: 0,
            gid: 0,
            vers: 3,
            nfsiods: 6,
            rsize: 8192,
            wsize: 8192,
            cache: CacheConfig {
                attr_timeout_micros: 30_000_000,
                capacity_blocks: 64 * 1024, // POP server caches many inboxes
            },
            meta_latency_micros: 120,
            server_latency_micros: 200,
            seed,
            first_xid: user_first_xid(cfg.seed, u),
        };
        let useed = user_seed(cfg.seed, u);
        let smtp = ClientMachine::new(client_cfg(0x0a01_0010, useed ^ 0x1));
        let pop = ClientMachine::new(client_cfg(0x0a01_0011, useed ^ 0x2));
        let login = ClientMachine::new(client_cfg(0x0a01_0012, useed ^ 0x3));

        // Pre-populate the home directory server-side: this state
        // predates the trace, so no records are emitted for it.
        let root = server.fs_mut().root();
        let uname = format!("user{u:04}");
        let dir = server
            .fs_mut()
            .mkdir(root, &uname, u as u32, 100, 0)
            .unwrap();
        let (inbox, _) = server
            .fs_mut()
            .create(dir, "inbox", u as u32, 100, 0)
            .unwrap();
        let base =
            (lognormal(&mut rng, cfg.inbox_median_bytes, 0.7) as u64).clamp(50_000, 8_000_000);
        server.fs_mut().write(inbox, 0, base as u32, 0).unwrap();
        let (pinerc, _) = server
            .fs_mut()
            .create(dir, ".pinerc", u as u32, 100, 0)
            .unwrap();
        server
            .fs_mut()
            .write(pinerc, 0, pick(&mut rng, 11_000, 26_000) as u32, 0)
            .unwrap();
        let (cshrc, _) = server
            .fs_mut()
            .create(dir, ".cshrc", u as u32, 100, 0)
            .unwrap();
        server.fs_mut().write(cshrc, 0, 900, 0).unwrap();
        let user = User {
            dir: FileHandle::from_u64(dir),
            inbox: FileHandle::from_u64(inbox),
            pinerc: FileHandle::from_u64(pinerc),
            cshrc: FileHandle::from_u64(cshrc),
            base_size: base,
            hoarder: flip(&mut rng, cfg.hoarder_fraction),
            tmp_seq: 0,
            in_session: false,
            last_poll_size: base,
        };

        // Seed the event streams.
        let mut q: EventQueue<Ev> = EventQueue::new();
        let day = nfstrace_core::time::DAY as f64;
        q.push(
            exp_gap(&mut rng, day / cfg.deliveries_per_user_day),
            Ev::Delivery,
        );
        q.push(exp_gap(&mut rng, day / cfg.polls_per_user_day), Ev::Poll);
        q.push(
            exp_gap(&mut rng, day / cfg.sessions_per_user_day),
            Ev::SessionStart,
        );

        CampusUserSim {
            wl: self.clone(),
            server,
            smtp,
            pop,
            login,
            rng,
            user,
            q,
        }
    }

    /// SMTP delivery: lock, append, unlock.
    fn deliver(
        &self,
        server: &mut NfsServer,
        smtp: &mut ClientMachine,
        rng: &mut StdRng,
        user: &mut User,
        t: u64,
    ) {
        let (_, t1) = smtp.create(server, t, &user.dir, "inbox.lock");
        // The delivery agent knows the spool size via getattr.
        let (size, t2) = smtp.getattr(server, t1, &user.inbox);
        let size = size.unwrap_or(0);
        let msg =
            (lognormal(rng, self.config.message_median_bytes, 1.4) as u64).clamp(400, 2_000_000);
        let t3 = smtp.write(server, t2, &user.inbox, size, msg);
        // Lock lifetimes: overwhelmingly under 0.4 s.
        let t4 = t3 + pick(rng, 20_000, 220_000);
        smtp.remove(server, t4, &user.dir, "inbox.lock");
    }

    /// POP poll: validate; on change re-read; maybe retrieve-and-delete.
    fn poll(
        &self,
        server: &mut NfsServer,
        pop: &mut ClientMachine,
        rng: &mut StdRng,
        user: &mut User,
        t: u64,
    ) {
        // Name-cache entries expire: some polls re-lookup the inbox.
        let mut t = t;
        if flip(rng, 0.15) {
            let (_, tl) = pop.lookup(server, t, &user.dir, "inbox");
            t = tl;
        }
        let (_, t1) = pop.create(server, t, &user.dir, "inbox.lock");
        // Force a revalidation getattr: polls are minutes apart, beyond
        // the attribute timeout, so read_file will getattr + re-read if
        // the mailbox changed.
        let pre_size = server
            .fs()
            .inode(user.inbox.as_u64().unwrap_or(0))
            .map(|i| i.size)
            .unwrap_or(0);
        let t2 = if pre_size > user.last_poll_size && flip(rng, 0.35) {
            // An efficient client fetches only the new messages: a
            // sequential (not entire) read run from the old end-of-file.
            let from = user.last_poll_size & !8191; // page-aligned start
            pop.read(server, t1, &user.inbox, from, pre_size - from)
        } else {
            pop.read_file(server, t1, &user.inbox)
        };
        user.last_poll_size = pre_size;
        pop.remove(
            server,
            t2 + pick(rng, 20_000, 200_000),
            &user.dir,
            "inbox.lock",
        );
        let cur_size = server
            .fs()
            .inode(user.inbox.as_u64().unwrap_or(0))
            .map(|i| i.size)
            .unwrap_or(0);
        let retrieved_delete = !user.hoarder && flip(rng, self.config.pop_delete_prob);
        // The PC drains the messages over its own link before the POP
        // server deletes them: the expunge happens seconds later, under
        // a fresh (again sub-second) lock.
        let think = pick(rng, 1_500_000, 5_000_000);
        let needs_rewrite = (retrieved_delete && cur_size > user.base_size)
            || (user.hoarder && cur_size > self.config.purge_bytes);
        if needs_rewrite {
            let (_, t3) = pop.create(server, t2 + think, &user.dir, "inbox.lock");
            let t4 = self.rewrite_inbox(server, pop, rng, user, t3, user.base_size);
            pop.remove(
                server,
                t4 + pick(rng, 20_000, 200_000),
                &user.dir,
                "inbox.lock",
            );
        }
    }

    /// Rewrites the tail (or all) of the mailbox down to `new_size`.
    ///
    /// "Quitting the mail client causes some or all of the mailbox file
    /// to be rewritten": the client rewrites from some interior offset
    /// through the new end, then truncates.
    fn rewrite_inbox(
        &self,
        server: &mut NfsServer,
        m: &mut ClientMachine,
        rng: &mut StdRng,
        user: &mut User,
        t: u64,
        new_size: u64,
    ) -> u64 {
        // "Some or all of the mailbox file": often the whole file is
        // rewritten from offset zero (an entire write run), otherwise a
        // tail portion.
        let frac = if flip(rng, 0.4) {
            1.0
        } else {
            0.5 + 0.45 * (pick(rng, 0, 1000) as f64 / 1000.0)
        };
        let start = (new_size as f64 * (1.0 - frac)) as u64;
        let t1 = m.write(server, t, &user.inbox, start, new_size - start);
        m.truncate(server, t1, &user.inbox, new_size)
    }

    /// Login-session open: dot files, lock, full scan.
    fn session_open(
        &self,
        server: &mut NfsServer,
        login: &mut ClientMachine,
        rng: &mut StdRng,
        user: &mut User,
        t: u64,
    ) {
        // .cshrc at login, .pinerc at client start: small whole-file
        // reads (often getattr-validated only).
        let (_, tl) = login.lookup(server, t, &user.dir, ".cshrc");
        let t1 = login.read_file(server, tl, &user.cshrc);
        // The user starts pine a little after the shell comes up.
        let (_, tl2) = login.lookup(
            server,
            t1 + pick(rng, 2_000_000, 20_000_000),
            &user.dir,
            ".pinerc",
        );
        let t2 = login.read_file(server, tl2, &user.pinerc);
        let (_, t3) = login.create(
            server,
            t2 + pick(rng, 500_000, 2_000_000),
            &user.dir,
            "inbox.lock",
        );
        let t4 = self.scan_inbox_inner(server, login, user, t3);
        login.remove(server, t4 + 150_000, &user.dir, "inbox.lock");
    }

    fn scan_inbox(
        &self,
        server: &mut NfsServer,
        login: &mut ClientMachine,
        user: &mut User,
        t: u64,
    ) {
        let (_, t1) = login.create(server, t, &user.dir, "inbox.lock");
        let t2 = self.scan_inbox_inner(server, login, user, t1);
        login.remove(server, t2 + 100_000, &user.dir, "inbox.lock");
    }

    fn scan_inbox_inner(
        &self,
        server: &mut NfsServer,
        login: &mut ClientMachine,
        user: &mut User,
        t: u64,
    ) -> u64 {
        login.read_file(server, t, &user.inbox)
    }

    /// Status-flag update pass: the mail client rewrites each message's
    /// `Status:` header in place — short writes at ascending offsets
    /// separated by message-sized gaps. This is the paper's long seeky
    /// write run: "long CAMPUS writes tend to touch several sequential
    /// blocks and then seek to a new location" (§6.4), scoring ~0.6 on
    /// the sequentiality metric.
    fn update_flags(
        &self,
        server: &mut NfsServer,
        m: &mut ClientMachine,
        rng: &mut StdRng,
        user: &mut User,
        t: u64,
    ) -> u64 {
        let size = server
            .fs()
            .inode(user.inbox.as_u64().unwrap_or(0))
            .map(|i| i.size)
            .unwrap_or(0);
        let mut now = t;
        if size < 16_384 {
            return now;
        }
        // Users work through messages in UI order, not file order: a few
        // adjacent messages get their flags rewritten (sequential
        // blocks), then the client seeks to wherever the next-read
        // message lives — forward or backward.
        let mut remaining = (size / 12_000).clamp(4, 300);
        while remaining > 0 {
            let cluster = pick(rng, 2, 6).min(remaining);
            let mut offset = pick(rng, 0, size.saturating_sub(cluster * 9_000).max(1));
            for _ in 0..cluster {
                let n = pick(rng, 80, 400);
                now = m.write(server, now, &user.inbox, offset, n);
                // The next message's header lies a message-length away.
                offset += n
                    + (lognormal(rng, self.config.message_median_bytes, 1.0) as u64)
                        .clamp(600, 16_000);
                now += pick(rng, 1_000, 10_000);
            }
            remaining -= cluster;
        }
        now
    }

    /// Session close: maybe rewrite the mailbox, drop the lock.
    fn session_close(
        &self,
        server: &mut NfsServer,
        login: &mut ClientMachine,
        rng: &mut StdRng,
        user: &mut User,
        t: u64,
    ) {
        let mut t = t;
        // Quitting pine updates the status flags of read messages.
        if flip(rng, 0.7) {
            t = self.update_flags(server, login, rng, user, t);
        }
        if flip(rng, 0.6) {
            let cur = server
                .fs()
                .inode(user.inbox.as_u64().unwrap_or(0))
                .map(|i| i.size)
                .unwrap_or(0);
            let keep = if user.hoarder {
                cur // hoarders keep everything
            } else {
                user.base_size.min(cur)
            };
            if keep < cur || !user.hoarder {
                self.rewrite_inbox(server, login, rng, user, t + 200_000, keep.max(10_000));
            }
        }
    }
}

/// One user's resident CAMPUS simulation, steppable in bounded time
/// slices.
///
/// Holds everything [`CampusWorkload::generate`] used to keep on the
/// stack for the whole run — the filesystem replica, the three
/// infrastructure client machines, the RNG, and the event queue — so a
/// caller can advance the simulation slice by slice and stream records
/// out as simulated time passes instead of materializing the user's
/// whole stream. Driving a single slice to the end produces exactly the
/// batch per-user stream, and slicing never changes a single bit of it:
/// the event pop order, RNG draw order, and client cache state are all
/// functions of the event sequence alone.
#[derive(Debug)]
pub struct CampusUserSim {
    wl: CampusWorkload,
    server: NfsServer,
    smtp: ClientMachine,
    pop: ClientMachine,
    login: ClientMachine,
    rng: StdRng,
    user: User,
    q: EventQueue<Ev>,
}

impl CampusUserSim {
    /// Runs every pending event strictly before `end_micros` (capped at
    /// the configured duration), appending the records they emit to
    /// `out` in emission order.
    ///
    /// An event at time `t` only ever emits records stamped `>= t`, so
    /// after this returns every *future* record of this user carries a
    /// timestamp `>= end_micros` — the watermark the sliced driver uses
    /// to know which records are final.
    pub fn advance_until(&mut self, end_micros: u64, out: &mut Vec<TraceRecord>) {
        let end = end_micros.min(self.wl.config.duration_micros);
        let day = nfstrace_core::time::DAY as f64;
        let drain = |m: &mut ClientMachine, out: &mut Vec<TraceRecord>| {
            append_records(&m.take_events(), out);
        };
        while self.q.next_time().is_some_and(|t| t < end) {
            let (t, ev) = self.q.pop().expect("peeked a pending event");
            let cfg = &self.wl.config;
            match ev {
                Ev::Delivery => {
                    // Thin to the diurnal rate.
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        self.wl.deliver(
                            &mut self.server,
                            &mut self.smtp,
                            &mut self.rng,
                            &mut self.user,
                            t,
                        );
                        drain(&mut self.smtp, out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.deliveries_per_user_day),
                        Ev::Delivery,
                    );
                }
                Ev::Poll => {
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        self.wl.poll(
                            &mut self.server,
                            &mut self.pop,
                            &mut self.rng,
                            &mut self.user,
                            t,
                        );
                        drain(&mut self.pop, out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.polls_per_user_day),
                        Ev::Poll,
                    );
                }
                Ev::SessionStart => {
                    if !self.user.in_session && flip(&mut self.rng, cfg.rate.at(t)) {
                        self.user.in_session = true;
                        let end = t + (lognormal(&mut self.rng, 25.0, 0.5) * 60.0 * 1e6) as u64; // 15–60 min
                        self.wl.session_open(
                            &mut self.server,
                            &mut self.login,
                            &mut self.rng,
                            &mut self.user,
                            t,
                        );
                        drain(&mut self.login, out);
                        let rescan = t + 60_000_000 + exp_gap(&mut self.rng, 180.0 * 1e6);
                        if rescan < end {
                            self.q.push(rescan, Ev::SessionRescan { end });
                        }
                        self.q.push(end, Ev::SessionEnd);
                        // Compose a message or two during the session.
                        if flip(&mut self.rng, 0.5) {
                            let name = format!("snd.{}", self.user.tmp_seq);
                            self.user.tmp_seq += 1;
                            let at = t + exp_gap(&mut self.rng, 300.0 * 1e6).min(end - t);
                            self.q.push(at, Ev::ComposerRemove { name });
                        }
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.sessions_per_user_day),
                        Ev::SessionStart,
                    );
                }
                Ev::SessionRescan { end } => {
                    self.wl
                        .scan_inbox(&mut self.server, &mut self.login, &mut self.user, t);
                    // Reading messages updates their status flags.
                    if flip(&mut self.rng, 0.4) {
                        self.wl.update_flags(
                            &mut self.server,
                            &mut self.login,
                            &mut self.rng,
                            &mut self.user,
                            t + 500_000,
                        );
                    }
                    drain(&mut self.login, out);
                    let next = t + 60_000_000 + exp_gap(&mut self.rng, 180.0 * 1e6);
                    if next < end {
                        self.q.push(next, Ev::SessionRescan { end });
                    }
                }
                Ev::SessionEnd => {
                    self.wl.session_close(
                        &mut self.server,
                        &mut self.login,
                        &mut self.rng,
                        &mut self.user,
                        t,
                    );
                    self.user.in_session = false;
                    drain(&mut self.login, out);
                }
                Ev::ComposerRemove { name } => {
                    // Create, fill, and shortly afterwards remove a
                    // composer temporary (98% under 8 KB, §6.3).
                    let (fh, t1) = self
                        .login
                        .create(&mut self.server, t, &self.user.dir, &name);
                    if let Some(fh) = fh {
                        let sz = (lognormal(&mut self.rng, 2_500.0, 0.8) as u64).clamp(200, 39_000);
                        let t2 = self.login.write(&mut self.server, t1, &fh, 0, sz);
                        let hold = pick(&mut self.rng, 2_000_000, 50_000_000);
                        self.login
                            .remove(&mut self.server, t2 + hold, &self.user.dir, &name);
                    }
                    drain(&mut self.login, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::names::{classify, FileCategory};
    use nfstrace_core::record::Op;
    use nfstrace_core::summary::SummaryStats;

    fn small_day() -> Vec<TraceRecord> {
        CampusWorkload::new(CampusConfig {
            users: 8,
            duration_micros: nfstrace_core::time::DAY,
            seed: 7,
            ..CampusConfig::default()
        })
        .generate()
    }

    #[test]
    fn generates_sorted_nonempty_trace() {
        let recs = small_day();
        assert!(recs.len() > 1000, "records = {}", recs.len());
        for w in recs.windows(2) {
            assert!(w[0].micros <= w[1].micros);
        }
    }

    #[test]
    fn reads_dominate_writes_by_bytes() {
        let recs = small_day();
        let s = SummaryStats::from_records(recs.iter());
        let ratio = s.rw_bytes_ratio();
        assert!(
            (1.5..6.0).contains(&ratio),
            "read/write byte ratio = {ratio}"
        );
    }

    #[test]
    fn data_calls_dominate() {
        let recs = small_day();
        let s = SummaryStats::from_records(recs.iter());
        assert!(
            s.data_fraction() > 0.5,
            "data fraction = {}",
            s.data_fraction()
        );
    }

    #[test]
    fn lock_files_dominate_create_delete_churn() {
        let recs = small_day();
        let created: Vec<&str> = recs
            .iter()
            .filter(|r| r.op == Op::Create)
            .filter_map(|r| r.name.as_deref())
            .collect();
        assert!(!created.is_empty());
        let locks = created
            .iter()
            .filter(|n| classify(n) == FileCategory::Lock)
            .count();
        let frac = locks as f64 / created.len() as f64;
        assert!(frac > 0.7, "lock fraction of creates = {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small_day();
        let b = small_day();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first(), b.first());
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn diurnal_shape_visible() {
        let recs = CampusWorkload::new(CampusConfig {
            users: 10,
            duration_micros: 2 * nfstrace_core::time::DAY,
            seed: 11,
            ..CampusConfig::default()
        })
        .generate();
        use nfstrace_core::time::HOUR;
        // Compare Monday 3am hour against Monday 1pm hour.
        let day = nfstrace_core::time::DAY;
        let night: usize = recs
            .iter()
            .filter(|r| r.micros >= day + 3 * HOUR && r.micros < day + 4 * HOUR)
            .count();
        let noon: usize = recs
            .iter()
            .filter(|r| r.micros >= day + 13 * HOUR && r.micros < day + 14 * HOUR)
            .count();
        assert!(noon > night, "noon={noon} night={night}");
    }

    #[test]
    fn mailboxes_never_removed() {
        let recs = small_day();
        let removed_mailbox = recs.iter().any(|r| {
            r.op == Op::Remove
                && r.name
                    .as_deref()
                    .is_some_and(|n| classify(n) == FileCategory::Mailbox)
        });
        assert!(!removed_mailbox);
    }
}
