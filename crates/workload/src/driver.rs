//! Discrete-event scaffolding and random samplers shared by the two
//! workload generators.

use nfstrace_core::record::TraceRecord;
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue over an arbitrary event payload.
///
/// Ties break on insertion order, keeping runs deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper giving every payload a total order without requiring `Ord`.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `micros`.
    pub fn push(&mut self, micros: u64, event: E) {
        self.heap
            .push(Reverse((micros, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(e)))| (t, e))
    }

    /// The earliest pending event's time, without popping it.
    ///
    /// Time-sliced simulation stops a slice *before* popping the first
    /// out-of-slice event: popping and re-pushing would assign the
    /// event a fresh insertion sequence number and so could reorder it
    /// against same-time events, breaking bit-identity with an unsliced
    /// run.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Derives a per-user RNG seed from the configuration seed.
///
/// Sharded generation simulates every user independently; each user's
/// stream must be (a) deterministic given `(base, user)` and (b)
/// decorrelated from its neighbours'. SplitMix64's finalizer gives both
/// without any external dependency.
pub fn user_seed(base: u64, user: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((user as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-user starting RPC transaction id, scattered over the 32-bit xid
/// space by the same SplitMix64 mix as [`user_seed`].
///
/// User shards can share client IPs (CAMPUS's three infrastructure
/// hosts serve every user), so their xid sequences should not collide.
/// A 32-bit space cannot give truly disjoint per-user ranges at every
/// population size; like real NFS clients, xids may recur over a long
/// trace. What xid matching actually needs is that two *concurrently
/// in-flight* calls from one client almost never share an xid, and
/// uniform scatter of the starting points preserves that at any scale.
pub fn user_first_xid(base: u64, user: usize) -> u32 {
    // Odd, so sequences from users with colliding starts interleave
    // rather than shadow each other exactly.
    (user_seed(base ^ 0x1d, user) as u32) | 1
}

/// Merges per-user record streams into one time-sorted trace.
///
/// Streams are concatenated in user order and then stable-sorted by
/// timestamp, so ties break on user index — deterministically, and
/// independently of how many threads produced the streams.
pub fn merge_user_records(per_user: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let total = per_user.iter().map(Vec::len).sum();
    let mut out: Vec<TraceRecord> = Vec::with_capacity(total);
    for stream in per_user {
        out.extend(stream);
    }
    out.sort_by_key(|r| r.micros);
    out
}

/// Merges per-user record streams **into a sink**, k-way, without ever
/// materializing the merged trace.
///
/// Each stream is stable-sorted by timestamp first (per-user simulation
/// emits records nearly — but not exactly — in time order), then the
/// streams are heap-merged with ties broken by user index. That is
/// exactly the order [`merge_user_records`]'s concatenate-and-
/// stable-sort produces, so the record sequence reaching the sink is
/// bit-identical to the `Vec` path for any thread count — the
/// `generate_into` entry points on both workloads rely on this.
///
/// # Errors
///
/// Propagates the sink's error (infallible for `Vec<TraceRecord>`).
pub fn merge_user_records_into<S: nfstrace_core::sink::RecordSink>(
    per_user: Vec<Vec<TraceRecord>>,
    sink: &mut S,
) -> Result<(), S::Err> {
    let mut cursors: Vec<std::iter::Peekable<std::vec::IntoIter<TraceRecord>>> = per_user
        .into_iter()
        .map(|mut stream| {
            // Stable: equal-timestamp records keep their emission
            // order, as they would under the global stable sort.
            stream.sort_by_key(|r| r.micros);
            stream.into_iter().peekable()
        })
        .collect();
    // Min-heap over (timestamp, user index); each pop emits the next
    // record of one user's stream. Equal timestamps drain lower user
    // indices first — and a user's own equal-timestamp records drain in
    // stream order, because its re-pushed entry keeps winning the tie.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (u, c) in cursors.iter_mut().enumerate() {
        if let Some(r) = c.peek() {
            heap.push(Reverse((r.micros, u)));
        }
    }
    while let Some(Reverse((_, u))) = heap.pop() {
        let r = cursors[u].next().expect("heap entry implies a record");
        sink.push_record(r)?;
        if let Some(next) = cursors[u].peek() {
            heap.push(Reverse((next.micros, u)));
        }
    }
    Ok(())
}

/// Samples an exponential interarrival gap with the given mean (µs).
pub fn exp_gap(rng: &mut StdRng, mean_micros: f64) -> u64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    (-mean_micros * u.ln()).max(1.0) as u64
}

/// Samples a lognormal value given the median and a shape factor
/// (sigma of the underlying normal).
pub fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Samples true with probability `p`.
pub fn flip(rng: &mut StdRng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Picks a uniform integer in `[lo, hi)`.
pub fn pick(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let order: Vec<(u64, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn queue_len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_peeks_without_disturbing_tie_order() {
        let mut q = EventQueue::new();
        q.push(10, "a1");
        q.push(10, "a2");
        assert_eq!(q.next_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a1")));
        assert_eq!(q.next_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a2")));
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn kway_merge_equals_concat_and_stable_sort() {
        use nfstrace_core::record::{FileId, Op};
        // Adversarial streams: internal disorder, cross-stream ties.
        let mk = |seed: u64| -> Vec<TraceRecord> {
            (0..50u64)
                .map(|i| {
                    let t = (i * 7 + seed * 3) % 40; // collisions galore
                    TraceRecord::new(t, Op::Read, FileId(seed * 1000 + i))
                })
                .collect()
        };
        let streams: Vec<Vec<TraceRecord>> = (0..4).map(mk).collect();
        let legacy = {
            let mut sorted = streams.clone();
            for s in &mut sorted {
                s.sort_by_key(|r| r.micros);
            }
            merge_user_records(sorted)
        };
        let mut merged: Vec<TraceRecord> = Vec::new();
        nfstrace_core::sink::into_ok(merge_user_records_into(streams, &mut merged));
        assert_eq!(merged, legacy);
    }

    #[test]
    fn exp_gap_mean_roughly_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| exp_gap(&mut rng, 1000.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((800.0..1200.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<f64> = (0..10_001)
            .map(|_| lognormal(&mut rng, 100.0, 1.0))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((80.0..125.0).contains(&median), "median = {median}");
    }

    #[test]
    fn flip_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| flip(&mut rng, 0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn pick_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = pick(&mut rng, 5, 10);
            assert!((5..10).contains(&v));
        }
        assert_eq!(pick(&mut rng, 7, 7), 7);
    }
}
