//! The diurnal/weekly activity rhythm (§6.2, Figure 4).
//!
//! "Peak load periods [are] highly correlated with day of week and time
//! of day" on CAMPUS; EECS follows the same peak hours with more
//! variance plus off-hours batch activity. The model: a base rate
//! multiplied by an hour-of-day curve (low at night, high 9am–6pm) and a
//! weekend factor.

use nfstrace_core::time::{day_of_week, hour_of_day};

/// A diurnal/weekly rate multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalRate {
    /// Multiplier floor in the dead of night.
    pub night_floor: f64,
    /// Multiplier at the busiest hour.
    pub day_peak: f64,
    /// Factor applied on Saturday and Sunday.
    pub weekend_factor: f64,
}

impl Default for DiurnalRate {
    fn default() -> Self {
        DiurnalRate {
            night_floor: 0.08,
            day_peak: 1.0,
            weekend_factor: 0.35,
        }
    }
}

impl DiurnalRate {
    /// The multiplier at `micros` (piecewise by hour, smooth enough for
    /// Figure 4's shape).
    pub fn at(&self, micros: u64) -> f64 {
        let h = hour_of_day(micros) as f64;
        // A raised-cosine bump centered at 13:30, wide enough that
        // 9:00–18:00 sits near the top.
        let phase = (h - 13.5) / 12.0 * std::f64::consts::PI;
        let bump = 0.5 * (1.0 + phase.cos());
        let shaped = self.night_floor + (self.day_peak - self.night_floor) * bump.powf(1.5);
        let dow = day_of_week(micros);
        if dow == 0 || dow == 6 {
            shaped * self.weekend_factor
        } else {
            shaped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::time::{DAY, HOUR};

    #[test]
    fn weekday_peak_beats_night() {
        let r = DiurnalRate::default();
        let monday = DAY;
        let noon = r.at(monday + 13 * HOUR);
        let night = r.at(monday + 3 * HOUR);
        assert!(noon > 4.0 * night, "noon={noon} night={night}");
    }

    #[test]
    fn weekend_suppressed() {
        let r = DiurnalRate::default();
        let sat_noon = r.at(6 * DAY + 13 * HOUR);
        let wed_noon = r.at(3 * DAY + 13 * HOUR);
        assert!(sat_noon < 0.5 * wed_noon);
    }

    #[test]
    fn rate_stays_positive_and_bounded() {
        let r = DiurnalRate::default();
        for h in 0..(7 * 24) {
            let v = r.at(h as u64 * HOUR + 1800 * 1_000_000);
            assert!(v > 0.0 && v <= 1.0, "hour {h}: {v}");
        }
    }

    #[test]
    fn peak_hours_are_near_the_top() {
        let r = DiurnalRate::default();
        let mon = DAY;
        for h in [10u64, 12, 14, 16] {
            assert!(r.at(mon + h * HOUR) > 0.55, "hour {h}");
        }
    }
}
