//! Time-sliced generation: bounded-memory streaming of the simulated
//! workloads.
//!
//! The batch generators (`generate` / `generate_into`) simulate every
//! user's **whole** trace before the k-way merge drains it, so the
//! write path peaks at O(sum of per-user streams) even when the sink
//! streams to disk. [`SlicedWorkload`] removes that peak: every user's
//! simulation stays resident ([`crate::campus::CampusUserSim`],
//! [`crate::eecs::EecsUserSim`]) and is advanced one bounded time slice
//! at a time; after each slice the users' fresh records are k-way
//! merged — by `(timestamp, user index)`, exactly like the batch merge
//! — into the sink and dropped. Peak resident record memory is
//! O(records per slice), not O(trace length).
//!
//! # Bit-identity
//!
//! The record sequence reaching the sink is **bit-identical** to
//! `generate()` for any slice length and any worker count. Two facts
//! make that hold:
//!
//! 1. Slicing never perturbs a simulation. The event queue is peeked,
//!    not popped, at a slice boundary, so event order, RNG draw order,
//!    and client cache state are exactly those of an unsliced run.
//! 2. An event at time `t` only emits records stamped `>= t`, so once
//!    every user has advanced past a boundary `B`, records stamped
//!    `< B` are *final* — no future event can emit among them. Each
//!    slice emits exactly the final records, carrying the rest (an
//!    event near a boundary can emit a few records beyond it) into the
//!    next slice.
//!
//! # Examples
//!
//! ```
//! use nfstrace_core::time::HOUR;
//! use nfstrace_workload::{CampusConfig, CampusWorkload, SlicedWorkload};
//!
//! let config = CampusConfig {
//!     users: 2,
//!     duration_micros: 6 * HOUR,
//!     ..CampusConfig::default()
//! };
//! let batch = CampusWorkload::new(config.clone()).generate_with_threads(1);
//!
//! let mut sliced = SlicedWorkload::campus(config, HOUR, 1);
//! let mut streamed = Vec::new();
//! nfstrace_core::sink::into_ok(sliced.run_into(&mut streamed));
//! assert_eq!(streamed, batch);
//! assert!(sliced.peak_resident_records() <= batch.len());
//! ```

use crate::campus::{CampusConfig, CampusUserSim, CampusWorkload};
use crate::driver::merge_user_records_into;
use crate::eecs::{EecsConfig, EecsUserSim, EecsWorkload};
use nfstrace_core::parallel;
use nfstrace_core::record::TraceRecord;
use nfstrace_core::sink::RecordSink;

/// A resident, sliceable user simulation. Implemented by both
/// workloads' per-user simulators so [`SlicedWorkload`] can drive a
/// mixed population behind one interface.
pub trait UserSim: Send {
    /// Runs every pending event strictly before `end_micros`, appending
    /// emitted records (stamped `>=` the event time) to `out` in
    /// emission order.
    fn advance_until(&mut self, end_micros: u64, out: &mut Vec<TraceRecord>);
}

impl UserSim for CampusUserSim {
    fn advance_until(&mut self, end_micros: u64, out: &mut Vec<TraceRecord>) {
        CampusUserSim::advance_until(self, end_micros, out)
    }
}

impl UserSim for EecsUserSim {
    fn advance_until(&mut self, end_micros: u64, out: &mut Vec<TraceRecord>) {
        EecsUserSim::advance_until(self, end_micros, out)
    }
}

/// One user's resident simulation plus the records it emitted that are
/// not yet final (stamped at or beyond the last slice boundary).
struct UserSlot {
    sim: Box<dyn UserSim>,
    carry: Vec<TraceRecord>,
}

/// A workload generator that produces the merged trace slice by slice.
///
/// See the [module docs](self) for the memory bound and the
/// bit-identity argument. Construct with [`SlicedWorkload::campus`] or
/// [`SlicedWorkload::eecs`], then either pump slices yourself with
/// [`SlicedWorkload::next_slice_into`] (checking progress between
/// slices — this is what a live ingest does) or drain everything with
/// [`SlicedWorkload::run_into`].
pub struct SlicedWorkload {
    slots: Vec<UserSlot>,
    duration_micros: u64,
    slice_micros: u64,
    /// Records stamped before this boundary have been emitted.
    emitted_to: u64,
    threads: usize,
    finished: bool,
    peak_resident_records: usize,
}

impl std::fmt::Debug for SlicedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlicedWorkload")
            .field("users", &self.slots.len())
            .field("duration_micros", &self.duration_micros)
            .field("slice_micros", &self.slice_micros)
            .field("emitted_to", &self.emitted_to)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl SlicedWorkload {
    /// A sliced CAMPUS generator: same record stream as
    /// [`CampusWorkload::generate`] over `config`, produced
    /// `slice_micros` of simulated time at a time across `threads`
    /// workers.
    pub fn campus(config: CampusConfig, slice_micros: u64, threads: usize) -> Self {
        let wl = CampusWorkload::new(config);
        let duration = wl.config.duration_micros;
        let sims = parallel::run_sharded(wl.config.users, threads, |u| {
            Box::new(wl.user_sim(u)) as Box<dyn UserSim>
        });
        Self::new(sims, duration, slice_micros, threads)
    }

    /// A sliced EECS generator: same record stream as
    /// [`EecsWorkload::generate`] over `config`.
    pub fn eecs(config: EecsConfig, slice_micros: u64, threads: usize) -> Self {
        let wl = EecsWorkload::new(config);
        let duration = wl.config.duration_micros;
        let seed = wl.sim_seed();
        let sims = parallel::run_sharded(wl.config.users, threads, |u| {
            Box::new(wl.user_sim(u, &seed)) as Box<dyn UserSim>
        });
        Self::new(sims, duration, slice_micros, threads)
    }

    fn new(
        sims: Vec<Box<dyn UserSim>>,
        duration_micros: u64,
        slice_micros: u64,
        threads: usize,
    ) -> Self {
        SlicedWorkload {
            slots: sims
                .into_iter()
                .map(|sim| UserSlot {
                    sim,
                    carry: Vec::new(),
                })
                .collect(),
            duration_micros,
            slice_micros: slice_micros.max(1),
            emitted_to: 0,
            threads,
            finished: duration_micros == 0,
            peak_resident_records: 0,
        }
    }

    /// Advances every user one slice and streams the slice's final
    /// records — k-way merged across users, bit-identical to the
    /// corresponding span of the batch trace — into `sink`. Returns
    /// `false` once the stream is exhausted (nothing was pushed).
    ///
    /// # Errors
    ///
    /// Propagates the sink's error (infallible for `Vec<TraceRecord>`).
    pub fn next_slice_into<S: RecordSink>(&mut self, sink: &mut S) -> Result<bool, S::Err> {
        if self.finished {
            return Ok(false);
        }
        let boundary = self.emitted_to.saturating_add(self.slice_micros);
        let last = boundary >= self.duration_micros;
        // Advance every user to the boundary; each appends its fresh
        // records (in emission order) to its own carry buffer.
        parallel::run_sharded_mut(&mut self.slots, self.threads, |_, slot| {
            slot.sim.advance_until(boundary, &mut slot.carry);
        });
        // Split out the final records: everything stamped before the
        // boundary (on the last slice: everything — events before the
        // duration cap can legally emit a short tail beyond it, and the
        // batch trace keeps that tail too). Sorting each user's batch is
        // stable, so equal timestamps keep their emission order exactly
        // as the batch path's whole-stream stable sort would.
        let mut ready: Vec<Vec<TraceRecord>> = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            let mut batch = if last {
                std::mem::take(&mut slot.carry)
            } else {
                let mut batch = Vec::new();
                let mut rest = Vec::new();
                for r in slot.carry.drain(..) {
                    debug_assert!(r.micros >= self.emitted_to, "record before the watermark");
                    if r.micros < boundary {
                        batch.push(r);
                    } else {
                        rest.push(r);
                    }
                }
                slot.carry = rest;
                batch
            };
            batch.sort_by_key(|r| r.micros);
            ready.push(batch);
        }
        let resident: usize = ready.iter().map(Vec::len).sum::<usize>()
            + self.slots.iter().map(|s| s.carry.len()).sum::<usize>();
        self.peak_resident_records = self.peak_resident_records.max(resident);
        merge_user_records_into(ready, sink)?;
        self.emitted_to = boundary;
        self.finished = last;
        Ok(true)
    }

    /// Pumps [`SlicedWorkload::next_slice_into`] until exhaustion.
    ///
    /// # Errors
    ///
    /// Propagates the sink's error.
    pub fn run_into<S: RecordSink>(&mut self, sink: &mut S) -> Result<(), S::Err> {
        while self.next_slice_into(sink)? {}
        Ok(())
    }

    /// The boundary below which every record has been emitted.
    pub fn emitted_to(&self) -> u64 {
        self.emitted_to
    }

    /// Whether the stream is exhausted.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The largest number of generated-but-unsunk records ever resident
    /// at once — the write path's memory observable. Bounded by the
    /// records one slice produces (plus each user's short carry tail),
    /// independent of the trace length.
    pub fn peak_resident_records(&self) -> usize {
        self.peak_resident_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::sink::into_ok;
    use nfstrace_core::time::{DAY, HOUR};

    fn campus_cfg() -> CampusConfig {
        CampusConfig {
            users: 4,
            duration_micros: DAY,
            seed: 9,
            ..CampusConfig::default()
        }
    }

    fn eecs_cfg() -> EecsConfig {
        EecsConfig {
            users: 3,
            duration_micros: DAY,
            seed: 17,
            ..EecsConfig::default()
        }
    }

    #[test]
    fn campus_sliced_equals_batch_for_any_slice_and_threads() {
        let batch = CampusWorkload::new(campus_cfg()).generate_with_threads(1);
        for (slice, threads) in [(HOUR, 1), (3 * HOUR, 2), (7 * HOUR + 1234, 3), (2 * DAY, 1)] {
            let mut sliced = SlicedWorkload::campus(campus_cfg(), slice, threads);
            let mut out: Vec<TraceRecord> = Vec::new();
            into_ok(sliced.run_into(&mut out));
            assert_eq!(out, batch, "slice={slice} threads={threads}");
            assert!(sliced.is_finished());
        }
    }

    #[test]
    fn eecs_sliced_equals_batch_for_any_slice_and_threads() {
        let batch = EecsWorkload::new(eecs_cfg()).generate_with_threads(1);
        for (slice, threads) in [(2 * HOUR, 1), (5 * HOUR, 2)] {
            let mut sliced = SlicedWorkload::eecs(eecs_cfg(), slice, threads);
            let mut out: Vec<TraceRecord> = Vec::new();
            into_ok(sliced.run_into(&mut out));
            assert_eq!(out, batch, "slice={slice} threads={threads}");
        }
    }

    #[test]
    fn small_slices_bound_resident_records() {
        let batch = CampusWorkload::new(campus_cfg()).generate_with_threads(1);
        let mut sliced = SlicedWorkload::campus(campus_cfg(), HOUR, 1);
        let mut out: Vec<TraceRecord> = Vec::new();
        into_ok(sliced.run_into(&mut out));
        assert_eq!(out.len(), batch.len());
        assert!(
            sliced.peak_resident_records() < batch.len() / 2,
            "peak {} of {} total records — slicing should bound the write path",
            sliced.peak_resident_records(),
            batch.len()
        );
    }

    #[test]
    fn slice_stream_is_monotone_and_stops() {
        let mut sliced = SlicedWorkload::campus(campus_cfg(), 6 * HOUR, 2);
        let mut all: Vec<TraceRecord> = Vec::new();
        let mut boundaries = Vec::new();
        while {
            let more = into_ok(sliced.next_slice_into(&mut all));
            boundaries.push(sliced.emitted_to());
            more
        } {}
        assert!(all.windows(2).all(|w| w[0].micros <= w[1].micros));
        assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        // Exhausted: further pumping is a no-op.
        let before = all.len();
        assert!(!into_ok(sliced.next_slice_into(&mut all)));
        assert_eq!(all.len(), before);
    }

    #[test]
    fn zero_duration_is_empty() {
        let mut sliced = SlicedWorkload::campus(
            CampusConfig {
                users: 2,
                duration_micros: 0,
                ..CampusConfig::default()
            },
            HOUR,
            1,
        );
        let mut out: Vec<TraceRecord> = Vec::new();
        into_ok(sliced.run_into(&mut out));
        assert!(out.is_empty());
    }
}
