//! Converting client wire events into analysis records.
//!
//! [`emitted_to_record`] flattens an [`EmittedCall`] (decoded call +
//! reply) into the version-independent [`TraceRecord`] the analysis
//! suite consumes — the same mapping the passive sniffer performs, usable
//! directly for large simulations that skip wire encoding.

use nfstrace_client::EmittedCall;
use nfstrace_core::record::TraceRecord;
use nfstrace_sniffer::{v3_to_record, CallMeta};

/// Flattens a call/reply pair into a [`TraceRecord`], delegating to the
/// sniffer's canonical mapping so the wire path and the fast path cannot
/// diverge.
pub fn emitted_to_record(e: &EmittedCall) -> TraceRecord {
    let meta = CallMeta {
        wire_micros: e.wire_micros,
        reply_micros: e.reply_micros,
        xid: e.xid,
        client: e.client_ip,
        server: e.server_ip,
        uid: e.uid,
        gid: e.gid,
        vers: e.vers,
    };
    v3_to_record(&meta, &e.call, &e.reply)
}

/// Converts and time-sorts a batch of events (capture order).
pub fn events_to_records(events: &[EmittedCall]) -> Vec<TraceRecord> {
    let mut records: Vec<TraceRecord> = events.iter().map(emitted_to_record).collect();
    records.sort_by_key(|r| r.micros);
    records
}

/// Appends a batch of events to `out` as records, unsorted.
///
/// The generators' hot drain path: per-batch sorting (and the
/// intermediate `Vec`) is wasted work there, because the merged trace
/// is globally sorted once at the end.
pub fn append_records(events: &[EmittedCall], out: &mut Vec<TraceRecord>) {
    out.reserve(events.len());
    out.extend(events.iter().map(emitted_to_record));
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_client::{ClientConfig, ClientMachine};
    use nfstrace_core::record::Op;
    use nfstrace_fssim::NfsServer;

    #[test]
    fn read_write_fields_mapped() {
        let mut server = NfsServer::new(9);
        let root = server.root_fh();
        let mut client = ClientMachine::new(ClientConfig {
            nfsiods: 1,
            ..ClientConfig::default()
        });
        let (fh, t) = client.create(&mut server, 0, &root, "inbox");
        let fh = fh.unwrap();
        let t = client.write(&mut server, t, &fh, 0, 10_000);
        // A foreign append moves the mtime so the next scan re-reads.
        server
            .fs_mut()
            .write(fh.as_u64().unwrap(), 10_000, 2_000, t + 1)
            .unwrap();
        client.read_file(&mut server, t + 60_000_000, &fh);
        let records = events_to_records(&client.take_events());
        assert!(records.iter().any(|r| r.op == Op::Read && r.eof));

        let create = records.iter().find(|r| r.op == Op::Create).unwrap();
        assert_eq!(create.name.as_deref(), Some("inbox"));
        assert!(create.new_fh.is_some());

        let w = records.iter().find(|r| r.op == Op::Write).unwrap();
        assert_eq!(w.pre_size, Some(0));
        assert!(w.ret_count > 0);

        // The read after the attr timeout revalidates; GETATTR carries
        // the post-op size.
        let g = records.iter().find(|r| r.op == Op::Getattr).unwrap();
        assert_eq!(g.post_size, Some(12_000));
    }

    #[test]
    fn records_sorted_by_wire_time() {
        let mut server = NfsServer::new(9);
        let root = server.root_fh();
        let mut client = ClientMachine::new(ClientConfig {
            nfsiods: 8,
            seed: 3,
            ..ClientConfig::default()
        });
        let (fh, t) = client.create(&mut server, 0, &root, "big");
        let fh = fh.unwrap();
        server
            .fs_mut()
            .write(fh.as_u64().unwrap(), 0, 8 << 20, t)
            .unwrap();
        let mut now = t + 60_000_000;
        for i in 0..200u64 {
            client.read(&mut server, now, &fh, i * 8192, 8192);
            now += 200;
        }
        let records = events_to_records(&client.take_events());
        for w in records.windows(2) {
            assert!(w[0].micros <= w[1].micros);
        }
    }

    #[test]
    fn rename_maps_both_names() {
        let mut server = NfsServer::new(9);
        let root = server.root_fh();
        let mut client = ClientMachine::new(ClientConfig::default());
        let (_, t) = client.create(&mut server, 0, &root, "a");
        client.rename(&mut server, t, &root, "a", &root, "b");
        let records = events_to_records(&client.take_events());
        let rn = records.iter().find(|r| r.op == Op::Rename).unwrap();
        assert_eq!(rn.name.as_deref(), Some("a"));
        assert_eq!(rn.name2.as_deref(), Some("b"));
        assert!(rn.fh2.is_some());
    }

    #[test]
    fn setattr_truncate_mapped() {
        let mut server = NfsServer::new(9);
        let root = server.root_fh();
        let mut client = ClientMachine::new(ClientConfig::default());
        let (fh, t) = client.create(&mut server, 0, &root, "f");
        let fh = fh.unwrap();
        let t = client.write(&mut server, t, &fh, 0, 5000);
        client.truncate(&mut server, t, &fh, 0);
        let records = events_to_records(&client.take_events());
        let s = records.iter().find(|r| r.op == Op::Setattr).unwrap();
        assert_eq!(s.truncate_to, Some(0));
        assert_eq!(s.pre_size, Some(5000));
        assert_eq!(s.post_size, Some(0));
    }
}
