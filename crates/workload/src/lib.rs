//! Synthetic generation of the CAMPUS and EECS NFS workloads.
//!
//! The paper's traces are proprietary (privacy-gated, per its §4), so
//! this crate substitutes generative models parameterized from every
//! quantitative statement in the paper:
//!
//! - [`campus`]: the email system. ~10,000 accounts across 14 arrays;
//!   mail delivery appends to flat-file inboxes under lock files,
//!   POP/login sessions scan and rewrite mailboxes, composer temporaries
//!   come and go, and file-grain client caching turns every delivery
//!   into a multi-megabyte re-read (§3.2, §6.1.2).
//! - [`eecs`]: the research system. Home directories served to
//!   single-user workstations; traffic dominated by cache-revalidation
//!   metadata, with writes from builds, logs, browser caches, and
//!   window-manager Applet churn (§3.1, §6.1.1).
//! - [`rate`]: the diurnal/weekly activity rhythm both models share
//!   (§6.2).
//! - [`convert`]: turning client wire events into analysis-ready
//!   [`nfstrace_core::TraceRecord`]s.
//! - [`driver`]: the discrete-event scaffolding and deterministic
//!   random samplers.
//!
//! # Sharded generation
//!
//! Both generators simulate every user independently — its own
//! filesystem replica (disjoint inode base), its own client machines,
//! its own [`driver::user_seed`]-derived RNG — and merge the per-user
//! streams by timestamp. Users are distributed across `std::thread`
//! workers; the `NFSTRACE_THREADS` environment variable (default:
//! available parallelism) sets the pool size and never changes the
//! output: `generate_with_threads(1)` and `generate_with_threads(n)`
//! are bit-identical for the same seed.
//!
//! # Streaming into a sink
//!
//! Both generators also expose `generate_into`, which k-way-merges the
//! per-user streams straight into any
//! [`nfstrace_core::sink::RecordSink`] — an on-disk
//! `nfstrace_store::StoreWriter`, a
//! [`nfstrace_core::index::PartialIndex`], or a plain `Vec` — without
//! ever materializing the **merged** trace, in the exact record order
//! `generate` returns. With `generate_into` the per-user simulation
//! outputs still coexist until the merge drains them, so that path
//! peaks at O(sum of per-user streams).
//!
//! # Time-sliced generation
//!
//! [`sliced::SlicedWorkload`] bounds the write path completely: every
//! user's simulation stays resident and is advanced one bounded time
//! slice at a time, with each slice's records k-way merged into the
//! sink and dropped before the next slice runs. Peak resident record
//! memory is O(records per slice) regardless of trace length, and the
//! record stream is bit-identical to `generate()` for any slice length
//! and worker count — this is what feeds the `nfstrace_live` ingest
//! daemon.

// The zero-copy capture path is only as good as the code around it:
// flag clones of values whose last use this was.
#![warn(clippy::redundant_clone)]

pub mod campus;
pub mod convert;
pub mod driver;
pub mod eecs;
pub mod rate;
pub mod sliced;

pub use campus::{CampusConfig, CampusUserSim, CampusWorkload};
pub use convert::emitted_to_record;
pub use eecs::{EecsConfig, EecsUserSim, EecsWorkload};
pub use sliced::SlicedWorkload;
