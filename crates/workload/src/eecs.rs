//! The EECS research workload (§3.1, §6.1.1).
//!
//! A departmental home-directory filer serving single-user workstations.
//! The traffic signature the paper reports, reproduced mechanistically:
//!
//! - **metadata dominance**: clients continually revalidate cached
//!   dot files, desktop state, and web caches (getattr/lookup/access);
//! - **writes outnumber reads**: each workstation has one user, so its
//!   cache rarely suffers foreign invalidation — reads are absorbed,
//!   while builds, logs, browser caches, editor saves, and nightly cron
//!   jobs all push writes to the server;
//! - **fast block death**: build logs and index files are rewritten "in
//!   an unbuffered manner", overwriting the same tail blocks within a
//!   second; `make clean`, browser-cache turnover, and
//!   `Applet_*_Extern` churn (≈10,000 deletions/day) add deletes;
//! - **no inboxes**: mail lives on other servers; only composer
//!   temporaries appear.
//!
//! Generation is sharded per user: each workstation is simulated
//! independently against its own filesystem replica (disjoint inode
//! base, per-user [`crate::driver::user_seed`]) and the streams merged
//! by timestamp, so the trace is bit-identical for any
//! `NFSTRACE_THREADS` worker count. The only cross-user state — the
//! shared project datasets rewritten nightly — is driven by a refresh
//! schedule precomputed from the base seed: every replica holds the
//! shared files at the same fixed inode ids and applies every refresh
//! to its replica (so everyone's cached copies go stale on schedule),
//! but only the owning user's shard emits the refresh's NFS calls into
//! the merged trace.

use crate::convert::append_records;
use crate::driver::{
    exp_gap, flip, lognormal, merge_user_records_into, pick, user_first_xid, user_seed, EventQueue,
};
use crate::rate::DiurnalRate;
use nfstrace_client::{CacheConfig, ClientConfig, ClientMachine};
use nfstrace_core::record::TraceRecord;
use nfstrace_fssim::NfsServer;
use nfstrace_nfs::fh::FileHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tunable parameters of the EECS model.
#[derive(Debug, Clone, PartialEq)]
pub struct EecsConfig {
    /// Research users, each with a dedicated workstation.
    pub users: usize,
    /// Simulated duration in microseconds.
    pub duration_micros: u64,
    /// RNG seed.
    pub seed: u64,
    /// Desktop revalidation ticks per user per day (each a burst of
    /// attribute calls plus occasional Applet churn).
    pub ticks_per_user_day: f64,
    /// Software builds per user per day.
    pub builds_per_user_day: f64,
    /// Web-browsing sessions per user per day.
    pub browse_per_user_day: f64,
    /// Editor save bursts per user per day.
    pub saves_per_user_day: f64,
    /// Fraction of workstations still speaking NFSv2.
    pub v2_fraction: f64,
    /// Nightly cron data-processing jobs per user per day.
    pub cron_jobs_per_user_day: f64,
    /// Reads of shared project datasets per user per day. Shared files
    /// are rewritten by cron jobs, so these reads periodically go cold —
    /// the research-data read traffic of the RES-style workload.
    pub shared_reads_per_user_day: f64,
    /// Number of shared dataset files (scaled to the population).
    pub shared_files: usize,
    /// Diurnal shape (research hours, busier evenings than CAMPUS).
    pub rate: DiurnalRate,
}

impl Default for EecsConfig {
    fn default() -> Self {
        EecsConfig {
            users: 24,
            duration_micros: nfstrace_core::time::DAY,
            seed: 1789,
            ticks_per_user_day: 1600.0,
            builds_per_user_day: 8.0,
            browse_per_user_day: 6.0,
            saves_per_user_day: 40.0,
            v2_fraction: 0.3,
            cron_jobs_per_user_day: 0.7,
            shared_reads_per_user_day: 28.0,
            shared_files: 12,
            rate: DiurnalRate {
                night_floor: 0.15,
                day_peak: 1.0,
                weekend_factor: 0.5,
            },
        }
    }
}

#[derive(Debug)]
struct Workstation {
    machine: ClientMachine,
    home: FileHandle,
    project: FileHandle,
    cache_dir: FileHandle,
    sources: Vec<(String, FileHandle)>,
    dotfiles: Vec<FileHandle>,
    log: FileHandle,
    data_file: FileHandle,
    /// Monotone counters for unique names.
    applet_seq: u32,
    cache_seq: u32,
    tmp_seq: u32,
    /// Live browser-cache file names (FIFO eviction).
    cache_files: Vec<String>,
    /// Live Applet file name, if any.
    applet: Option<String>,
    /// Object files present from the last build.
    objects: Vec<String>,
    /// Shared dataset files everyone may read.
    shared: Vec<FileHandle>,
    /// Rotating cron output names: the newest is kept, older deleted.
    cron_outputs: Vec<String>,
    cron_seq: u32,
}

#[derive(Debug)]
enum Ev {
    Tick,
    Build,
    Browse,
    Save,
    Cron,
    SharedRead,
    Refresh { dataset: usize, owned: bool },
}

/// One entry of the precomputed shared-dataset refresh schedule.
#[derive(Debug, Clone, Copy)]
struct Refresh {
    /// When the nightly job rewrites the dataset.
    micros: u64,
    /// Which shared dataset is rewritten.
    dataset: usize,
    /// Whose workstation runs the job (that shard emits the records).
    owner: usize,
}

/// Fixed inode base for the shared datasets: identical in every user's
/// filesystem replica, so the merged trace sees one id per dataset.
/// Public so tests can tell shared-dataset ids (`base..2 * base`) from
/// per-user ids (`(u + 2) << 32` and up).
pub const SHARED_INODE_BASE: u64 = 1 << 32;

/// The EECS generator.
#[derive(Debug, Clone)]
pub struct EecsWorkload {
    /// The configuration used.
    pub config: EecsConfig,
}

/// The cross-user state shared by every EECS user simulation: the
/// shared dataset sizes and the precomputed nightly refresh schedule,
/// both derived from the base seed before any shard starts.
///
/// Build it once with [`EecsWorkload::sim_seed`] and hand it to every
/// [`EecsWorkload::user_sim`] call, exactly as the batch generator
/// does internally.
#[derive(Debug, Clone)]
pub struct EecsSimSeed {
    shared_sizes: std::sync::Arc<Vec<u32>>,
    schedule: std::sync::Arc<Vec<Refresh>>,
}

impl EecsWorkload {
    /// Creates a generator.
    pub fn new(config: EecsConfig) -> Self {
        Self { config }
    }

    /// Runs the simulation and returns time-sorted trace records.
    ///
    /// Users are sharded across `NFSTRACE_THREADS` worker threads (see
    /// [`nfstrace_core::parallel::threads`]); the output is
    /// bit-identical for any worker count.
    pub fn generate(&self) -> Vec<TraceRecord> {
        self.generate_with_threads(nfstrace_core::parallel::threads())
    }

    /// [`EecsWorkload::generate`] with an explicit worker count.
    pub fn generate_with_threads(&self, threads: usize) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        nfstrace_core::sink::into_ok(self.generate_into(threads, &mut out));
        out
    }

    /// Streams the merged trace straight into `sink` — a `Vec`, an
    /// on-disk store writer, a partial index — without materializing
    /// the merged record vector. The record sequence is bit-identical
    /// to [`EecsWorkload::generate`] for any worker count.
    ///
    /// # Errors
    ///
    /// Propagates the sink's error (infallible for `Vec<TraceRecord>`).
    pub fn generate_into<S: nfstrace_core::sink::RecordSink>(
        &self,
        threads: usize,
        sink: &mut S,
    ) -> Result<(), S::Err> {
        let seed = self.sim_seed();
        let per_user = nfstrace_core::parallel::run_sharded(self.config.users, threads, |u| {
            self.simulate_user(u, &seed)
        });
        merge_user_records_into(per_user, sink)
    }

    /// Precomputes the cross-user state every shard needs. Everything
    /// here is derived from the base seed before the shards start:
    /// shared dataset sizes and the nightly refresh schedule are
    /// identical in every replica.
    pub fn sim_seed(&self) -> EecsSimSeed {
        let cfg = &self.config;
        let mut srng = StdRng::seed_from_u64(cfg.seed ^ 0x5AED_CAFE);
        let shared_sizes: Vec<u32> = (0..cfg.shared_files.max(1))
            .map(|_| (lognormal(&mut srng, 250_000.0, 0.8) as u32).clamp(40_000, 1_000_000))
            .collect();
        let schedule = self.refresh_schedule(&mut srng, shared_sizes.len());
        EecsSimSeed {
            shared_sizes: std::sync::Arc::new(shared_sizes),
            schedule: std::sync::Arc::new(schedule),
        }
    }

    /// Precomputes the nightly shared-dataset refreshes. Rate matches
    /// the per-user cron model this schedule replaced: each user's
    /// nightly data job refreshes one dataset about half the nights.
    fn refresh_schedule(&self, rng: &mut StdRng, n_datasets: usize) -> Vec<Refresh> {
        use nfstrace_core::time::{DAY, HOUR};
        let cfg = &self.config;
        let p = (cfg.cron_jobs_per_user_day * 0.49).clamp(0.0, 1.0);
        let nights = cfg.duration_micros / DAY + 1;
        let mut out = Vec::new();
        for night in 0..nights {
            for owner in 0..cfg.users {
                if flip(rng, p) {
                    out.push(Refresh {
                        micros: night * DAY + 2 * HOUR + pick(rng, 0, 2 * HOUR),
                        dataset: pick(rng, 0, n_datasets as u64) as usize,
                        owner,
                    });
                }
            }
        }
        out
    }

    /// Simulates one workstation's whole trace against a private
    /// filesystem replica. Deterministic given `(config, u)`.
    fn simulate_user(&self, u: usize, seed: &EecsSimSeed) -> Vec<TraceRecord> {
        let mut sim = self.user_sim(u, seed);
        let mut out = Vec::new();
        sim.advance_until(u64::MAX, &mut out);
        out
    }

    /// Builds workstation `u`'s resident simulation, positioned at time
    /// zero. Same contract as [`crate::CampusWorkload::user_sim`]:
    /// advancing it under any slicing reproduces the batch per-user
    /// stream bit for bit.
    pub fn user_sim(&self, u: usize, seed: &EecsSimSeed) -> EecsUserSim {
        let shared_sizes: &[u32] = &seed.shared_sizes;
        let schedule: &[Refresh] = &seed.schedule;
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(user_seed(cfg.seed, u));
        let mut server = NfsServer::new(0x0a02_0002);
        let root = server.fs_mut().root();

        // Shared project datasets, rewritten nightly and read by anyone.
        // Pinned to a fixed inode base so every replica agrees on ids.
        server.fs_mut().set_next_id(SHARED_INODE_BASE);
        let shared_dir = server.fs_mut().mkdir(root, "shared", 0, 200, 0).unwrap();
        let mut shared = Vec::new();
        for (i, &sz) in shared_sizes.iter().enumerate() {
            let (fh, _) = server
                .fs_mut()
                .create(shared_dir, &format!("dataset{i:02}.dat"), 0, 200, 0)
                .unwrap();
            server.fs_mut().write(fh, 0, sz, 0).unwrap();
            shared.push(FileHandle::from_u64(fh));
        }
        // This user's files live above a disjoint per-user base.
        server.fs_mut().set_next_id((u as u64 + 2) << 32);

        let station = {
            let home = server
                .fs_mut()
                .mkdir(root, &format!("res{u:03}"), u as u32, 200, 0)
                .unwrap();
            let project = server
                .fs_mut()
                .mkdir(home, "project", u as u32, 200, 0)
                .unwrap();
            let cache_dir = server
                .fs_mut()
                .mkdir(home, ".browser-cache", u as u32, 200, 0)
                .unwrap();
            let mut sources = Vec::new();
            for s in 0..pick(&mut rng, 12, 30) {
                let name = format!("mod{s:02}.c");
                let (fh, _) = server
                    .fs_mut()
                    .create(project, &name, u as u32, 200, 0)
                    .unwrap();
                server
                    .fs_mut()
                    .write(
                        fh,
                        0,
                        (lognormal(&mut rng, 6_000.0, 0.9) as u32).clamp(500, 80_000),
                        0,
                    )
                    .unwrap();
                sources.push((name, FileHandle::from_u64(fh)));
            }
            let mut dotfiles = Vec::new();
            for d in [".cshrc", ".xsession", ".emacs", ".netscape-prefs"] {
                let (fh, _) = server.fs_mut().create(home, d, u as u32, 200, 0).unwrap();
                server
                    .fs_mut()
                    .write(fh, 0, pick(&mut rng, 400, 8_000) as u32, 0)
                    .unwrap();
                dotfiles.push(FileHandle::from_u64(fh));
            }
            let (log, _) = server
                .fs_mut()
                .create(project, "build.log", u as u32, 200, 0)
                .unwrap();
            let (data_file, _) = server
                .fs_mut()
                .create(home, "results.dat", u as u32, 200, 0)
                .unwrap();
            server
                .fs_mut()
                .write(
                    data_file,
                    0,
                    (lognormal(&mut rng, 1_500_000.0, 0.8) as u32).clamp(384 << 10, 6 << 20),
                    0,
                )
                .unwrap();

            // Protocol mix: the first `v2_fraction` of workstations
            // still speak NFSv2 — a deterministic assignment, so the
            // mix survives sharding at any population size.
            let vers = if ((u as f64) + 0.5) / (cfg.users as f64) <= cfg.v2_fraction {
                2
            } else {
                3
            };
            let machine = ClientMachine::new(ClientConfig {
                ip: 0x0a02_0100 + u as u32,
                uid: u as u32,
                gid: 200,
                vers,
                nfsiods: 4,
                rsize: 8192,
                wsize: 8192,
                cache: CacheConfig {
                    attr_timeout_micros: 15_000_000,
                    capacity_blocks: 16 * 1024,
                },
                meta_latency_micros: 150,
                server_latency_micros: 250,
                seed: user_seed(cfg.seed, u) ^ 0x77,
                first_xid: user_first_xid(cfg.seed, u),
            });
            Workstation {
                machine,
                home: FileHandle::from_u64(home),
                project: FileHandle::from_u64(project),
                cache_dir: FileHandle::from_u64(cache_dir),
                sources,
                dotfiles,
                log: FileHandle::from_u64(log),
                data_file: FileHandle::from_u64(data_file),
                applet_seq: 0,
                cache_seq: 0,
                tmp_seq: 0,
                cache_files: Vec::new(),
                applet: None,
                objects: Vec::new(),
                shared,
                cron_outputs: Vec::new(),
                cron_seq: 0,
            }
        };
        let w = station;

        let day = nfstrace_core::time::DAY as f64;
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.push(exp_gap(&mut rng, day / cfg.ticks_per_user_day), Ev::Tick);
        q.push(exp_gap(&mut rng, day / cfg.builds_per_user_day), Ev::Build);
        q.push(exp_gap(&mut rng, day / cfg.browse_per_user_day), Ev::Browse);
        q.push(exp_gap(&mut rng, day / cfg.saves_per_user_day), Ev::Save);
        q.push(self.next_cron(&mut rng, 0), Ev::Cron);
        q.push(
            exp_gap(&mut rng, day / cfg.shared_reads_per_user_day),
            Ev::SharedRead,
        );
        // The department's refresh schedule: every replica replays every
        // refresh (keeping everyone's cached copies on the same
        // staleness clock), but only the owner's shard emits records.
        for r in schedule {
            q.push(
                r.micros,
                Ev::Refresh {
                    dataset: r.dataset,
                    owned: r.owner == u,
                },
            );
        }

        EecsUserSim {
            wl: self.clone(),
            shared_sizes: std::sync::Arc::clone(&seed.shared_sizes),
            server,
            w,
            rng,
            q,
        }
    }

    /// Next cron firing: clustered in the small hours of the night.
    /// The first night counts too — at the Sunday-midnight epoch the
    /// coming 2–4am window is still ahead, so single-day simulations
    /// see their nightly jobs.
    fn next_cron(&self, rng: &mut StdRng, now: u64) -> u64 {
        use nfstrace_core::time::{DAY, HOUR};
        let jobs = self.config.cron_jobs_per_user_day.max(0.01);
        let skip_days = (exp_gap(rng, DAY as f64 / jobs) / DAY).min(6);
        // At most one firing per night per chain: once `now` has reached
        // tonight's window start, the earliest candidate is tomorrow's.
        let night_start = (now / DAY) * DAY + 2 * HOUR;
        let base_night = if now < night_start {
            night_start
        } else {
            night_start + DAY
        };
        base_night + skip_days * DAY + pick(rng, 0, 2 * HOUR)
    }

    /// A burst of cache-revalidation metadata, with occasional window-
    /// manager Applet churn.
    fn desktop_tick(server: &mut NfsServer, w: &mut Workstation, rng: &mut StdRng, t: u64) {
        let mut now = t;
        // Revalidate a few dotfiles: getattr (+ access on v3), with an
        // occasional fresh lookup when the name-cache entry expired.
        let burst = pick(rng, 2, 7) as usize;
        for i in 0..burst {
            let fh = w.dotfiles[(i + t as usize) % w.dotfiles.len()].clone();
            let (_, t2) = w.machine.getattr(server, now, &fh);
            now = t2;
            if flip(rng, 0.4) {
                now = w.machine.access(server, now, &fh);
            }
        }
        if flip(rng, 0.5) {
            let home = w.home.clone();
            let (_, t2) = w.machine.lookup(server, now, &home, ".xsession");
            now = t2;
        }
        if flip(rng, 0.25) {
            now = w.machine.readdir(server, now, &w.home.clone());
        }
        // Applet files: create the new one, delete the old (§5.2.2's
        // ~10,000 Applet_*_Extern deletions per day).
        if flip(rng, 0.5) {
            let old = w.applet.take();
            let name = format!("Applet_{}_Extern", w.applet_seq);
            w.applet_seq += 1;
            let home = w.home.clone();
            let (fh, t2) = w.machine.create(server, now, &home, &name);
            now = t2;
            if let Some(fh) = fh {
                now = w.machine.write(server, now, &fh, 0, pick(rng, 100, 2_000));
            }
            if let Some(old_name) = old {
                now = w.machine.remove(server, now, &home, &old_name);
            }
            w.applet = Some(name);
        }
        let _ = now;
    }

    /// A software build: read sources, write objects and a chattering
    /// log, link a binary, sometimes clean up.
    fn build(server: &mut NfsServer, w: &mut Workstation, rng: &mut StdRng, t: u64) {
        let mut now = t;
        let project = w.project.clone();
        let log = w.log.clone();
        // Reset the log (truncate: the "index/log file" overwrite site).
        now = w.machine.truncate(server, now, &log, 0);
        let n_modules = pick(rng, 3, w.sources.len() as u64) as usize;
        let mut log_off = 0u64;
        for m in 0..n_modules {
            let (src_name, src_fh) = w.sources[m].clone();
            // Source read: absorbed when cached, getattr otherwise.
            now = w.machine.read_file(server, now, &src_fh);
            // Object file: create (truncates any previous) + write.
            let obj = src_name.replace(".c", ".o");
            let (ofh, t2) = w.machine.create(server, now, &project, &obj);
            now = t2;
            if let Some(ofh) = ofh {
                let osz = (lognormal(rng, 15_000.0, 0.8) as u64).clamp(1_000, 300_000);
                now = w.machine.write(server, now, &ofh, 0, osz);
            }
            if !w.objects.contains(&obj) {
                w.objects.push(obj);
            }
            // Unbuffered compiler chatter: many small appends landing in
            // the same 8 KB tail block — sub-second overwrite deaths
            // ("log or index files that are written frequently and in an
            // unbuffered manner", §5.2.3).
            for _ in 0..pick(rng, 10, 24) {
                let n = pick(rng, 60, 400);
                now = w
                    .machine
                    .write(server, now + pick(rng, 20_000, 120_000), &log, log_off, n);
                log_off += n;
            }
        }
        // Link the binary.
        let (bfh, t2) = w.machine.create(server, now, &project, "a.out");
        now = t2;
        if let Some(bfh) = bfh {
            let bsz = (lognormal(rng, 400_000.0, 0.7) as u64).clamp(50_000, 4 << 20);
            now = w.machine.write(server, now, &bfh, 0, bsz);
        }
        // Occasionally `make clean`: delete all objects.
        if flip(rng, 0.3) {
            for obj in std::mem::take(&mut w.objects) {
                now = w.machine.remove(server, now + 50_000, &project, &obj);
            }
        }
    }

    /// A browsing session: the browser cache lives in the home directory
    /// (§6.1.1 — "much of the EECS workload is caching web pages").
    fn browse(server: &mut NfsServer, w: &mut Workstation, rng: &mut StdRng, t: u64) {
        let mut now = t;
        let dir = w.cache_dir.clone();
        let pages = pick(rng, 5, 25);
        for _ in 0..pages {
            // Revisit: read an existing cache file; miss: write a new one.
            if !w.cache_files.is_empty() && flip(rng, 0.35) {
                let name = w.cache_files[pick(rng, 0, w.cache_files.len() as u64) as usize].clone();
                if let (Some(fh), t2) = w.machine.lookup(server, now, &dir, &name) {
                    now = w.machine.read_file(server, t2, &fh);
                } else {
                    now += 1000;
                }
            } else {
                let name = format!("cache{:08}", w.cache_seq);
                w.cache_seq += 1;
                let (fh, t2) = w.machine.create(server, now, &dir, &name);
                now = t2;
                if let Some(fh) = fh {
                    // Unbuffered browsers write the headers first, then
                    // rewrite from offset 0 with the body milliseconds
                    // later: the first block dies within a second.
                    let sz = (lognormal(rng, 8_000.0, 1.2) as u64).clamp(300, 500_000);
                    let t3 = w.machine.write(server, now, &fh, 0, pick(rng, 120, 500));
                    now = w
                        .machine
                        .write(server, t3 + pick(rng, 20_000, 400_000), &fh, 0, sz);
                }
                w.cache_files.push(name);
            }
            now += exp_gap(rng, 8_000_000.0); // think time between pages
        }
        // Cache turnover: evict oldest entries past a cap.
        while w.cache_files.len() > 60 {
            let victim = w.cache_files.remove(0);
            now = w.machine.remove(server, now + 20_000, &dir, &victim);
        }
    }

    /// An editor save: write a `#temp#`, rewrite the file, keep a `~`
    /// backup.
    fn editor_save(server: &mut NfsServer, w: &mut Workstation, rng: &mut StdRng, t: u64) {
        let mut now = t;
        let project = w.project.clone();
        let (name, src) = w.sources[pick(rng, 0, w.sources.len() as u64) as usize].clone();
        now = w.machine.read_file(server, now, &src);
        // The user edits for a while before saving.
        now += pick(rng, 5_000_000, 120_000_000);
        let tmp = format!("#{name}#");
        let (tfh, t2) = w.machine.create(server, now, &project, &tmp);
        now = t2;
        let size = server
            .fs()
            .inode(src.as_u64().unwrap_or(0))
            .map(|i| i.size)
            .unwrap_or(4000)
            .max(500);
        // The file drifts in size as the user edits.
        let new_size = ((size as f64) * (0.9 + 0.2 * (pick(rng, 0, 1000) as f64 / 1000.0))) as u64;
        if let Some(tfh) = tfh {
            now = w.machine.write(server, now, &tfh, 0, new_size);
        }
        // Editors lock the file while saving ("a large number of locks
        // for mail and other applications", Table 1).
        let lock_name = format!("{name}.lock");
        let (_, tlock) = w.machine.create(server, now, &project, &lock_name);
        now = tlock;
        // Backup then replace.
        let backup = format!("{name}~");
        let (bfh, t2) = w.machine.create(server, now, &project, &backup);
        now = t2;
        if let Some(bfh) = bfh {
            now = w.machine.write(server, now, &bfh, 0, size);
        }
        if flip(rng, 0.3) {
            // Save-by-rename: the temp file replaces the original.
            now = w
                .machine
                .rename(server, now, &project, &tmp, &project, &name);
            // The original identity changed; recreate the temp name's
            // slot for the next save.
            if let (Some(new_fh), tl) = w.machine.lookup(server, now, &project, &name) {
                if let Some(slot) = w.sources.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = new_fh;
                }
                now = tl;
            }
        } else {
            now = w.machine.truncate(server, now, &src, 0);
            now = w.machine.write(server, now, &src, 0, new_size);
            now = w
                .machine
                .remove(server, now + pick(rng, 100_000, 2_000_000), &project, &tmp);
        }
        now = w.machine.remove(
            server,
            now + pick(rng, 50_000, 300_000),
            &project,
            &lock_name,
        );
        // Composer temporaries appear occasionally (mail lock and tmp
        // files exist on EECS too, per Table 1).
        if flip(rng, 0.1) {
            let home = w.home.clone();
            let tmp_name = format!("snd.{}", w.tmp_seq);
            w.tmp_seq += 1;
            let (cfh, t3) = w.machine.create(server, now, &home, &tmp_name);
            let mut t4 = t3;
            if let Some(cfh) = cfh {
                t4 = w.machine.write(server, t4, &cfh, 0, pick(rng, 500, 8_000));
            }
            w.machine.remove(
                server,
                t4 + pick(rng, 1_000_000, 60_000_000),
                &home,
                &tmp_name,
            );
        }
    }

    /// A nightly cron job: read a big data file, write a bigger output —
    /// the off-hours load spikes of §6.2.
    fn cron_job(server: &mut NfsServer, w: &mut Workstation, rng: &mut StdRng, t: u64) {
        let mut now = t;
        let data = w.data_file.clone();
        let home = w.home.clone();
        now = w.machine.read_file(server, now, &data);
        // Each run writes a fresh output file and deletes stale ones —
        // "manipulating data can create and delete many temporary files"
        // (§5.2.2), which is why EECS deaths skew to deletion.
        let out_name = format!("results.{:04}.out", w.cron_seq);
        w.cron_seq += 1;
        let (ofh, t2) = w.machine.create(server, now, &home, &out_name);
        now = t2;
        if let Some(ofh) = ofh {
            let size = server
                .fs()
                .inode(data.as_u64().unwrap_or(0))
                .map(|i| i.size)
                .unwrap_or(1 << 20);
            // "Write a bigger output": data manipulation expands its
            // input (1–2x), which is what tips EECS write-heavy.
            let out_size = (size as f64 * (1.0 + pick(rng, 0, 100) as f64 / 100.0)) as u64;
            now = w.machine.write(server, now, &ofh, 0, out_size);
        }
        w.cron_outputs.push(out_name);
        while w.cron_outputs.len() > 1 {
            let victim = w.cron_outputs.remove(0);
            now = w.machine.remove(server, now + 100_000, &home, &victim);
        }
        // Shared-dataset refreshes are driven by the precomputed
        // department schedule (see `refresh_schedule`), not by this
        // per-user job: that keeps sharded generation deterministic.
        let _ = now;
    }
}

/// One workstation's resident EECS simulation, steppable in bounded
/// time slices (the EECS twin of
/// [`crate::campus::CampusUserSim`]).
#[derive(Debug)]
pub struct EecsUserSim {
    wl: EecsWorkload,
    shared_sizes: std::sync::Arc<Vec<u32>>,
    server: NfsServer,
    w: Workstation,
    rng: StdRng,
    q: EventQueue<Ev>,
}

impl EecsUserSim {
    /// Runs every pending event strictly before `end_micros` (capped at
    /// the configured duration), appending the records they emit to
    /// `out` in emission order. Future records are stamped
    /// `>= end_micros` once this returns.
    pub fn advance_until(&mut self, end_micros: u64, out: &mut Vec<TraceRecord>) {
        let end = end_micros.min(self.wl.config.duration_micros);
        let day = nfstrace_core::time::DAY as f64;
        while self.q.next_time().is_some_and(|t| t < end) {
            let (t, ev) = self.q.pop().expect("peeked a pending event");
            let cfg = &self.wl.config;
            match ev {
                Ev::Tick => {
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        EecsWorkload::desktop_tick(&mut self.server, &mut self.w, &mut self.rng, t);
                        append_records(&self.w.machine.take_events(), out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.ticks_per_user_day),
                        Ev::Tick,
                    );
                }
                Ev::Build => {
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        EecsWorkload::build(&mut self.server, &mut self.w, &mut self.rng, t);
                        append_records(&self.w.machine.take_events(), out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.builds_per_user_day),
                        Ev::Build,
                    );
                }
                Ev::Browse => {
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        EecsWorkload::browse(&mut self.server, &mut self.w, &mut self.rng, t);
                        append_records(&self.w.machine.take_events(), out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.browse_per_user_day),
                        Ev::Browse,
                    );
                }
                Ev::Save => {
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        EecsWorkload::editor_save(&mut self.server, &mut self.w, &mut self.rng, t);
                        append_records(&self.w.machine.take_events(), out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.saves_per_user_day),
                        Ev::Save,
                    );
                }
                Ev::Cron => {
                    EecsWorkload::cron_job(&mut self.server, &mut self.w, &mut self.rng, t);
                    append_records(&self.w.machine.take_events(), out);
                    let next = self.wl.next_cron(&mut self.rng, t);
                    self.q.push(next, Ev::Cron);
                }
                Ev::SharedRead => {
                    if flip(&mut self.rng, cfg.rate.at(t)) {
                        let fh = self.w.shared
                            [pick(&mut self.rng, 0, self.w.shared.len() as u64) as usize]
                            .clone();
                        self.w.machine.read_file(&mut self.server, t, &fh);
                        append_records(&self.w.machine.take_events(), out);
                    }
                    let cfg = &self.wl.config;
                    self.q.push(
                        t + exp_gap(&mut self.rng, day / cfg.shared_reads_per_user_day),
                        Ev::SharedRead,
                    );
                }
                Ev::Refresh { dataset, owned } => {
                    let fh = self.w.shared[dataset].clone();
                    let size = u64::from(self.shared_sizes[dataset]);
                    if owned {
                        // This workstation runs the job: truncate and
                        // rewrite through the client, emitting records.
                        let t2 = self.w.machine.truncate(&mut self.server, t, &fh, 0);
                        self.w.machine.write(&mut self.server, t2, &fh, 0, size);
                        append_records(&self.w.machine.take_events(), out);
                    } else {
                        // Someone else's job: replay it silently so this
                        // replica's dataset mtime (and thus this client's
                        // cache staleness) matches the merged reality.
                        let id = fh.as_u64().unwrap_or(0);
                        let _ = self.server.fs_mut().set_size(id, 0, t);
                        let _ = self.server.fs_mut().write(id, 0, size as u32, t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace_core::record::Op;
    use nfstrace_core::summary::SummaryStats;

    fn small_day() -> Vec<TraceRecord> {
        EecsWorkload::new(EecsConfig {
            users: 6,
            duration_micros: nfstrace_core::time::DAY,
            seed: 3,
            ..EecsConfig::default()
        })
        .generate()
    }

    #[test]
    fn generates_sorted_nonempty_trace() {
        let recs = small_day();
        assert!(recs.len() > 1000, "records = {}", recs.len());
        for w in recs.windows(2) {
            assert!(w[0].micros <= w[1].micros);
        }
    }

    #[test]
    fn metadata_calls_dominate() {
        let recs = small_day();
        let s = SummaryStats::from_records(recs.iter());
        assert!(
            s.data_fraction() < 0.5,
            "data fraction = {}",
            s.data_fraction()
        );
        assert!(s.attribute_ops > s.read_ops + s.write_ops);
    }

    #[test]
    fn writes_exceed_reads() {
        let recs = small_day();
        let s = SummaryStats::from_records(recs.iter());
        assert!(
            s.rw_bytes_ratio() < 1.0,
            "read/write byte ratio = {}",
            s.rw_bytes_ratio()
        );
        assert!(
            s.rw_ops_ratio() < 1.2,
            "read/write op ratio = {}",
            s.rw_ops_ratio()
        );
    }

    #[test]
    fn applet_churn_present() {
        let recs = small_day();
        let applet_removes = recs
            .iter()
            .filter(|r| {
                r.op == Op::Remove && r.name.as_deref().is_some_and(|n| n.starts_with("Applet_"))
            })
            .count();
        assert!(applet_removes > 10, "applet removes = {applet_removes}");
    }

    #[test]
    fn mixed_protocol_versions() {
        let recs = small_day();
        let v2 = recs.iter().filter(|r| r.vers == 2).count();
        let v3 = recs.iter().filter(|r| r.vers == 3).count();
        assert!(v2 > 0, "expected some NFSv2 traffic");
        assert!(v3 > v2, "v3 should dominate");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small_day();
        let b = small_day();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn fast_block_death_shape() {
        use nfstrace_core::lifetime::{analyze, LifetimeConfig};
        let recs = small_day();
        let rep = analyze(
            recs.iter(),
            LifetimeConfig {
                phase1_start: 0,
                phase1_len: nfstrace_core::time::DAY / 2,
                phase2_len: nfstrace_core::time::DAY / 2,
            },
        );
        assert!(rep.births_total() > 100);
        // A real mix of death causes, deletes prominent (the paper saw
        // 51.8% deletes, 42.4% overwrites on EECS).
        assert!(rep.deaths_delete > 0);
        assert!(rep.deaths_overwrite > 0);
    }
}
