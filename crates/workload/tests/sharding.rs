//! Sharded generation must be bit-identical to single-threaded
//! generation: the thread count is a wall-clock knob, never a semantic
//! one.

use nfstrace_workload::{CampusConfig, CampusWorkload, EecsConfig, EecsWorkload};

const SIX_HOURS: u64 = 6 * nfstrace_core::time::HOUR;

#[test]
fn campus_sharded_output_is_bit_identical() {
    let w = CampusWorkload::new(CampusConfig {
        users: 7,
        duration_micros: SIX_HOURS,
        seed: 99,
        ..CampusConfig::default()
    });
    let serial = w.generate_with_threads(1);
    assert!(serial.len() > 200, "records = {}", serial.len());
    for threads in [2, 3, 8] {
        assert_eq!(
            serial,
            w.generate_with_threads(threads),
            "threads={threads}"
        );
    }
}

#[test]
fn eecs_sharded_output_is_bit_identical() {
    let w = EecsWorkload::new(EecsConfig {
        users: 5,
        duration_micros: SIX_HOURS,
        seed: 424,
        ..EecsConfig::default()
    });
    let serial = w.generate_with_threads(1);
    assert!(serial.len() > 200, "records = {}", serial.len());
    for threads in [2, 4, 16] {
        assert_eq!(
            serial,
            w.generate_with_threads(threads),
            "threads={threads}"
        );
    }
}

#[test]
fn sink_streaming_matches_vec_generation() {
    // generate_into is the out-of-core path: the k-way merge into a
    // sink must produce the exact record sequence `generate` returns.
    let campus = CampusWorkload::new(CampusConfig {
        users: 5,
        duration_micros: SIX_HOURS,
        seed: 31,
        ..CampusConfig::default()
    });
    let vec_path = campus.generate_with_threads(2);
    let mut sunk: Vec<nfstrace_core::record::TraceRecord> = Vec::new();
    nfstrace_core::sink::into_ok(campus.generate_into(3, &mut sunk));
    assert_eq!(sunk, vec_path);

    let eecs = EecsWorkload::new(EecsConfig {
        users: 4,
        duration_micros: SIX_HOURS,
        seed: 77,
        ..EecsConfig::default()
    });
    let vec_path = eecs.generate_with_threads(1);
    let mut sunk: Vec<nfstrace_core::record::TraceRecord> = Vec::new();
    nfstrace_core::sink::into_ok(eecs.generate_into(4, &mut sunk));
    assert_eq!(sunk, vec_path);

    // Streaming into a partial index folds the same trace.
    let campus_vec = campus.generate_with_threads(1);
    let mut partial = nfstrace_core::PartialIndex::new();
    nfstrace_core::sink::into_ok(campus.generate_into(2, &mut partial));
    let base = partial.finish();
    assert_eq!(base.len, campus_vec.len());
    assert_eq!(
        base.summary,
        nfstrace_core::SummaryStats::from_records(campus_vec.iter())
    );
}

#[test]
fn eecs_shared_datasets_have_one_identity_across_users() {
    // Every user's replica pins the shared files to the same inode ids
    // (SHARED_INODE_BASE..2*SHARED_INODE_BASE): a dataset read by two
    // different workstations must reference the same FileId, and the
    // number of distinct shared ids must not scale with the user count.
    use nfstrace_workload::eecs::SHARED_INODE_BASE;
    use std::collections::{HashMap, HashSet};
    let cfg = EecsConfig {
        users: 4,
        duration_micros: 2 * nfstrace_core::time::DAY,
        seed: 7,
        ..EecsConfig::default()
    };
    let shared_files = cfg.shared_files;
    let recs = EecsWorkload::new(cfg).generate();
    let shared_range = SHARED_INODE_BASE..2 * SHARED_INODE_BASE;
    let mut clients_per_fh: HashMap<u64, HashSet<u32>> = HashMap::new();
    for r in &recs {
        if shared_range.contains(&r.fh.0) {
            clients_per_fh.entry(r.fh.0).or_default().insert(r.client);
        }
    }
    assert!(
        !clients_per_fh.is_empty(),
        "no shared-dataset traffic in the trace"
    );
    // One id per dataset plus at most the shared directory itself —
    // NOT one copy per user.
    assert!(
        clients_per_fh.len() <= shared_files + 1,
        "{} distinct shared ids for {shared_files} datasets",
        clients_per_fh.len()
    );
    // At least one dataset is touched by several distinct workstations
    // under the same id.
    let max_clients = clients_per_fh.values().map(HashSet::len).max().unwrap();
    assert!(
        max_clients >= 2,
        "no dataset shared across clients (max {max_clients})"
    );
}
