//! Deterministic fork/join helpers shared by the analysis and workload
//! layers.
//!
//! Everything here is plain `std::thread` — the workspace builds
//! offline, so no rayon. The contract every caller relies on is
//! *determinism*: results are returned in item order, so the output of a
//! sharded computation is byte-identical no matter how many worker
//! threads ran it (including one). The worker count comes from the
//! `NFSTRACE_THREADS` environment variable and defaults to the machine's
//! available parallelism.

/// Upper bound on the worker count; beyond this the per-thread shards of
/// any realistic trace are too small to matter.
pub const MAX_THREADS: usize = 64;

/// The worker count: `NFSTRACE_THREADS` if set and parseable, otherwise
/// the machine's available parallelism, clamped to `1..=`[`MAX_THREADS`].
pub fn threads() -> usize {
    std::env::var("NFSTRACE_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// Computes `f(0), f(1), .., f(n-1)` across at most `threads` scoped
/// worker threads and returns the results **in item order**.
///
/// Items are split into contiguous chunks, one per worker, so item `i`
/// always lands in the same shard for a given `(n, threads)` — but the
/// output is independent of even that, because each result is written to
/// its own slot.
///
/// # Examples
///
/// ```
/// use nfstrace_core::parallel::run_sharded;
///
/// let squares = run_sharded(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// // Any worker count yields the same output.
/// assert_eq!(squares, run_sharded(5, 1, |i| i * i));
/// ```
pub fn run_sharded<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, shard) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, slot) in shard.iter_mut().enumerate() {
                    *slot = Some(f(ci * chunk + j));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every shard slot is filled"))
        .collect()
}

/// Applies `f` to every item of `items` — with mutable access — across
/// at most `threads` scoped worker threads, returning the results **in
/// item order**.
///
/// The mutable sibling of [`run_sharded`], for computations that
/// *advance* per-item state instead of producing it from scratch (the
/// time-sliced workload generator steps every user's resident
/// simulation forward one slice at a time). Items split into contiguous
/// chunks exactly like [`run_sharded`], and the output is independent
/// of the worker count.
///
/// # Examples
///
/// ```
/// use nfstrace_core::parallel::run_sharded_mut;
///
/// let mut counters = vec![0u64; 5];
/// let doubled = run_sharded_mut(&mut counters, 3, |i, c| {
///     *c += i as u64;
///     *c * 2
/// });
/// assert_eq!(counters, vec![0, 1, 2, 3, 4]);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn run_sharded_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for ((ci, shard), out) in items
            .chunks_mut(chunk)
            .enumerate()
            .zip(slots.chunks_mut(chunk))
        {
            let f = &f;
            scope.spawn(move || {
                for (j, (item, slot)) in shard.iter_mut().zip(out.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + j, item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every shard slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * 3 + 1).collect();
        for t in [1, 2, 3, 8, 64] {
            assert_eq!(run_sharded(37, t, |i| i * 3 + 1), expect, "threads={t}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run_sharded(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_sharded(1, 8, |i| i + 9), vec![9]);
    }

    #[test]
    fn threads_is_clamped() {
        let t = threads();
        assert!((1..=MAX_THREADS).contains(&t));
    }

    #[test]
    fn mut_variant_mutates_and_orders_for_any_thread_count() {
        let expect_items: Vec<u64> = (0..23).map(|i| i * 7).collect();
        let expect_results: Vec<u64> = (0..23).map(|i| i * 7 + 1).collect();
        for t in [1, 2, 5, 64] {
            let mut items = vec![0u64; 23];
            let results = run_sharded_mut(&mut items, t, |i, v| {
                *v = i as u64 * 7;
                *v + 1
            });
            assert_eq!(items, expect_items, "threads={t}");
            assert_eq!(results, expect_results, "threads={t}");
        }
        let mut empty: Vec<u64> = Vec::new();
        assert_eq!(run_sharded_mut(&mut empty, 4, |_, _| 0), Vec::<u64>::new());
    }
}
