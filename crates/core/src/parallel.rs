//! Deterministic fork/join helpers shared by the analysis and workload
//! layers.
//!
//! Everything here is plain `std::thread` — the workspace builds
//! offline, so no rayon. The contract every caller relies on is
//! *determinism*: results are returned in item order, so the output of a
//! sharded computation is byte-identical no matter how many worker
//! threads ran it (including one). The worker count comes from the
//! `NFSTRACE_THREADS` environment variable and defaults to the machine's
//! available parallelism.

/// Upper bound on the worker count; beyond this the per-thread shards of
/// any realistic trace are too small to matter.
pub const MAX_THREADS: usize = 64;

/// The worker count: `NFSTRACE_THREADS` if set and parseable, otherwise
/// the machine's available parallelism, clamped to `1..=`[`MAX_THREADS`].
pub fn threads() -> usize {
    std::env::var("NFSTRACE_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS)
}

/// Computes `f(0), f(1), .., f(n-1)` across at most `threads` scoped
/// worker threads and returns the results **in item order**.
///
/// Items are split into contiguous chunks, one per worker, so item `i`
/// always lands in the same shard for a given `(n, threads)` — but the
/// output is independent of even that, because each result is written to
/// its own slot.
///
/// # Examples
///
/// ```
/// use nfstrace_core::parallel::run_sharded;
///
/// let squares = run_sharded(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// // Any worker count yields the same output.
/// assert_eq!(squares, run_sharded(5, 1, |i| i * i));
/// ```
pub fn run_sharded<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, shard) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, slot) in shard.iter_mut().enumerate() {
                    *slot = Some(f(ci * chunk + j));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every shard slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * 3 + 1).collect();
        for t in [1, 2, 3, 8, 64] {
            assert_eq!(run_sharded(37, t, |i| i * 3 + 1), expect, "threads={t}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run_sharded(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_sharded(1, 8, |i| i + 9), vec![9]);
    }

    #[test]
    fn threads_is_clamped() {
        let t = threads();
        assert!((1..=MAX_THREADS).contains(&t));
    }
}
