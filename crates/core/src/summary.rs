//! Daily activity summaries (Table 2) and workload characterization
//! (Table 1).

use crate::record::{Op, TraceRecord};
use crate::time::DAY;
use std::collections::HashMap;

/// Aggregate operation and byte counts over a trace interval.
///
/// # Examples
///
/// ```
/// use nfstrace_core::record::{FileId, Op, TraceRecord};
/// use nfstrace_core::summary::SummaryStats;
///
/// let recs = vec![
///     TraceRecord::new(0, Op::Read, FileId(1)).with_range(0, 8192),
///     TraceRecord::new(1, Op::Write, FileId(1)).with_range(0, 4096),
///     TraceRecord::new(2, Op::Getattr, FileId(1)),
/// ];
/// let s = SummaryStats::from_records(recs.iter());
/// assert_eq!(s.total_ops, 3);
/// assert_eq!(s.bytes_read, 8192);
/// assert_eq!(s.bytes_written, 4096);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SummaryStats {
    /// All operations observed.
    pub total_ops: u64,
    /// READ operations.
    pub read_ops: u64,
    /// WRITE operations.
    pub write_ops: u64,
    /// Bytes transferred by READ replies.
    pub bytes_read: u64,
    /// Bytes accepted by WRITE replies.
    pub bytes_written: u64,
    /// Operations classified as data (READ/WRITE/COMMIT).
    pub data_ops: u64,
    /// Operations classified as metadata.
    pub metadata_ops: u64,
    /// The attribute calls (lookup/getattr/access) of §6.1.1.
    pub attribute_ops: u64,
    /// Per-op counts.
    pub op_counts: HashMap<Op, u64>,
    /// First timestamp seen.
    pub first_micros: u64,
    /// Last timestamp seen.
    pub last_micros: u64,
}

impl SummaryStats {
    /// An empty accumulator ready for [`SummaryStats::add`] calls.
    ///
    /// `first_micros` starts at `u64::MAX` so the running minimum
    /// works; [`SummaryStats::finish`] must run before the value is
    /// read. One-pass multi-product consumers (the trace index) share
    /// this protocol with [`SummaryStats::from_records`].
    pub fn accumulator() -> Self {
        SummaryStats {
            first_micros: u64::MAX,
            ..SummaryStats::default()
        }
    }

    /// Ends accumulation, normalizing the empty-trace sentinel.
    pub fn finish(&mut self) {
        if self.total_ops == 0 {
            self.first_micros = 0;
        }
    }

    /// Computes statistics over records.
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut s = SummaryStats::accumulator();
        for r in records {
            s.add(r);
        }
        s.finish();
        s
    }

    /// Folds one record into the totals.
    pub fn add(&mut self, r: &TraceRecord) {
        self.total_ops += 1;
        *self.op_counts.entry(r.op).or_insert(0) += 1;
        if r.op.is_read() {
            self.read_ops += 1;
            self.bytes_read += u64::from(r.ret_count);
        } else if r.op.is_write() {
            self.write_ops += 1;
            self.bytes_written += u64::from(r.ret_count);
        }
        if r.op.is_data() {
            self.data_ops += 1;
        } else {
            self.metadata_ops += 1;
        }
        if r.op.is_attribute_call() {
            self.attribute_ops += 1;
        }
        self.first_micros = self.first_micros.min(r.micros);
        self.last_micros = self.last_micros.max(r.micros);
    }

    /// Folds another **accumulator** (not yet [`SummaryStats::finish`]ed:
    /// an empty finished summary has `first_micros` normalized to 0,
    /// which would corrupt the running minimum) into this one. Every
    /// counter is order-independent, so merging per-chunk accumulators
    /// in any order equals one pass over the whole trace;
    /// [`crate::index::PartialIndex`] relies on this.
    pub fn absorb(&mut self, other: &SummaryStats) {
        self.total_ops += other.total_ops;
        self.read_ops += other.read_ops;
        self.write_ops += other.write_ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.data_ops += other.data_ops;
        self.metadata_ops += other.metadata_ops;
        self.attribute_ops += other.attribute_ops;
        for (op, n) in &other.op_counts {
            *self.op_counts.entry(*op).or_insert(0) += n;
        }
        self.first_micros = self.first_micros.min(other.first_micros);
        self.last_micros = self.last_micros.max(other.last_micros);
    }

    /// Trace duration in days (at least one microsecond's worth).
    pub fn duration_days(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        ((self.last_micros - self.first_micros).max(1)) as f64 / DAY as f64
    }

    /// Read/write ratio by bytes, the paper's headline CAMPUS-vs-EECS
    /// discriminator (3.0 vs 0.77 over the three-month trace).
    pub fn rw_bytes_ratio(&self) -> f64 {
        ratio(self.bytes_read as f64, self.bytes_written as f64)
    }

    /// Read/write ratio by operation count.
    pub fn rw_ops_ratio(&self) -> f64 {
        ratio(self.read_ops as f64, self.write_ops as f64)
    }

    /// Fraction of calls that are data calls.
    pub fn data_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.data_ops as f64 / self.total_ops as f64
        }
    }

    /// The Table 2 row: per-day averages.
    pub fn daily(&self) -> DailyActivity {
        let days = self.duration_days().max(f64::MIN_POSITIVE);
        DailyActivity {
            total_ops_millions: self.total_ops as f64 / days / 1e6,
            data_read_gb: self.bytes_read as f64 / days / 1e9,
            read_ops_millions: self.read_ops as f64 / days / 1e6,
            data_written_gb: self.bytes_written as f64 / days / 1e9,
            write_ops_millions: self.write_ops as f64 / days / 1e6,
            rw_bytes_ratio: self.rw_bytes_ratio(),
            rw_ops_ratio: self.rw_ops_ratio(),
        }
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// One row of Table 2: average daily activity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DailyActivity {
    /// Total ops per day, in millions.
    pub total_ops_millions: f64,
    /// Data read per day, in GB.
    pub data_read_gb: f64,
    /// Read ops per day, in millions.
    pub read_ops_millions: f64,
    /// Data written per day, in GB.
    pub data_written_gb: f64,
    /// Write ops per day, in millions.
    pub write_ops_millions: f64,
    /// Read/write bytes ratio.
    pub rw_bytes_ratio: f64,
    /// Read/write ops ratio.
    pub rw_ops_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FileId;

    fn read(t: u64, n: u32) -> TraceRecord {
        TraceRecord::new(t, Op::Read, FileId(1)).with_range(0, n)
    }

    fn write(t: u64, n: u32) -> TraceRecord {
        TraceRecord::new(t, Op::Write, FileId(1)).with_range(0, n)
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = SummaryStats::from_records(std::iter::empty());
        assert_eq!(s.total_ops, 0);
        assert_eq!(s.duration_days(), 0.0);
        assert_eq!(s.rw_bytes_ratio(), 0.0);
    }

    #[test]
    fn ratios() {
        let recs = [read(0, 3000), read(1, 3000), write(2, 2000)];
        let s = SummaryStats::from_records(recs.iter());
        assert!((s.rw_bytes_ratio() - 3.0).abs() < 1e-9);
        assert!((s.rw_ops_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn write_only_trace_has_infinite_inverse() {
        let recs = [read(0, 10)];
        let s = SummaryStats::from_records(recs.iter());
        assert!(s.rw_bytes_ratio().is_infinite());
    }

    #[test]
    fn data_metadata_fractions() {
        let recs = [
            read(0, 1),
            write(1, 1),
            TraceRecord::new(2, Op::Getattr, FileId(1)),
            TraceRecord::new(3, Op::Lookup, FileId(1)),
            TraceRecord::new(4, Op::Access, FileId(1)),
            TraceRecord::new(5, Op::Commit, FileId(1)),
        ];
        let s = SummaryStats::from_records(recs.iter());
        assert_eq!(s.data_ops, 3);
        assert_eq!(s.metadata_ops, 3);
        assert_eq!(s.attribute_ops, 3);
        assert!((s.data_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn daily_normalizes_by_duration() {
        // 2 million reads of 1000 bytes over exactly 2 days.
        let mut s = SummaryStats::from_records(std::iter::empty());
        s.first_micros = 0;
        for i in 0..20u64 {
            let mut r = read(i * (2 * DAY / 20), 1000);
            r.micros = (i * 2 * DAY) / 19; // span exactly 2 days
            s.add(&r);
        }
        let d = s.daily();
        assert!((d.read_ops_millions - 10.0 / 1e6).abs() < 1e-9);
        assert!(d.data_read_gb > 0.0);
    }

    #[test]
    fn op_counts_track_each_op() {
        let recs = [read(0, 1), read(1, 1), write(2, 1)];
        let s = SummaryStats::from_records(recs.iter());
        assert_eq!(s.op_counts[&Op::Read], 2);
        assert_eq!(s.op_counts[&Op::Write], 1);
        assert!(!s.op_counts.contains_key(&Op::Getattr));
    }
}
