//! The sequentiality metric (§6.4, Figure 5).
//!
//! Entire/sequential/random is too coarse: most "random" runs in the
//! traces are really long sequential sub-runs separated by short seeks.
//! Following Keith Smith's layout score, the paper defines a run's
//! *sequentiality metric* as the fraction of its blocks accessed
//! sequentially, where a block counts as sequential if it is
//! *k-consecutive* — within `k` blocks of its predecessor. The paper uses
//! k=10 ("small jumps allowed") and contrasts k=1 ("small jumps not
//! allowed"); logical jumps under 10 blocks rarely cost a disk seek.

use crate::reorder::Access;
use crate::runs::{block_of, end_block, Run, RunKind};

/// Computes the sequentiality metric of a run's accesses.
///
/// Each access covers one or more 8 KB blocks. Blocks after the first
/// within an access are consecutive by construction; the first block of
/// each access is sequential iff it lies within `k` blocks of the end of
/// the previous access. The run's first block counts as sequential (a
/// one-block run is perfectly sequential).
///
/// `k = 1` means strictly consecutive; larger `k` forgives short seeks.
///
/// # Examples
///
/// ```
/// use nfstrace_core::reorder::Access;
/// use nfstrace_core::seqmetric::sequentiality_metric;
///
/// let seq = |off| Access {
///     micros: 0, offset: off, count: 8192,
///     is_write: false, eof: false, file_size: 0,
/// };
/// let run = [seq(0), seq(8192), seq(16384)];
/// assert_eq!(sequentiality_metric(&run, 1), 1.0);
/// ```
pub fn sequentiality_metric(items: &[Access], k: u64) -> f64 {
    let mut total_blocks = 0u64;
    let mut seq_blocks = 0u64;
    let mut prev_end: Option<u64> = None;
    for a in items {
        let start = block_of(a.offset);
        let end = end_block(a.offset, a.count).max(start + 1);
        let blocks = end - start;
        total_blocks += blocks;
        // Blocks within the access beyond the first are consecutive.
        seq_blocks += blocks - 1;
        match prev_end {
            None => seq_blocks += 1, // run's first block anchors the score
            Some(pe) => {
                if start.abs_diff(pe) < k.max(1) {
                    seq_blocks += 1;
                }
            }
        }
        prev_end = Some(end);
    }
    if total_blocks == 0 {
        0.0
    } else {
        seq_blocks as f64 / total_blocks as f64
    }
}

/// The Figure 5 x-axis buckets: bytes accessed in the run, from 16 KB to
/// 64 MB in factor-of-4 steps.
pub const RUN_SIZE_BUCKETS: [u64; 7] = [
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
    64 * 1024 * 1024,
];

/// One Figure 5 series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPoint {
    /// Bucket upper bound (bytes accessed in run).
    pub bucket: u64,
    /// Mean sequentiality metric of runs in this bucket.
    pub mean_metric: f64,
    /// Number of runs in the bucket.
    pub runs: usize,
}

/// Average sequentiality metric per run-size bucket, for one direction.
///
/// `kind` selects read or write runs (the paper plots them separately);
/// read-write runs are excluded as in Figure 5.
pub fn metric_by_run_size(runs: &[Run], kind: RunKind, k: u64) -> Vec<MetricPoint> {
    let mut sums = vec![0.0f64; RUN_SIZE_BUCKETS.len()];
    let mut counts = vec![0usize; RUN_SIZE_BUCKETS.len()];
    for r in runs {
        if r.kind != kind {
            continue;
        }
        let idx = RUN_SIZE_BUCKETS
            .iter()
            .position(|&b| r.bytes <= b)
            .unwrap_or(RUN_SIZE_BUCKETS.len() - 1);
        sums[idx] += sequentiality_metric(&r.items, k);
        counts[idx] += 1;
    }
    RUN_SIZE_BUCKETS
        .iter()
        .enumerate()
        .map(|(i, &bucket)| MetricPoint {
            bucket,
            mean_metric: if counts[i] == 0 {
                0.0
            } else {
                sums[i] / counts[i] as f64
            },
            runs: counts[i],
        })
        .collect()
}

/// Cumulative percentage of runs at or below each size bucket (the lower
/// panels of Figure 5). Returns `(bucket, total_pct, read_pct, write_pct)`
/// rows where the percentages are of all runs.
pub fn cumulative_runs_by_size(runs: &[Run]) -> Vec<(u64, f64, f64, f64)> {
    let total = runs.len() as f64;
    let mut out = Vec::with_capacity(RUN_SIZE_BUCKETS.len());
    let mut cum_all = 0usize;
    let mut cum_read = 0usize;
    let mut cum_write = 0usize;
    for (i, &bucket) in RUN_SIZE_BUCKETS.iter().enumerate() {
        let lower = if i == 0 { 0 } else { RUN_SIZE_BUCKETS[i - 1] };
        for r in runs {
            let in_bucket = ((i == 0 || r.bytes > lower) && r.bytes <= bucket)
                || (i == RUN_SIZE_BUCKETS.len() - 1 && r.bytes > bucket);
            if in_bucket {
                cum_all += 1;
                match r.kind {
                    RunKind::Read => cum_read += 1,
                    RunKind::Write => cum_write += 1,
                    RunKind::ReadWrite => {}
                }
            }
        }
        let pct = |n: usize| {
            if total == 0.0 {
                0.0
            } else {
                100.0 * n as f64 / total
            }
        };
        out.push((bucket, pct(cum_all), pct(cum_read), pct(cum_write)));
    }
    out
}

/// A streaming sequentiality estimator suitable for a server's read-ahead
/// heuristic (the §6.4 FreeBSD experiment uses "a simplified version of
/// the sequentiality metric ... in its read-ahead heuristic").
///
/// It keeps an exponentially-decayed score in [0, 1]; each k-consecutive
/// access pulls the score toward 1, each long seek toward 0.
#[derive(Debug, Clone)]
pub struct StreamingSequentiality {
    score: f64,
    last_end_block: Option<u64>,
    k: u64,
    alpha: f64,
}

impl StreamingSequentiality {
    /// Creates an estimator with jump tolerance `k` blocks and smoothing
    /// factor `alpha` (weight of the newest observation).
    pub fn new(k: u64, alpha: f64) -> Self {
        Self {
            score: 1.0,
            last_end_block: None,
            k,
            alpha: alpha.clamp(0.0, 1.0),
        }
    }

    /// Observes an access and returns the updated score.
    pub fn observe(&mut self, offset: u64, count: u32) -> f64 {
        let start = block_of(offset);
        if let Some(pe) = self.last_end_block {
            let hit = start.abs_diff(pe) < self.k.max(1);
            let obs = if hit { 1.0 } else { 0.0 };
            self.score = self.alpha * obs + (1.0 - self.alpha) * self.score;
        }
        self.last_end_block = Some(end_block(offset, count).max(start + 1));
        self.score
    }

    /// The current score.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Whether the stream currently looks sequential enough to prefetch.
    pub fn is_sequential(&self, threshold: f64) -> bool {
        self.score >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FileId;
    use crate::runs::{split_runs, RunOptions, BLOCK};

    fn acc(offset: u64, count: u32, is_write: bool) -> Access {
        Access {
            micros: 0,
            offset,
            count,
            is_write,
            eof: false,
            file_size: 0,
        }
    }

    #[test]
    fn fully_sequential_run_scores_one() {
        let run: Vec<Access> = (0..8)
            .map(|i| acc(i * BLOCK, BLOCK as u32, false))
            .collect();
        assert_eq!(sequentiality_metric(&run, 1), 1.0);
        assert_eq!(sequentiality_metric(&run, 10), 1.0);
    }

    #[test]
    fn alternating_far_seeks_score_low() {
        // Blocks 0, 100, 1, 101, 2, 102 ... every access seeks far.
        let mut run = Vec::new();
        for i in 0..10u64 {
            let b = if i % 2 == 0 { i / 2 } else { 100 + i / 2 };
            run.push(acc(b * BLOCK, BLOCK as u32, false));
        }
        let m = sequentiality_metric(&run, 1);
        assert!(m <= 0.2, "m = {m}");
    }

    #[test]
    fn small_jumps_rescued_by_k() {
        // Seeks of 3 blocks between accesses: random at k=1, sequential
        // at k=10.
        let run: Vec<Access> = (0..10)
            .map(|i| acc(i * 4 * BLOCK, BLOCK as u32, false))
            .collect();
        let strict = sequentiality_metric(&run, 1);
        let loose = sequentiality_metric(&run, 10);
        assert!(strict < 0.2, "strict = {strict}");
        assert_eq!(loose, 1.0);
    }

    #[test]
    fn multiblock_accesses_mostly_sequential() {
        // Two 64 KB accesses separated by a huge seek: 16 blocks total,
        // only the second access's first block is non-sequential.
        let run = vec![acc(0, 65536, false), acc(1 << 30, 65536, false)];
        let m = sequentiality_metric(&run, 10);
        assert!((m - 15.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_scores_zero() {
        assert_eq!(sequentiality_metric(&[], 10), 0.0);
    }

    #[test]
    fn metric_by_size_buckets() {
        let mut runs = Vec::new();
        // A 16 KB sequential read run (bucket 0) and a 128 KB seeky write
        // run (the 256 KB bucket).
        let seq: Vec<Access> = (0..2)
            .map(|i| acc(i * BLOCK, BLOCK as u32, false))
            .collect();
        runs.extend(split_runs(FileId(1), &seq, RunOptions::default()));
        let seeky: Vec<Access> = (0..16)
            .map(|i| acc(i * 100 * BLOCK, BLOCK as u32, true))
            .collect();
        runs.extend(split_runs(FileId(2), &seeky, RunOptions::default()));

        let reads = metric_by_run_size(&runs, RunKind::Read, 10);
        assert_eq!(reads[0].runs, 1);
        assert_eq!(reads[0].mean_metric, 1.0);
        let writes = metric_by_run_size(&runs, RunKind::Write, 10);
        let w_bucket = writes.iter().find(|p| p.runs > 0).unwrap();
        assert_eq!(w_bucket.bucket, 256 * 1024);
        assert!(w_bucket.mean_metric < 0.2);
    }

    #[test]
    fn cumulative_reaches_100() {
        let seq: Vec<Access> = (0..4)
            .map(|i| acc(i * BLOCK, BLOCK as u32, false))
            .collect();
        let runs = split_runs(FileId(1), &seq, RunOptions::default());
        let cum = cumulative_runs_by_size(&runs);
        assert!((cum.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_estimator_tracks_pattern() {
        let mut s = StreamingSequentiality::new(10, 0.25);
        for i in 0..20u64 {
            s.observe(i * BLOCK, BLOCK as u32);
        }
        assert!(s.is_sequential(0.9));
        // A burst of far seeks drags the score down.
        for i in 0..20u64 {
            s.observe(i * 1000 * BLOCK, BLOCK as u32);
        }
        assert!(!s.is_sequential(0.5));
    }

    #[test]
    fn streaming_estimator_recovers_after_one_reorder() {
        // One out-of-order access must not flip a sequential stream to
        // random — the motivation for the §6.4 server heuristic.
        let mut s = StreamingSequentiality::new(10, 0.2);
        for i in 0..10u64 {
            s.observe(i * BLOCK, BLOCK as u32);
        }
        s.observe(500 * BLOCK, BLOCK as u32); // stray
        for i in 11..20u64 {
            s.observe(i * BLOCK, BLOCK as u32);
        }
        assert!(s.is_sequential(0.7), "score = {}", s.score());
    }
}
